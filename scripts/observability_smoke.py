#!/usr/bin/env python
"""CI observability smoke: sweep + event log + crash bundle end-to-end.

Drives a small montage sweep with the full observability surface
switched on — live progress, JSONL event log, flight recorder, crash
directory — including one cell rigged to fail, then checks that every
artifact is well-formed:

* the event log passes the schema validator, contains every expected
  lifecycle kind, and carries a gapless ``seq``;
* the failing cell produced exactly one crash bundle that validates,
  names the right scenario, and summarizes readably (the same path
  ``repro-ec2 postmortem`` takes);
* the per-cell metrics export in Prometheus format passes the
  promtool-style validator.

Usage::

    python scripts/observability_smoke.py [--artifacts DIR]

Exits 0 when everything checks out, 1 on any problem.  ``--artifacts``
keeps the event log / crash bundles for CI upload (default: a temp dir
discarded on success).
"""

import argparse
import os
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="directory to keep the artifacts in "
                             "(default: a temporary directory)")
    args = parser.parse_args()
    artifacts = args.artifacts or Path(tempfile.mkdtemp(prefix="obs-smoke-"))
    artifacts.mkdir(parents=True, exist_ok=True)
    events_path = str(artifacts / "events.jsonl")
    crash_dir = str(artifacts / "crashes")

    from repro.apps import build_montage
    from repro.experiments import (CellError, ExperimentConfig,
                                   ObserveOptions, run_sweep)
    from repro.observe import (EventLogWriter, SweepMonitor,
                               load_crash_bundles, summarize_bundle,
                               validate_bundle, validate_event_log)
    from repro.telemetry import to_prometheus, validate_exposition

    wf = build_montage(degrees=0.5)
    good = ExperimentConfig("montage", "local", 1, collect_traces=True)
    # Rigged cell: every attempt crashes and retries are exhausted
    # immediately, so the WMS raises WorkflowFailedError.
    bad = good.with_(task_failure_rate=0.95, retries=0)
    cells = [good, bad, good.with_(seed=1)]

    problems = []
    with EventLogWriter(events_path) as events:
        monitor = SweepMonitor(events=events, progress=True)
        observe = ObserveOptions(monitor=monitor, crash_dir=crash_dir)
        try:
            run_sweep(cells, workflow=wf, observe=observe)
            problems.append("sweep did not raise CellError for the "
                            "rigged cell")
            results = []
        except CellError as exc:
            print(f"expected failure: {exc}", file=sys.stderr)
            if len(exc.failures) != 1 or exc.failures[0]["index"] != 1:
                problems.append(f"wrong failure set: {exc.failures}")
        # Second pass: keep_going must yield the two healthy results.
        monitor2 = SweepMonitor(events=events, progress=False)
        observe2 = ObserveOptions(monitor=monitor2, crash_dir=crash_dir,
                                  keep_going=True)
        results = run_sweep(cells, workflow=wf, observe=observe2)
        if [r is not None for r in results] != [True, False, True]:
            problems.append(f"keep_going result shape wrong: "
                            f"{[r is not None for r in results]}")

    log_problems = validate_event_log(events_path, expect_kinds=[
        "sweep_started", "cell_scheduled", "cell_started",
        "cell_finished", "cell_failed", "sweep_finished"])
    problems += [f"event log: {p}" for p in log_problems]

    bundles = load_crash_bundles(crash_dir)
    if len(bundles) != 1:
        problems.append(f"expected 1 crash bundle, found {len(bundles)}")
    for path, bundle in bundles:
        problems += [f"bundle {path}: {p}" for p in validate_bundle(bundle)]
        if bundle.get("label") != bad.label or bundle.get("index") != 1:
            problems.append(f"bundle {path} names the wrong cell")
        summary = summarize_bundle(bundle)
        if "WorkflowFailedError" not in summary:
            problems.append(f"bundle summary missing the error: {summary}")
        else:
            print(summary)

    healthy = [r for r in results if r is not None]
    if healthy and healthy[0].metrics is not None:
        text = to_prometheus(healthy[0].metrics)
        problems += [f"exposition: {p}" for p in validate_exposition(text)]
        (artifacts / "metrics.prom").write_text(text)

    summary = monitor2.summary() if not problems else {}
    if summary and summary["n_failed"] != 1:
        problems.append(f"monitor summary wrong: {summary}")

    if problems:
        print("\nobservability smoke FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        print(f"artifacts kept in {artifacts}", file=sys.stderr)
        return 1
    print(f"\nobservability smoke passed "
          f"({len(os.listdir(artifacts))} artifact(s) in {artifacts})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
