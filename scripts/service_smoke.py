#!/usr/bin/env python
"""CI service smoke: the full job-API stack end-to-end, twice.

Boots the whole service in-process — SQLite store, lease queue, cell
cache, worker thread, WSGI server on an ephemeral port — and drives it
through :class:`repro.service.client.ServiceClient` (the same path the
``repro-ec2 submit``/``status``/``fetch`` commands take):

* submit a paper-scale ``montage/nfs@2`` scenario, poll it to
  completion, fetch the result (JSON and CSV);
* resubmit the identical scenario and require a 100% cache-hit job
  whose payloads are byte-identical to the first run's, with the
  event log showing zero kernel wall-time;
* validate the ``/metrics`` Prometheus exposition and write the
  event-log artifact, schema-checked line by line.

Usage::

    python scripts/service_smoke.py [--artifacts DIR]

Exits 0 when everything checks out, 1 on any problem.  ``--artifacts``
keeps the event log / database for CI upload (default: a temp dir
discarded on success).
"""

import argparse
import json
import sys
import tempfile
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="directory to keep the artifacts in "
                             "(default: a temporary directory)")
    args = parser.parse_args()
    artifacts = args.artifacts or Path(tempfile.mkdtemp(prefix="svc-smoke-"))
    artifacts.mkdir(parents=True, exist_ok=True)

    from repro.experiments import ExperimentConfig
    from repro.observe.events import validate_event
    from repro.service import (CellCache, JobQueue, ServiceApp,
                               ServiceWorker, open_store, serve)
    from repro.service.client import ServiceClient
    from repro.telemetry.export import validate_exposition

    store = open_store(str(artifacts / "service.db"))
    queue = JobQueue(store)
    cache = CellCache(store)
    worker = ServiceWorker(store, queue, cache).start()
    server = serve(ServiceApp(store, queue, cache), port=0, quiet=True)
    host, port = server.server_address[:2]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(f"http://{host}:{port}", timeout=60)
    print(f"service up on http://{host}:{port}")

    try:
        # -- cold run: paper-scale montage/NFS cell ------------------------
        cell = ExperimentConfig("montage", "nfs", 2)
        doc = client.submit([cell])
        job_id = doc["job_id"]
        status = client.wait(job_id, timeout=600)
        if status["state"] != "done" or status["n_failed"]:
            return fail(f"cold job did not finish cleanly: {status}")
        if status["n_cache_hits"] != 0:
            return fail("cold job claims cache hits on an empty store")
        cold = client.result(job_id)
        makespan_end = cold["cells"][0]["result"]["run"]["end_time"]
        print(f"cold run done: makespan {makespan_end:,.0f} s sim-time")
        csv_text = client.result_csv(job_id)
        if not csv_text.splitlines()[0].startswith("app,storage,nodes"):
            return fail("CSV fetch did not return the summary table")

        # -- warm resubmit: must be 100% cache hits, bit-identical ---------
        doc2 = client.submit([cell])
        status2 = client.wait(doc2["job_id"], timeout=120)
        if status2["state"] != "done":
            return fail(f"warm job did not finish: {status2}")
        if status2["n_cache_hits"] != status2["n_done"] == 1:
            return fail(f"warm job was not a pure cache hit: {status2}")
        warm = client.result(doc2["job_id"])
        cold_payload = json.dumps(cold["cells"][0]["result"],
                                  sort_keys=True)
        warm_payload = json.dumps(warm["cells"][0]["result"],
                                  sort_keys=True)
        if warm_payload != cold_payload:
            return fail("warm result is not byte-identical to cold")
        warm_events = list(client.events(doc2["job_id"]))
        finished = [e for e in warm_events if e["kind"] == "cell_finished"]
        if not finished or any(e["wall_seconds"] != 0.0 for e in finished):
            return fail("warm job spent kernel wall-time on a cached cell")
        print("warm resubmit: 100% cache hits, byte-identical payload, "
              "zero kernel time")

        # -- artifacts: event log + metrics --------------------------------
        events_path = artifacts / "events.jsonl"
        with open(events_path, "w") as fh:
            for event in client.events(job_id):
                problems = validate_event(event)
                if problems:
                    return fail(f"event schema: {problems}")
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        print(f"event log validated: {events_path}")

        metrics_text = client.metrics()
        problems = validate_exposition(metrics_text)
        if problems:
            return fail(f"/metrics exposition invalid: {problems}")
        for needle in ('sweep_cache_hits_total{app="montage",'
                       'storage="nfs"} 1',
                       'service_cells_total{source="cache"} 1',
                       "sweep_cache_stored_results 1"):
            if needle not in metrics_text:
                return fail(f"/metrics missing {needle!r}")
        (artifacts / "metrics.prom").write_text(metrics_text)
        print("metrics exposition validated")
    finally:
        worker.stop()
        server.shutdown()
        server.server_close()
        store.close()

    print(f"OK — artifacts in {artifacts}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
