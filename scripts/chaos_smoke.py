#!/usr/bin/env python
"""CI chaos smoke: the service survives seeded host-side faults.

For each of a fixed set of seeds, boots the whole service stack with
the chaos harness armed — a flaky SQLite store (injected ``database is
locked`` errors and stalls *below* the retry layer), a fault-injecting
WSGI middleware (pre-app 503s, delays, mid-body connection drops on
GETs), and a worker-killer raising ``BaseException`` mid-job — then
submits a batch of jobs through the real HTTP client and checks the
chaos invariants:

* every job reaches a terminal state (``done``, or ``failed`` with a
  recorded reason) — nothing is lost or stuck;
* chaos actually fired (each seed must inject at least one fault);
* the store passes ``PRAGMA integrity_check`` afterwards;
* the ``/metrics`` exposition stays schema-valid under fire;
* a clean (chaos-free) restart over the same database re-serves every
  completed job's results, byte-identical across duplicate digests.

Usage::

    python scripts/chaos_smoke.py [--artifacts DIR] [--seeds 1,2,...]

Exits 0 when every seed passes, 1 on the first violated invariant.
``--artifacts`` keeps the databases, crash bundles, and metrics dumps
for CI upload (default: a temp dir, kept only on failure).
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_SEEDS = (11, 22, 33, 44, 55)

TERMINAL = ("done", "failed")


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def _workload():
    from repro.experiments import ExperimentConfig
    return [
        ExperimentConfig("montage", "nfs", 2),
        ExperimentConfig("montage", "s3", 2),
        ExperimentConfig("epigenome", "nfs", 2),
        ExperimentConfig("montage", "nfs", 4),
        ExperimentConfig("broadband", "nfs", 2),
        ExperimentConfig("montage", "nfs", 2),  # duplicate: cache oracle
    ]


def _submit_retrying(client, cell, deadline_s=60.0):
    """POSTs are not auto-retried; the middleware only injects errors
    before the app runs, so a failed submission enqueued nothing and
    retrying cannot duplicate a job."""
    from repro.service.client import TRANSIENT_STATUSES, ServiceError
    t0 = time.monotonic()  # lint: ignore[SIM001]
    while True:
        try:
            return client.submit([cell], scale="small")
        except ServiceError as exc:
            if exc.status not in TRANSIENT_STATUSES:
                raise
            if time.monotonic() - t0 > deadline_s:  # lint: ignore[SIM001]
                raise
            time.sleep(0.05)


def run_seed(seed: int, artifacts: Path) -> int:
    from repro.service import ChaosSpec, chaos_service
    from repro.telemetry.export import validate_exposition

    spec = ChaosSpec(
        seed=seed,
        store_error_rate=0.04,
        store_delay_rate=0.02,
        store_delay_seconds=0.002,
        http_error_rate=0.10,
        http_delay_rate=0.05,
        http_delay_seconds=0.005,
        http_drop_rate=0.15,
        kill_job_rate=0.05,
        kill_cell_rate=0.05,
    )
    seed_dir = artifacts / f"seed-{seed}"
    seed_dir.mkdir(parents=True, exist_ok=True)
    db = str(seed_dir / "chaos.db")
    harness = chaos_service(spec, db_path=db, lease_seconds=1.0,
                            max_attempts=8,
                            crash_dir=str(seed_dir / "crash"))
    client = harness.client()
    statuses = {}
    try:
        job_ids = [_submit_retrying(client, cell)["job_id"]
                   for cell in _workload()]
        for job_id in job_ids:
            status = client.wait(job_id, timeout=300, poll_interval=0.1)
            statuses[job_id] = status
            if status["state"] not in TERMINAL:
                return fail(f"seed {seed}: job {job_id} not terminal: "
                            f"{status}")
            if status["state"] == "failed" and not status["error"]:
                return fail(f"seed {seed}: job {job_id} failed without "
                            f"a recorded reason")
        with harness.schedule.calm():
            if harness.schedule.total_injected() == 0:
                return fail(f"seed {seed}: chaos schedule never fired")
            rows = harness.store.query("PRAGMA integrity_check")
            if rows[0][0] != "ok":
                return fail(f"seed {seed}: store corrupted: {rows[0][0]}")
            metrics_text = client.metrics()
            problems = validate_exposition(metrics_text)
            if problems:
                return fail(f"seed {seed}: /metrics invalid under "
                            f"chaos: {problems}")
            (seed_dir / "metrics.prom").write_text(metrics_text)
            (seed_dir / "statuses.json").write_text(
                json.dumps(statuses, indent=2, sort_keys=True))
            injected = dict(harness.schedule.injected)
    finally:
        harness.stop()

    # Clean restart over the surviving database: every done job's
    # results are still served, and duplicate digests are one payload.
    from repro.service import ChaosSpec as _Spec
    clean = chaos_service(_Spec(seed=0), db_path=db, lease_seconds=5.0)
    client2 = clean.client()
    try:
        payload_by_digest = {}
        n_done = 0
        for job_id, status in statuses.items():
            if status["state"] != "done":
                continue
            n_done += 1
            for cell in client2.result(job_id)["cells"]:
                previous = payload_by_digest.setdefault(
                    cell["digest"], cell["result"])
                if cell["result"] != previous:
                    return fail(f"seed {seed}: digest {cell['digest']} "
                                f"served two different payloads")
        if n_done == 0:
            return fail(f"seed {seed}: chaos failed every job — rates "
                        f"are miscalibrated for a smoke test")
    finally:
        clean.stop()

    done = sum(1 for s in statuses.values() if s["state"] == "done")
    print(f"seed {seed}: {done}/{len(statuses)} done, "
          f"{len(statuses) - done} failed cleanly; injected {injected}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="directory to keep databases/bundles/"
                             "metrics in (default: a temp dir)")
    parser.add_argument("--seeds", default=",".join(
        str(s) for s in DEFAULT_SEEDS),
        help="comma-separated chaos seeds to run")
    args = parser.parse_args()
    artifacts = args.artifacts or Path(
        tempfile.mkdtemp(prefix="chaos-smoke-"))
    artifacts.mkdir(parents=True, exist_ok=True)
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]

    for seed in seeds:
        code = run_seed(seed, artifacts)
        if code:
            print(f"artifacts kept in {artifacts}")
            return code
    print(f"OK — {len(seeds)} seed(s) survived; artifacts in {artifacts}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
