#!/usr/bin/env python
"""Perf gate: the simulation kernel must not silently regress.

Runs the ``benchmarks/perf`` microbench suite and compares it against
the committed ``BENCH_kernel.json`` at the repo root.  Comparison uses
the *normalized* figures (bench seconds divided by a fixed spin-loop's
seconds on the same machine), so the gate is meaningful across hosts
of different speeds; ``--tolerance`` (default 0.25) absorbs the
remaining scheduling noise.

Usage::

    python scripts/perf_gate.py                  # smoke scale, check
    python scripts/perf_gate.py --scale full     # paper-scale cells
    python scripts/perf_gate.py --scale sweep    # hundreds of small cells
    python scripts/perf_gate.py --update         # rewrite the baseline

Exits 0 when within tolerance (or after ``--update``), 1 on a
regression, 2 on configuration problems.

Every run also appends one JSONL entry (timestamp, scale, normalized
figures) to ``benchmarks/perf/history.jsonl`` — the longitudinal record
behind ``repro-ec2 perf-trend``.  Disable with ``--no-history``.
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BENCH_FILE = REPO_ROOT / "BENCH_kernel.json"
DEFAULT_HISTORY_FILE = REPO_ROOT / "benchmarks" / "perf" / "history.jsonl"


def _run_suite(scale: str):
    sys.path.insert(0, str(REPO_ROOT / "benchmarks" / "perf"))
    import microbench
    return microbench.run_suite(scale)


def _append_history(path: Path, scale: str, results: dict) -> None:
    """One history line per gate run (host wall clock is fine here —
    this is build telemetry, nowhere near the simulation kernel)."""
    entry = {
        "schema": 1,
        "ts": time.time(),  # lint: ignore[SIM001]
        "scale": scale,
        "results": {name: {"seconds": r["seconds"],
                           "normalized": r["normalized"]}
                    for name, r in sorted(results.items())
                    if name != "_calibration"},
        "calibration": results.get("_calibration"),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("smoke", "full", "sweep"),
                        default="smoke",
                        help="suite scale (smoke = CI-sized, "
                             "full = paper-scale cells, "
                             "sweep = hundreds of small cells through "
                             "run_sweep)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown per bench "
                             "before the gate fails (default 0.25)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite this scale's baseline instead of "
                             "checking against it")
    parser.add_argument("--file", type=Path, default=DEFAULT_BENCH_FILE,
                        help="baseline JSON path (default BENCH_kernel.json "
                             "at the repo root)")
    parser.add_argument("--history", type=Path,
                        default=DEFAULT_HISTORY_FILE,
                        help="JSONL perf-history file to append to "
                             "(default benchmarks/perf/history.jsonl)")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append this run to the history")
    args = parser.parse_args()
    if args.tolerance < 0:
        print("error: --tolerance must be >= 0", file=sys.stderr)
        return 2

    current = _run_suite(args.scale)
    if not args.no_history:
        _append_history(args.history, args.scale, current)
        print(f"appended history entry to {args.history}", file=sys.stderr)

    data = {}
    if args.file.exists():
        try:
            data = json.loads(args.file.read_text())
        except (OSError, ValueError) as exc:
            print(f"error: unreadable baseline {args.file}: {exc}",
                  file=sys.stderr)
            return 2
    data.setdefault("schema", 1)
    data.setdefault(
        "description",
        "Simulation-kernel benchmark baseline; normalized = bench "
        "seconds / calibration spin-loop seconds on the same machine "
        "(machine-independent).  Maintained by scripts/perf_gate.py.")
    scales = data.setdefault("scales", {})
    baseline = scales.get(args.scale)

    header = f"{'bench':<28}{'seconds':>10}{'norm':>9}{'baseline':>10}{'delta':>8}"
    print(f"perf suite @ {args.scale}")
    print(header)
    print("-" * len(header))
    failures = []
    for name in sorted(current):
        cur = current[name]
        base_norm = None
        if baseline is not None and name in baseline:
            base_norm = baseline[name]["normalized"]
        delta = ""
        if base_norm:
            ratio = cur["normalized"] / base_norm - 1.0
            delta = f"{ratio:+7.1%}"
            if name != "_calibration" and ratio > args.tolerance:
                failures.append((name, ratio))
        print(f"{name:<28}{cur['seconds']:>10.4f}{cur['normalized']:>9.2f}"
              f"{base_norm if base_norm is not None else float('nan'):>10.2f}"
              f"{delta:>8}")

    if args.update or baseline is None:
        scales[args.scale] = current
        args.file.write_text(json.dumps(data, indent=1, sort_keys=True)
                             + "\n")
        action = "updated" if baseline is not None else "created"
        print(f"\n{action} {args.file} [{args.scale}]")
        return 0

    if failures:
        print(f"\nperf gate FAILED (tolerance {args.tolerance:.0%}):")
        for name, ratio in failures:
            print(f"  {name}: {ratio:+.1%} vs baseline")
        return 1
    print(f"\nperf gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
