#!/usr/bin/env python
"""CI lint gate: simulation-invariant static analysis must stay clean.

Runs the ``repro.lint`` rules (SIM001-SIM008) over ``src/`` and
``scripts/`` against the checked-in baseline and fails on any *new*
finding.  The shipped baseline is empty, so in practice this means the
tree must lint clean; regressions land here before they can corrupt a
paper figure.

Exits 0 when clean, 1 on findings, 2 on configuration problems.
Keep this fast: it runs on every push.
"""

import sys

sys.path.insert(0, "src")  # allow running from a plain checkout

from repro.lint import (  # noqa: E402
    DEFAULT_BASELINE_NAME,
    lint_paths,
    load_baseline,
)

TARGETS = ["src/repro", "scripts"]


def main() -> int:
    try:
        baseline = load_baseline(DEFAULT_BASELINE_NAME)
    except FileNotFoundError:
        baseline = None
    except (OSError, ValueError) as exc:
        print(f"bad baseline {DEFAULT_BASELINE_NAME}: {exc}",
              file=sys.stderr)
        return 2
    report = lint_paths(TARGETS, baseline=baseline)
    for finding in report.findings:
        print(finding.format())
    for path, error in report.parse_errors:
        print(f"{path}: {error}", file=sys.stderr)
    if not report.ok:
        by_rule = ", ".join(f"{rid}: {n}" for rid, n
                            in sorted(report.counts_by_rule().items()))
        print(f"\nlint gate FAILED: {len(report.findings)} finding(s) "
              f"({by_rule}) across {report.n_files} file(s)")
        return 1
    print(f"lint gate passed: {report.n_files} files clean "
          f"({len(report.suppressed)} inline suppression(s), "
          f"{len(report.baselined)} baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
