#!/usr/bin/env python
"""CI fault-matrix smoke: every storage backend under fault load.

For each storage system, runs one small workflow at a nonzero storage
error rate (plus node crashes where the backend allows more than one
node) and asserts that

* the workflow completes — every task has a successful record;
* the run is deterministic — a second run with the identical seed and
  spec produces a bit-identical makespan and fault report.

Exits nonzero on the first violation.  Keep this fast: it runs on
every push.
"""

import sys

sys.path.insert(0, "src")  # allow running from a plain checkout

from repro.apps import build_synthetic  # noqa: E402
from repro.experiments import ExperimentConfig, run_experiment  # noqa: E402

#: (storage, nodes) — every backend in the paper's matrix, smallest
#: valid deployment that still exercises remote traffic.
MATRIX = [
    ("local", 1),
    ("nfs", 2),
    ("s3", 2),
    ("glusterfs-nufa", 2),
    ("glusterfs-distribute", 2),
    ("pvfs", 2),
]

ERROR_RATE = 0.1
NODE_MTBF = 600.0  # low enough to usually fire on multi-node cells
SEED = 5


def run_once(storage: str, nodes: int):
    cfg = ExperimentConfig(
        "montage", storage, nodes, seed=SEED,
        storage_error_rate=ERROR_RATE,
        node_mtbf=NODE_MTBF if nodes > 1 else 0.0,
        retries=10,
    )
    wf = build_synthetic(30, width=6, seed=1)
    result = run_experiment(cfg, workflow=wf)
    completed = {r.task_id for r in result.run.records if not r.failed}
    return result, completed


def main() -> int:
    failures = 0
    for storage, nodes in MATRIX:
        a, completed_a = run_once(storage, nodes)
        b, completed_b = run_once(storage, nodes)
        ra, rb = a.faults.as_dict(), b.faults.as_dict()
        problems = []
        if len(completed_a) != 30:
            problems.append(f"incomplete: {len(completed_a)}/30 tasks")
        if a.run.partial:
            problems.append(f"partial: abandoned {a.run.abandoned_jobs}")
        # Bit-exactness is the point here: two runs with one seed must
        # agree to the last ulp, so no tolerance is acceptable.
        if a.makespan != b.makespan:  # lint: ignore[SIM004]
            problems.append(
                f"nondeterministic makespan: {a.makespan!r} != {b.makespan!r}")
        if ra != rb or completed_a != completed_b:
            problems.append("nondeterministic fault report")
        status = "FAIL" if problems else "ok"
        faults_seen = (ra["node_crashes"] + ra["storage_errors"])
        print(f"{status:4} {storage:>20} @{nodes}  "
              f"makespan {a.makespan:9.2f} s  "
              f"crashes {ra['node_crashes']}  evicted {ra['jobs_evicted']}  "
              f"storage errors {ra['storage_errors']} "
              f"(retries {ra['storage_retries']}, "
              f"giveups {ra['storage_giveups']})")
        for p in problems:
            print(f"       - {p}")
        if faults_seen == 0 and storage != "local":
            # local disk has no shared service and a 1-node pool can't
            # crash below min_survivors — zero faults is correct there.
            print(f"       - warning: no fault fired on {storage}@{nodes}")
        failures += bool(problems)
    if failures:
        print(f"\n{failures} backend(s) failed the fault smoke")
        return 1
    print("\nfault smoke passed: all backends complete deterministically "
          "under fault load")
    return 0


if __name__ == "__main__":
    sys.exit(main())
