#!/usr/bin/env python
"""CI concurrency smoke: static thread-safety rules + runtime witness.

Two gates, mirroring the two halves of the concurrency pass:

1. **Static** — the tree (``src/repro`` + ``scripts``) must be clean
   under the thread-safety rules SIM010–SIM014, with zero live
   findings and no parse errors.
2. **Runtime** — one lockwatch-enabled chaos seed: the whole service
   stack boots with every lock built through the watched factory seam,
   drains a small job batch under injected faults, and the witness
   must (a) actually observe lock traffic and (b) report zero findings
   (no lock-order inversion, no hold-time overrun, no guarded-by
   violation).

Usage::

    python scripts/concurrency_smoke.py [--artifacts DIR] [--seed N]

Exits 0 when both gates pass, 1 on the first violation.
``--artifacts`` keeps the lint report and the witness report for CI
upload (default: a temp dir, kept only on failure).
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

THREAD_RULES = ("SIM010", "SIM011", "SIM012", "SIM013", "SIM014")
DEFAULT_SEED = 11
TARGETS = ["src/repro", "scripts"]


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def static_gate(artifacts: Path) -> int:
    from repro.lint import lint_paths

    report = lint_paths([str(REPO_ROOT / t) for t in TARGETS],
                        select=list(THREAD_RULES))
    (artifacts / "thread-lint.json").write_text(json.dumps({
        "findings": [f.to_dict() for f in report.findings],
        "suppressed": len(report.suppressed),
        "files": report.n_files,
        "parse_errors": [list(e) for e in report.parse_errors],
    }, indent=2, sort_keys=True))
    if report.parse_errors:
        return fail(f"static: {len(report.parse_errors)} parse error(s): "
                    f"{report.parse_errors}")
    if report.findings:
        for finding in report.findings:
            print(finding.format())
        return fail(f"static: {len(report.findings)} thread-safety "
                    f"finding(s) in the tree")
    print(f"static: {report.n_files} file(s) clean under "
          f"{', '.join(THREAD_RULES)}")
    return 0


def runtime_gate(seed: int, artifacts: Path) -> int:
    from repro.lint import run_lockwatch_check

    seed_dir = artifacts / f"lockwatch-seed-{seed}"
    seed_dir.mkdir(parents=True, exist_ok=True)
    watcher = run_lockwatch_check(
        seed=seed, hold_threshold=5.0,
        db_path=str(seed_dir / "lockwatch.db"))
    report = watcher.format_report()
    (seed_dir / "lockwatch-report.txt").write_text(report + "\n")
    if watcher.n_acquires == 0:
        return fail(f"seed {seed}: the witness saw no lock traffic — "
                    f"the factory seam is not wired in")
    if not watcher.ok:
        print(report)
        return fail(f"seed {seed}: {len(watcher.findings)} lock "
                    f"witness finding(s)")
    print(f"runtime: seed {seed} clean — {report.splitlines()[0]}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts", type=Path, default=None,
                        help="directory to keep lint/witness reports in "
                             "(default: a temp dir)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="chaos seed for the lockwatch run")
    args = parser.parse_args()
    artifacts = args.artifacts or Path(
        tempfile.mkdtemp(prefix="concurrency-smoke-"))
    artifacts.mkdir(parents=True, exist_ok=True)

    for gate in (lambda: static_gate(artifacts),
                 lambda: runtime_gate(args.seed, artifacts)):
        code = gate()
        if code:
            print(f"artifacts kept in {artifacts}")
            return code
    print(f"OK — static + runtime gates passed; artifacts in {artifacts}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
