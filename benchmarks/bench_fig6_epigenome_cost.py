"""Fig. 6 — Epigenome cost under per-hour and per-second billing.

Paper: the cheapest Epigenome configuration is the local disk on a
single node, and because the application is not I/O-intensive the
systems' costs differ little.
"""

from repro.experiments.paper import check_cost_shapes
from repro.experiments.results import cost_matrix, format_figure_table

from conftest import publish

APP = "epigenome"


def test_fig6_epigenome_cost(benchmark, sweep_cache, output_dir):
    results = benchmark.pedantic(
        lambda: sweep_cache.results(APP), rounds=1, iterations=1)
    hourly = cost_matrix(results, per="hour")
    secondly = cost_matrix(results, per="second")

    lines = [
        format_figure_table(hourly, "FIG 6 (top) - Epigenome cost, per-hour "
                            "billing (USD)", value_format="{:8.2f}", unit="$"),
        "",
        format_figure_table(secondly, "FIG 6 (bottom) - Epigenome cost, "
                            "per-second billing (USD)",
                            value_format="{:8.2f}", unit="$"),
        "", "shape checks:"]
    failures = []
    for check, passed in check_cost_shapes(APP, hourly, secondly):
        lines.append(f"  [{'PASS' if passed else 'FAIL'}] {check.claim}")
        if not passed:
            failures.append(check.claim)
    # Paper: "the difference in cost between the various storage
    # solutions is relatively small" (same node count, excluding NFS's
    # extra server).
    comparable = {k: v for k, v in hourly.items()
                  if k[0] in ("s3", "glusterfs-nufa",
                              "glusterfs-distribute", "pvfs")}
    for n in (2, 4, 8):
        at_n = [v for (s, nn), v in comparable.items() if nn == n]
        spread = max(at_n) / min(at_n)
        lines.append(f"  cost spread at {n} nodes (non-NFS): {spread:.2f}x")
        assert spread < 1.6
    publish(output_dir, "fig6_epigenome_cost.txt", "\n".join(lines))
    assert not failures, f"cost-shape regressions: {failures}"
