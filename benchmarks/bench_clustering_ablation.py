"""Ablation — horizontal task clustering (the mitigation the paper
does *not* apply).

The paper runs every one of Montage's 10,429 tasks as its own Condor
job and attributes S3's and PVFS's poor Fig. 2 showing to per-file and
per-request overheads.  Pegasus's standard mitigation is horizontal
clustering; this ablation measures how much of the gap it closes in
our reproduction.

Finding (recorded rather than assumed): clustering trims scheduling
overhead but does not change which files move — the S3 GET/PUT
population and PVFS create population are per *file*, not per job — so
the storage-system ranking of Fig. 2 is robust to clustering; very
aggressive factors even hurt by serialising I/O inside fewer slots.
"""

from repro.apps import build_montage
from repro.experiments import ExperimentConfig, run_experiment
from repro.workflow import cluster_horizontal

from conftest import publish

FACTORS = (1, 8, 32)
SYSTEMS = ("s3", "glusterfs-nufa", "pvfs")
NODES = 4


def _measure():
    rows = {}
    for system in SYSTEMS:
        for factor in FACTORS:
            wf = build_montage()
            if factor > 1:
                wf = cluster_horizontal(wf, factor)
            r = run_experiment(ExperimentConfig("montage", system, NODES),
                               workflow=wf)
            rows[(system, factor)] = (r.makespan, r.run.n_jobs)
    return rows


def test_clustering_does_not_change_the_ranking(benchmark, output_dir):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = ["ABLATION - horizontal clustering, Montage @ 4 nodes",
             f"{'system':<22}{'factor':>8}{'jobs':>8}{'makespan':>10}"]
    for (system, factor), (makespan, jobs) in rows.items():
        lines.append(f"{system:<22}{factor:>8}{jobs:>8}{makespan:>9.0f}s")
    publish(output_dir, "clustering_ablation.txt", "\n".join(lines))
    # The paper's ranking is robust to clustering: GlusterFS stays the
    # fastest system at every factor.
    for factor in FACTORS:
        gfs = rows[("glusterfs-nufa", factor)][0]
        assert gfs < rows[("s3", factor)][0]
        assert gfs < rows[("pvfs", factor)][0]
