"""Fig. 3 — Epigenome makespan across storage systems and cluster sizes.

Paper shapes: the CPU-bound application barely cares about the storage
system; runtime scales down with cores; S3/PVFS are only slightly
slower than the rest.
"""

from repro.experiments import paper_matrix, run_sweep
from repro.experiments.paper import check_shapes
from repro.experiments.results import format_figure_table, makespan_matrix

from conftest import publish

APP = "epigenome"


def test_fig3_epigenome_performance(benchmark, sweep_cache, output_dir):
    results = benchmark.pedantic(
        lambda: run_sweep(paper_matrix(APP)), rounds=1, iterations=1)
    sweep_cache.put(APP, results)

    matrix = makespan_matrix(results)
    lines = [format_figure_table(
        matrix, "FIG 3 - Epigenome makespan (s) by storage system and "
                "cluster size"), "", "shape checks:"]
    failures = []
    for check, passed in check_shapes(APP, matrix):
        lines.append(f"  [{'PASS' if passed else 'FAIL'}] {check.claim}")
        if not passed:
            failures.append(check.claim)
    publish(output_dir, "fig3_epigenome.txt", "\n".join(lines))
    assert not failures, f"figure-shape regressions: {failures}"
