"""Table I — application resource usage comparison.

Paper: Montage is I/O-bound (High/Low/Low), Broadband memory-limited
(Medium/High/Medium), Epigenome CPU-bound (Low/Medium/High), as
determined by wfprof.  We profile each application's single-node
reference execution and check every cell.
"""

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.paper import TABLE1
from repro.profiling import format_table1, profile_records

from conftest import publish


def _profile_all():
    profiles = []
    for app in ("montage", "broadband", "epigenome"):
        result = run_experiment(ExperimentConfig(app, "local", 1))
        profiles.append(profile_records(app, result.run.records))
    return profiles


def test_table1_resource_usage(benchmark, output_dir):
    profiles = benchmark.pedantic(_profile_all, rounds=1, iterations=1)

    lines = [format_table1(profiles), "", "measured fractions:"]
    for p in profiles:
        lines.append(
            f"  {p.name:<12} io={p.io_fraction:5.1%} "
            f"cpu={p.cpu_fraction:5.1%} "
            f"weighted_mem={p.weighted_memory / 1e9:4.2f} GB")
    publish(output_dir, "table1.txt", "\n".join(lines))

    for p in profiles:
        expected = TABLE1[p.name]
        assert p.ratings() == expected, (
            f"{p.name}: measured {p.ratings()} != paper {expected}")
