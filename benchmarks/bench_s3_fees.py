"""In-text §VI — S3 request-fee surcharges.

Paper: the S3 fee schedule ($0.01/1k PUTs, $0.01/10k GETs, $0.15 per
GB-month) adds ~$0.28 for Montage, ~$0.01 for Epigenome and ~$0.02 for
Broadband, with the storage component << $0.01.  Fees scale with the
file population, so Montage's tens of thousands of files dominate.
"""

import pytest

from repro.experiments.paper import TEXT_ANCHORS

from conftest import publish

#: Generous factor band: request counts depend on scheduling details
#: (cache hits), so we check magnitude, not cents.
BAND = 3.0


def _fees(sweep_cache):
    out = {}
    for app in ("montage", "epigenome", "broadband"):
        results = sweep_cache.results(app)
        best = None
        for r in results:
            if r.config.storage == "s3" and r.config.n_workers == 4:
                best = r
        out[app] = (best.cost.s3_fees.request_cost,
                    best.cost.s3_fees.storage_cost,
                    best.run.storage_stats.get_requests,
                    best.run.storage_stats.put_requests)
    return out


def test_s3_fee_surcharges(benchmark, sweep_cache, output_dir):
    fees = benchmark.pedantic(lambda: _fees(sweep_cache),
                              rounds=1, iterations=1)
    lines = ["PAPER SECTION VI - S3 request-fee surcharges (4-node runs)",
             f"{'app':<12}{'paper':>8}{'measured':>10}{'GETs':>9}{'PUTs':>9}"]
    for app in fees:
        paper = TEXT_ANCHORS[f"cost.s3_fees.{app}"]
        total, storage, gets, puts = fees[app]
        lines.append(f"{app:<12}{paper:>7.2f}${total:>9.2f}$"
                     f"{gets:>9}{puts:>9}")
    publish(output_dir, "s3_fees.txt", "\n".join(lines))
    for app in fees:
        paper = TEXT_ANCHORS[f"cost.s3_fees.{app}"]
        requests, storage, gets, puts = fees[app]
        # The paper's per-app surcharge quotes the request fees (it
        # reports the storage component separately as negligible).
        assert paper / BAND <= requests <= paper * BAND, \
            f"{app}: fee ${requests:.3f} vs paper ${paper:.2f}"
        # Storage is negligible next to the request fees.  (Our
        # accounting charges the whole namespace for the full run — an
        # upper bound; the paper's "<< $0.01" holds for the average
        # residency.)
        assert storage < 0.02
    # Relative ordering: Montage's file population dominates.
    assert fees["montage"][0] > fees["broadband"][0]
    assert fees["montage"][0] > fees["epigenome"][0]
