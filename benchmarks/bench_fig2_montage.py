"""Fig. 2 — Montage makespan across storage systems and cluster sizes.

Paper shapes: GlusterFS (both layouts) clearly fastest; NFS does well
with few clients and beats the local disk at one node; S3 and PVFS
suffer on Montage's tens of thousands of small files.
"""

from repro.experiments import paper_matrix, run_sweep
from repro.experiments.paper import check_shapes
from repro.experiments.results import format_figure_table, makespan_matrix

from conftest import publish

APP = "montage"


def test_fig2_montage_performance(benchmark, sweep_cache, output_dir):
    results = benchmark.pedantic(
        lambda: run_sweep(paper_matrix(APP)), rounds=1, iterations=1)
    sweep_cache.put(APP, results)

    matrix = makespan_matrix(results)
    lines = [format_figure_table(
        matrix, "FIG 2 - Montage makespan (s) by storage system and "
                "cluster size"), "", "shape checks:"]
    failures = []
    for check, passed in check_shapes(APP, matrix):
        lines.append(f"  [{'PASS' if passed else 'FAIL'}] {check.claim}")
        if not passed:
            failures.append(check.claim)
    publish(output_dir, "fig2_montage.txt", "\n".join(lines))
    assert not failures, f"figure-shape regressions: {failures}"
