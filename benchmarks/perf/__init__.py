"""Simulation-kernel microbenchmarks and the perf gate's measurement core.

Unlike the ``bench_*`` paper benchmarks (which regenerate tables and
figures), this package times the *simulator itself*: the flow-network
fill, the event loop, DAG construction/instantiation, and two
end-to-end Montage cells.  ``scripts/perf_gate.py`` runs the suite and
checks it against the committed ``BENCH_kernel.json``.
"""
