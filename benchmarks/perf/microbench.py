"""Kernel microbenchmarks (wall-clock; deliberately outside src/repro).

Each ``bench_*`` function exercises one hot layer of the simulator and
returns elapsed seconds (best of ``repeats`` runs).  :func:`run_suite`
bundles them at three scales:

``smoke``
    Downscaled for CI: a few hundred thousand events, a 1-degree
    Montage.  Finishes in well under a minute on a laptop.
``full``
    The honest numbers: paper-scale Montage cells (10,429 tasks) on
    S3 and NFS at 4 workers — the workloads the PR's speedup targets.
``sweep``
    Fleet-shaped load: hundreds of small cells through ``run_sweep``
    (serial and with a 4-worker pool) plus a dense-component flownet
    churn that exercises the vectorized fill rounds.

Because absolute wall-clock depends on the host, every figure is also
reported *normalized* by :func:`calibrate` — the time of a fixed pure
Python spin loop on the same machine — so the perf gate compares
machine-independent ratios, not raw seconds.

This module reads the host clock on purpose; it lives in
``benchmarks/`` (not on the ``repro.lint`` SIM001 path) because
nothing here runs inside a simulation.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Callable, Dict

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.apps import build_montage, build_synthetic  # noqa: E402
from repro.apps.templates import WorkflowTemplate  # noqa: E402
from repro.experiments.runner import (  # noqa: E402
    ExperimentConfig,
    run_experiment,
    run_sweep,
)
from repro.simcore.engine import Environment  # noqa: E402
from repro.simcore.flownet import FlowNetwork, Link  # noqa: E402

#: Spin-loop iterations for machine-speed calibration.
_CALIBRATION_N = 2_000_000


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def calibrate(repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python spin loop (machine-speed probe)."""
    def spin() -> None:
        acc = 0
        for i in range(_CALIBRATION_N):
            acc += i & 7
    return _best_of(spin, repeats)


# -- kernel layers ---------------------------------------------------------


def bench_flownet_kernel(n_waves: int = 80, flows_per_wave: int = 24,
                         n_links: int = 12, repeats: int = 3) -> float:
    """Churn the max-min fill: waves of overlapping two-link flows.

    Stresses exactly what the incremental reallocator optimizes —
    flow arrivals/completions touching small link components.
    """
    def once() -> None:
        env = Environment()
        net = FlowNetwork(env)
        links = [Link(f"l{i}", 1e8) for i in range(n_links)]

        def driver():
            for wave in range(n_waves):
                events = []
                for i in range(flows_per_wave):
                    a = links[(wave + i) % n_links]
                    b = links[(wave * 7 + i * 3 + 1) % n_links]
                    if a is b:
                        b = links[(wave * 7 + i * 3 + 2) % n_links]
                    nbytes = 1e6 * (1 + (i % 5))
                    events.append(net.transfer((a, b), nbytes))
                yield env.all_of(events)

        env.process(driver())
        env.run()

    return _best_of(once, repeats)


def bench_event_loop(n_events: int = 300_000, repeats: int = 3) -> float:
    """Raw engine throughput: a timeout chain plus a succeed chain."""
    def once() -> None:
        env = Environment()

        def ticker():
            for _ in range(n_events // 2):
                yield env.timeout(1.0)

        def chainer():
            for _ in range(n_events // 2):
                ev = env.event()
                ev.succeed()
                yield ev

        env.process(ticker())
        env.process(chainer())
        env.run()

    return _best_of(once, repeats)


def bench_dag_build(degrees: float = 8.0, repeats: int = 3) -> float:
    """Cold construction of the Montage DAG (what templates amortize)."""
    return _best_of(lambda: build_montage(degrees=degrees), repeats)


def bench_template_instantiate(n_calls: int = 1000,
                               repeats: int = 3) -> float:
    """Warm per-run cost of a cached template (should be ~free)."""
    template = WorkflowTemplate(build_montage)
    template.instantiate()  # build outside the timed region

    def once() -> None:
        for _ in range(n_calls):
            template.instantiate()

    return _best_of(once, repeats)


def bench_flownet_dense(n_waves: int = 40, flows_per_wave: int = 96,
                        n_links: int = 6, repeats: int = 3) -> float:
    """Dense components: waves big enough to hit the vectorized fill.

    With ~100 flows sharing 6 links every wave forms one large link
    component, so each refill runs the masked-reduction rounds instead
    of the scalar loop — the SoA kernel's headline case.
    """
    def once() -> None:
        env = Environment()
        net = FlowNetwork(env)
        links = [Link(f"l{i}", 1e8) for i in range(n_links)]

        def driver():
            for wave in range(n_waves):
                events = []
                for i in range(flows_per_wave):
                    a = links[(wave + i) % n_links]
                    b = links[(wave * 5 + i * 3 + 1) % n_links]
                    if a is b:
                        b = links[(wave * 5 + i * 3 + 2) % n_links]
                    nbytes = 1e6 * (1 + (i % 7))
                    events.append(net.transfer((a, b), nbytes))
                yield env.all_of(events)

        env.process(driver())
        env.run()

    return _best_of(once, repeats)


def bench_sweep(n_cells: int = 240, jobs: int = 1,
                repeats: int = 1) -> float:
    """Hundreds of small cells through :func:`run_sweep`.

    Sweep-shaped load is where the batched same-timestamp cascades
    pay off: every cell is dominated by event-cascade churn rather
    than one big steady state.  ``jobs`` exercises the process-pool
    path (worker spawn + telemetry replay included in the figure,
    exactly as a user-visible sweep would pay them).
    """
    workflow = build_synthetic(30, width=6, seed=1)
    storages = ("local", "nfs", "s3", "pvfs")

    def once() -> None:
        configs = [
            ExperimentConfig("synthetic", storages[i % len(storages)],
                             1 + i % 4, seed=i)
            for i in range(n_cells)
        ]
        run_sweep(configs, workflow=workflow, jobs=jobs)

    return _best_of(once, repeats)


def bench_end_to_end(storage: str, degrees: float = 8.0,
                     repeats: int = 1) -> float:
    """One full Montage cell at 4 workers (telemetry off, like sweeps)."""
    workflow = None if degrees == 8.0 else build_montage(degrees=degrees)

    def once() -> None:
        config = ExperimentConfig("montage", storage, 4, seed=0)
        run_experiment(config, workflow=workflow)

    return _best_of(once, repeats)


# -- suite -----------------------------------------------------------------


def run_suite(scale: str = "smoke") -> Dict[str, Dict[str, float]]:
    """Run every microbench at ``scale``; returns name -> timings.

    Each entry carries raw ``seconds`` and machine-``normalized``
    (seconds / calibration-loop seconds) figures.
    """
    if scale not in ("smoke", "full", "sweep"):
        raise ValueError(
            f"scale must be 'smoke', 'full', or 'sweep', got {scale!r}")
    calibration = calibrate()
    benches: Dict[str, float] = {}
    if scale == "sweep":
        # Sweep tier: cascade-churn workloads at fleet scale — dense
        # link components (vectorized fill) and hundreds of small
        # cells through run_sweep, serial and with a worker pool.
        benches["flownet_dense"] = bench_flownet_dense()
        benches["sweep_240_serial"] = bench_sweep(n_cells=240, jobs=1)
        benches["sweep_240_jobs4"] = bench_sweep(n_cells=240, jobs=4)
        return {
            name: {"seconds": round(seconds, 4),
                   "normalized": round(seconds / calibration, 3)}
            for name, seconds in benches.items()
        } | {"_calibration": {"seconds": round(calibration, 4),
                              "normalized": 1.0}}
    smoke = scale == "smoke"
    benches["flownet_kernel"] = bench_flownet_kernel(
        n_waves=30 if smoke else 80)
    benches["event_loop"] = bench_event_loop(
        n_events=100_000 if smoke else 300_000)
    benches["dag_build"] = bench_dag_build(
        degrees=2.0 if smoke else 8.0)
    benches["template_instantiate"] = bench_template_instantiate()
    # Smoke cells use a 2-degree Montage (~650 tasks) with best-of-3:
    # the 1-degree DAG finishes in ~50 ms, far too short to time
    # reproducibly against a 25% gate, and best-of damps scheduler
    # noise toward the true minimum on busy hosts.
    degrees = 2.0 if smoke else 8.0
    repeats = 3 if smoke else 1
    benches["end_to_end_montage_s3_4"] = bench_end_to_end(
        "s3", degrees, repeats=repeats)
    benches["end_to_end_montage_nfs_4"] = bench_end_to_end(
        "nfs", degrees, repeats=repeats)
    return {
        name: {"seconds": round(seconds, 4),
               "normalized": round(seconds / calibration, 3)}
        for name, seconds in benches.items()
    } | {"_calibration": {"seconds": round(calibration, 4),
                          "normalized": 1.0}}
