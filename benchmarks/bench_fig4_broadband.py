"""Fig. 4 — Broadband makespan across storage systems and cluster sizes.

Paper shapes: S3 gives the best overall performance (the client cache
exploits Broadband's input reuse); GlusterFS NUFA beats distribute
(write-local chains); NFS *degrades* from 2 to 4 nodes and stays far
behind GlusterFS/S3.  The text anchors NFS at 4 nodes to 5363 s.
"""

from repro.experiments import paper_matrix, run_sweep
from repro.experiments.paper import TEXT_ANCHORS, check_shapes
from repro.experiments.results import format_figure_table, makespan_matrix

from conftest import publish

APP = "broadband"


def test_fig4_broadband_performance(benchmark, sweep_cache, output_dir):
    results = benchmark.pedantic(
        lambda: run_sweep(paper_matrix(APP)), rounds=1, iterations=1)
    sweep_cache.put(APP, results)

    matrix = makespan_matrix(results)
    anchor = TEXT_ANCHORS["broadband.nfs.4node_seconds"]
    measured = matrix[("nfs", 4)]
    lines = [format_figure_table(
        matrix, "FIG 4 - Broadband makespan (s) by storage system and "
                "cluster size"),
        "",
        f"text anchor: NFS@4 paper={anchor:.0f}s measured={measured:.0f}s "
        f"({measured / anchor - 1:+.0%})",
        "", "shape checks:"]
    failures = []
    for check, passed in check_shapes(APP, matrix):
        lines.append(f"  [{'PASS' if passed else 'FAIL'}] {check.claim}")
        if not passed:
            failures.append(check.claim)
    publish(output_dir, "fig4_broadband.txt", "\n".join(lines))
    assert not failures, f"figure-shape regressions: {failures}"
    # The NFS@4 anchor should hold within a factor-band (simulated
    # substrate; shape, not absolute, is the claim).
    assert 0.5 * anchor <= measured <= 1.5 * anchor
