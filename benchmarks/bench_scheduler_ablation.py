"""Ablation — the data-aware scheduler the paper hypothesises (§IV.A).

Paper: "A more data-aware scheduler could potentially improve workflow
performance by increasing cache hits and further reducing transfers."
We quantify it: Broadband (the cache-sensitive application) on S3 with
the locality-blind FIFO pool vs the locality-aware pool.
"""

from repro.experiments import ExperimentConfig, run_experiment

from conftest import publish


def _run_both():
    fifo = run_experiment(ExperimentConfig(
        "broadband", "s3", 4, scheduler="fifo"))
    aware = run_experiment(ExperimentConfig(
        "broadband", "s3", 4, scheduler="locality"))
    return fifo, aware


def test_data_aware_scheduler_improves_s3(benchmark, output_dir):
    fifo, aware = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    f_stats, a_stats = fifo.run.storage_stats, aware.run.storage_stats
    lines = [
        "ABLATION (paper section IV.A) - scheduler data-awareness, "
        "Broadband on S3 @ 4 nodes",
        f"{'scheduler':<12}{'makespan':>10}{'GETs':>8}{'cache hits':>12}",
        f"{'fifo':<12}{fifo.makespan:>9.0f}s{f_stats.get_requests:>8}"
        f"{f_stats.cache_hits:>12}",
        f"{'locality':<12}{aware.makespan:>9.0f}s{a_stats.get_requests:>8}"
        f"{a_stats.cache_hits:>12}",
    ]
    publish(output_dir, "scheduler_ablation.txt", "\n".join(lines))
    # The aware scheduler should not fetch more and not run slower
    # (the paper predicts an improvement; we require at least parity
    # plus a cache-hit gain).
    assert a_stats.cache_hits >= f_stats.cache_hits
    assert aware.makespan <= fifo.makespan * 1.02
