"""Ablation — zero-filling the ephemeral disks (§III.C).

Paper: Amazon suggests zero-filling ephemeral disks to avoid the
first-write penalty, but "initialization is not feasible for many
applications because it takes too much time": 50 GB takes ~42 minutes,
about as long as running Montage itself, so for a one-shot workflow it
never pays.  We measure both sides of that trade-off.
"""

from repro.apps import build_montage
from repro.cloud import MB
from repro.experiments import ExperimentConfig, run_experiment

from conftest import publish

#: Storage the paper says a Montage run needs.
MONTAGE_FOOTPRINT = 50_000 * MB


def _run_both():
    cold = run_experiment(
        ExperimentConfig("montage", "local", 1, initialized_disks=False),
        workflow=build_montage())
    warm = run_experiment(
        ExperimentConfig("montage", "local", 1, initialized_disks=True),
        workflow=build_montage())
    return cold, warm


def test_initialization_does_not_pay_for_one_workflow(benchmark, output_dir):
    cold, warm = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    # Zero-fill runs at the single-disk first-write rate (the paper's
    # 42 minutes for 50 GB).
    init_seconds = MONTAGE_FOOTPRINT / (20 * MB)
    total_warm = init_seconds + warm.makespan
    lines = [
        "ABLATION (paper section III.C) - ephemeral disk initialization, "
        "Montage @ 1 node",
        f"{'configuration':<34}{'seconds':>10}",
        f"{'uninitialized (paper setup)':<34}{cold.makespan:>9.0f}s",
        f"{'initialized, run only':<34}{warm.makespan:>9.0f}s",
        f"{'zero-fill 50 GB':<34}{init_seconds:>9.0f}s",
        f"{'initialized, fill + run':<34}{total_warm:>9.0f}s",
    ]
    publish(output_dir, "disk_init_ablation.txt", "\n".join(lines))
    # Initialization speeds up the run itself...
    assert warm.makespan < cold.makespan
    # ...but fill+run is slower than just running uninitialised
    # ("initialization does not make economic sense" for one workflow).
    assert total_warm > cold.makespan
