"""In-text §IV — XtreemFS: the abandoned system.

Paper: "the workflows performed far worse on XtreemFS than the other
systems tested, taking more than twice as long as they did on the
storage systems reported here before they were terminated without
completing."  We run the (scaled-down, so they finish) Montage and
Broadband workflows — the I/O-heavy pair the WAN file system hurts —
on XtreemFS and on GlusterFS and check the >2x gap.
"""

from repro.apps import build_broadband, build_montage
from repro.experiments import ExperimentConfig, run_experiment

from conftest import publish


def _run_pair(app, workflow_builder):
    wf_x = workflow_builder()
    wf_g = workflow_builder()
    x = run_experiment(ExperimentConfig(app, "xtreemfs", 4),
                       workflow=wf_x)
    g = run_experiment(ExperimentConfig(app, "glusterfs-nufa", 4),
                       workflow=wf_g)
    return x.makespan, g.makespan


def _measure():
    rows = {}
    rows["montage-2deg"] = _run_pair(
        "montage", lambda: build_montage(degrees=2.0))
    rows["broadband-small"] = _run_pair(
        "broadband", lambda: build_broadband(n_sources=2, n_sites=4))
    return rows


def test_xtreemfs_more_than_twice_as_slow(benchmark, output_dir):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = ["PAPER SECTION IV - XtreemFS vs GlusterFS (4 nodes)",
             f"{'workflow':<20}{'xtreemfs':>12}{'glusterfs':>12}{'ratio':>8}"]
    for name, (x, g) in rows.items():
        lines.append(f"{name:<20}{x:>11.0f}s{g:>11.0f}s{x / g:>8.1f}")
    publish(output_dir, "xtreemfs.txt", "\n".join(lines))
    for name, (x, g) in rows.items():
        assert x > 2.0 * g, f"{name}: XtreemFS only {x / g:.1f}x slower"
