"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper.
Because the cost figures (5-7) reuse the runs behind the performance
figures (2-4), completed sweeps are cached for the session.  Every
bench writes its rendered table to ``benchmarks/output/`` so results
survive the run, and prints it for ``pytest -s``.
"""

import pathlib

import pytest

from repro.experiments import paper_matrix, run_sweep

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


class SweepCache:
    """Lazily runs and caches the full evaluation matrix per app."""

    def __init__(self):
        self._results = {}

    def results(self, app: str):
        """All experiment results for one application's figure."""
        if app not in self._results:
            self._results[app] = run_sweep(paper_matrix(app))
        return self._results[app]

    def put(self, app: str, results) -> None:
        """Store results computed elsewhere (inside a benchmark timer)."""
        self._results[app] = results

    def has(self, app: str) -> bool:
        """Whether this app's sweep already ran."""
        return app in self._results


@pytest.fixture(scope="session")
def sweep_cache():
    return SweepCache()


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def publish(output_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/output/."""
    print()
    print(text)
    (output_dir / name).write_text(text + "\n")
