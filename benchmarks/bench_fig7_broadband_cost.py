"""Fig. 7 — Broadband cost under per-hour and per-second billing.

Paper: local disk, GlusterFS and S3 all tie (near the minimum); NFS is
expensive (extra node + poor scaling); adding resources only lowered
cost in the NFS 1->2 step, where the dedicated server is amortised
over more workers.
"""

from repro.experiments.paper import check_cost_shapes
from repro.experiments.results import cost_matrix, format_figure_table

from conftest import publish

APP = "broadband"


def test_fig7_broadband_cost(benchmark, sweep_cache, output_dir):
    results = benchmark.pedantic(
        lambda: sweep_cache.results(APP), rounds=1, iterations=1)
    hourly = cost_matrix(results, per="hour")
    secondly = cost_matrix(results, per="second")

    lines = [
        format_figure_table(hourly, "FIG 7 (top) - Broadband cost, per-hour "
                            "billing (USD)", value_format="{:8.2f}", unit="$"),
        "",
        format_figure_table(secondly, "FIG 7 (bottom) - Broadband cost, "
                            "per-second billing (USD)",
                            value_format="{:8.2f}", unit="$"),
        "", "shape checks:"]
    failures = []
    for check, passed in check_cost_shapes(APP, hourly, secondly):
        lines.append(f"  [{'PASS' if passed else 'FAIL'}] {check.claim}")
        if not passed:
            failures.append(check.claim)
    publish(output_dir, "fig7_broadband_cost.txt", "\n".join(lines))
    assert not failures, f"cost-shape regressions: {failures}"
    # NFS is never the cheapest option at any size (extra node).
    cheapest = min(hourly, key=hourly.get)
    assert cheapest[0] != "nfs"
