"""Extension — the paper's §VIII future work, answered.

    "In the future we plan to investigate configurations in which
    files can be transferred directly from one computational node to
    another."

We run all three applications at 4 nodes on the direct-transfer mode
(`repro.storage.p2p`) and compare with the shared systems the paper
measured.  Findings: P2P keeps GlusterFS NUFA's write locality and
adds S3-style per-node caching without object-store round trips, so it
beats S3 for every application and *wins* Broadband outright — but for
Montage the staged landing copies (each remote pull writes the local
disk at the ephemeral first-write rate) keep GlusterFS ahead, which is
precisely the trade-off the paper's future-work section asks about.
"""

from repro.experiments import ExperimentConfig, run_experiment

from conftest import publish

NODES = 4


def _measure(sweep_cache):
    rows = {}
    for app in ("montage", "broadband", "epigenome"):
        p2p = run_experiment(ExperimentConfig(app, "p2p", NODES))
        others = {
            r.config.storage: r.makespan
            for r in sweep_cache.results(app)
            if r.config.n_workers == NODES
        }
        rows[app] = (p2p.makespan, others)
    return rows


def test_direct_transfers_competitive(benchmark, sweep_cache, output_dir):
    rows = benchmark.pedantic(lambda: _measure(sweep_cache),
                              rounds=1, iterations=1)
    lines = ["EXTENSION (paper section VIII) - direct node-to-node "
             f"transfers, {NODES} nodes",
             f"{'app':<12}{'p2p':>10}{'best shared':>14}{'(system)':>24}"]
    for app, (p2p, others) in rows.items():
        best_name = min(others, key=others.get)
        lines.append(f"{app:<12}{p2p:>9.0f}s{others[best_name]:>13.0f}s"
                     f"{best_name:>24}")
    publish(output_dir, "p2p_future_work.txt", "\n".join(lines))
    for app, (p2p, others) in rows.items():
        best = min(others.values())
        # Always better than the object store...
        assert p2p <= others["s3"], \
            f"{app}: p2p {p2p:.0f}s vs s3 {others['s3']:.0f}s"
        # ...and within ~60% of the best shared system (Montage's
        # landing-copy penalty sits right at this boundary).
        assert p2p <= 1.6 * best, f"{app}: p2p {p2p:.0f}s vs best {best:.0f}s"
    # Broadband is where direct transfers shine: best of all systems.
    bb_p2p, bb_others = rows["broadband"]
    assert bb_p2p <= min(bb_others.values())
