"""Extension — makespan under transient task failures.

The paper's runs completed cleanly; production workflow deployments do
not.  This bench sweeps the per-attempt crash rate for Epigenome on
GlusterFS at 4 nodes and reports the retry-masked makespan inflation —
a resilience curve for the DAGMan retry machinery.
"""

from repro.experiments import ExperimentConfig, run_experiment

from conftest import publish

RATES = (0.0, 0.05, 0.10, 0.20)


def _measure():
    rows = {}
    for rate in RATES:
        r = run_experiment(ExperimentConfig(
            "epigenome", "glusterfs-nufa", 4,
            task_failure_rate=rate, retries=10, seed=1))
        failed = sum(1 for rec in r.run.records if rec.failed)
        rows[rate] = (r.makespan, failed)
    return rows


def test_retries_bound_failure_inflation(benchmark, output_dir):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    base = rows[0.0][0]
    lines = ["EXTENSION - failure resilience, Epigenome on GlusterFS @ 4 "
             "nodes (retries=10)",
             f"{'crash rate':>12}{'makespan':>12}{'failed attempts':>18}"
             f"{'inflation':>12}"]
    for rate, (makespan, failed) in rows.items():
        lines.append(f"{rate:>12.2f}{makespan:>11.0f}s{failed:>18}"
                     f"{makespan / base:>11.2f}x")
    publish(output_dir, "failure_resilience.txt", "\n".join(lines))
    # Monotone-ish inflation, and a 20% crash rate costs well under 2x
    # (retries mask failures; lost work is only the crashed attempts).
    assert rows[0.05][0] >= base
    assert rows[0.20][0] < 2.0 * base
    assert rows[0.20][1] > rows[0.05][1]
