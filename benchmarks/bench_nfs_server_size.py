"""In-text §V.C — Broadband on a bigger NFS server.

Paper: replacing the m1.xlarge NFS server with an m2.4xlarge (64 GB,
8 cores) at 4 nodes improved Broadband from 5363 s to 4368 s, "but was
still significantly worse than GlusterFS and S3 (<3000 seconds in all
cases)" — i.e. a bigger server helps but does not fix the central-
server architecture.
"""

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.paper import TEXT_ANCHORS

from conftest import publish


def _run_both():
    small = run_experiment(ExperimentConfig(
        "broadband", "nfs", 4, nfs_server_type="m1.xlarge"))
    big = run_experiment(ExperimentConfig(
        "broadband", "nfs", 4, nfs_server_type="m2.4xlarge"))
    return small.makespan, big.makespan


def test_bigger_nfs_server_helps_but_not_enough(benchmark, sweep_cache,
                                                output_dir):
    small, big = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    paper_small = TEXT_ANCHORS["broadband.nfs.4node_seconds"]
    paper_big = TEXT_ANCHORS["broadband.nfs_m24xlarge.4node_seconds"]

    # GlusterFS/S3 comparison points at 4 nodes.
    results = sweep_cache.results("broadband")
    others = {(r.config.storage, r.config.n_workers): r.makespan
              for r in results}
    s3 = others[("s3", 4)]
    gfs = others[("glusterfs-nufa", 4)]

    lines = [
        "PAPER SECTION V.C - Broadband, 4 nodes, NFS server size",
        f"{'configuration':<28}{'paper':>10}{'measured':>10}",
        f"{'NFS on m1.xlarge':<28}{paper_small:>9.0f}s{small:>9.0f}s",
        f"{'NFS on m2.4xlarge':<28}{paper_big:>9.0f}s{big:>9.0f}s",
        f"{'S3 (same size)':<28}{'<3000':>10}{s3:>9.0f}s",
        f"{'GlusterFS NUFA (same size)':<28}{'<3000':>10}{gfs:>9.0f}s",
    ]
    publish(output_dir, "nfs_server_size.txt", "\n".join(lines))

    assert big < small, "bigger server should improve the runtime"
    assert big > max(s3, gfs), \
        "even the big server stays behind GlusterFS and S3"
    assert 0.5 * paper_small <= small <= 1.5 * paper_small
