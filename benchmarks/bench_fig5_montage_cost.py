"""Fig. 5 — Montage cost under per-hour and per-second billing.

Paper: the cheapest Montage configuration is GlusterFS on two nodes
(cost follows performance); per-second charges are never above
per-hour charges.
"""

import pytest

from repro.experiments.paper import check_cost_shapes
from repro.experiments.results import cost_matrix, format_figure_table

from conftest import publish

APP = "montage"


def test_fig5_montage_cost(benchmark, sweep_cache, output_dir):
    results = benchmark.pedantic(
        lambda: sweep_cache.results(APP), rounds=1, iterations=1)
    hourly = cost_matrix(results, per="hour")
    secondly = cost_matrix(results, per="second")

    lines = [
        format_figure_table(hourly, "FIG 5 (top) - Montage cost, per-hour "
                            "billing (USD)", value_format="{:8.2f}", unit="$"),
        "",
        format_figure_table(secondly, "FIG 5 (bottom) - Montage cost, "
                            "per-second billing (USD)",
                            value_format="{:8.2f}", unit="$"),
        "", "shape checks:"]
    failures = []
    for check, passed in check_cost_shapes(APP, hourly, secondly):
        lines.append(f"  [{'PASS' if passed else 'FAIL'}] {check.claim}")
        if not passed:
            failures.append(check.claim)
    publish(output_dir, "fig5_montage_cost.txt", "\n".join(lines))
    assert not failures, f"cost-shape regressions: {failures}"
    for cell, hour_cost in hourly.items():
        assert secondly[cell] <= hour_cost + 1e-9
