"""In-text §III.C — the ephemeral-disk measurements.

Paper numbers: a single uninitialised ephemeral disk writes at ~20 MB/s
the first time and at the expected rate afterwards, reads peak ~110
MB/s; the 4-disk RAID0 array gives 80-100 MB/s first writes, 350-400
MB/s re-writes, ~310 MB/s reads; zero-filling 50 GB takes ~42 minutes.
"""

import pytest

from repro.cloud import EPHEMERAL_DISK, MB, BlockDevice, make_node_disk, raid0
from repro.experiments.paper import TEXT_ANCHORS
from repro.simcore import Environment

from conftest import publish


def _measure(device_factory, op, nbytes=200 * MB, repeat_key=None):
    """Measured bandwidth (MB/s) of one operation on a fresh device."""
    env = Environment()
    disk = device_factory(env)

    def proc():
        if repeat_key is not None:   # touch first so the op is a re-write
            yield from disk.write(repeat_key, nbytes)
        t0 = env.now
        if op == "read":
            yield from disk.read(nbytes)
        elif op == "write":
            yield from disk.write(repeat_key or "x", nbytes)
        else:
            yield from disk.zero_fill(nbytes)
        return nbytes / (env.now - t0) / MB

    return env.run(until=env.process(proc()))


def _all_measurements():
    single = lambda env: BlockDevice(env, EPHEMERAL_DISK)  # noqa: E731
    array = lambda env: make_node_disk(env, ndisks=4)      # noqa: E731
    rows = {
        "disk.single.first_write_mbs": _measure(single, "write"),
        "disk.single.read_mbs": _measure(single, "read"),
        "disk.raid0.first_write_mbs": _measure(array, "write"),
        "disk.raid0.rewrite_mbs": _measure(array, "write", repeat_key="k"),
        "disk.raid0.read_mbs": _measure(array, "read"),
    }
    # Zero-fill of 50 GB, in minutes.
    env = Environment()
    disk = make_node_disk(env, ndisks=4)

    def fill():
        yield from disk.zero_fill(50_000 * MB)

    env.run(until=env.process(fill()))
    rows["disk.zero_fill_50gb_minutes"] = env.now / 60.0
    return rows


def test_ephemeral_disk_measurements(benchmark, output_dir):
    rows = benchmark.pedantic(_all_measurements, rounds=1, iterations=1)
    lines = ["PAPER SECTION III.C - ephemeral disk model vs measurements",
             f"{'metric':<36}{'paper range':>18}{'measured':>12}"]
    for key, measured in rows.items():
        lo, hi = TEXT_ANCHORS[key]
        lines.append(f"{key:<36}{f'{lo:g}-{hi:g}':>18}{measured:>12.1f}")
        assert lo <= measured <= hi, f"{key}: {measured} not in [{lo},{hi}]"
    publish(output_dir, "disk_model.txt", "\n".join(lines))
