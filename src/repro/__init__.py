"""repro: simulation-based reproduction of Juve et al., "Data Sharing
Options for Scientific Workflows on Amazon EC2" (SC 2010).

Quick start::

    from repro import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(
        app="montage", storage="glusterfs-nufa", n_workers=4))
    print(result.makespan, result.cost.per_hour_total)

Layering (see DESIGN.md):

* :mod:`repro.simcore` — discrete-event kernel;
* :mod:`repro.cloud` — EC2 substrate (instances, disks, network, billing);
* :mod:`repro.storage` — the data-sharing options;
* :mod:`repro.workflow` — Pegasus/DAGMan/Condor analogs;
* :mod:`repro.apps` — Montage / Broadband / Epigenome generators;
* :mod:`repro.profiling` — wfprof (Table I);
* :mod:`repro.cost` — 2010 pricing, per-hour vs per-second billing;
* :mod:`repro.experiments` — the evaluation harness.
"""

from .apps import (
    build_app,
    build_broadband,
    build_epigenome,
    build_montage,
    build_synthetic,
)
from .experiments import (
    ExperimentConfig,
    ExperimentResult,
    paper_matrix,
    run_experiment,
    run_sweep,
)
from .profiling import format_table1, profile_records
from .storage import STORAGE_NAMES, make_storage
from .workflow import PegasusWMS, Task, Workflow, WorkflowRun

__version__ = "1.0.0"

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "PegasusWMS",
    "STORAGE_NAMES",
    "Task",
    "Workflow",
    "WorkflowRun",
    "__version__",
    "build_app",
    "build_broadband",
    "build_epigenome",
    "build_montage",
    "build_synthetic",
    "format_table1",
    "make_storage",
    "paper_matrix",
    "profile_records",
    "run_experiment",
    "run_sweep",
]
