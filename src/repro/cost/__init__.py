"""Cost analysis: 2010 AWS pricing, per-hour vs per-second billing.

See :mod:`repro.cost.pricing` for the fee schedule and
:mod:`repro.cost.model` for the per-workflow computation used to
regenerate Figs. 5–7.
"""

from .model import WorkflowCost, compute_cost
from .pricing import (
    S3_GET_PRICE,
    S3_PUT_PRICE,
    S3_STORAGE_PRICE_GB_MONTH,
    S3Fees,
)

__all__ = [
    "S3Fees",
    "S3_GET_PRICE",
    "S3_PUT_PRICE",
    "S3_STORAGE_PRICE_GB_MONTH",
    "WorkflowCost",
    "compute_cost",
]
