"""Workflow cost computation (paper §VI).

Combines the EC2 resource charges (per-hour as Amazon actually bills,
with partial hours rounded up, and hypothetical per-second) with the
storage-system surcharges:

* NFS runs add a dedicated server instance ($0.68/workflow for the
  m1.xlarge the paper uses);
* S3 runs add request fees metered from the client's GET/PUT counters.

Transfer costs (into/out of the cloud) are out of scope, exactly as in
the paper: "Since the focus of this paper is on the storage systems we
did not perform or measure data transfers to/from the cloud."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cloud.billing import BillingMeter, CostBreakdown
from ..storage.base import StorageStats
from .pricing import S3Fees


@dataclass
class WorkflowCost:
    """Full cost picture of one workflow execution."""

    resource: CostBreakdown
    s3_fees: Optional[S3Fees] = None

    @property
    def per_hour_total(self) -> float:
        """What Amazon would charge: rounded-up instance-hours + fees."""
        extra = self.s3_fees.total if self.s3_fees else 0.0
        return self.resource.per_hour + extra

    @property
    def per_second_total(self) -> float:
        """Hypothetical per-second billing + fees."""
        extra = self.s3_fees.total if self.s3_fees else 0.0
        return self.resource.per_second + extra


def compute_cost(billing: BillingMeter,
                 storage_stats: StorageStats,
                 storage_name: str,
                 makespan: float,
                 stored_gb: float = 0.0,
                 at: Optional[float] = None) -> WorkflowCost:
    """Price one workflow run.

    Parameters
    ----------
    billing:
        The cloud's billing meter (already covering any dedicated NFS
        server, which is simply another metered instance).
    storage_stats:
        The storage system's operation counters (S3 request fees).
    storage_name:
        Which system ran; S3 fees apply only to ``"s3"``.
    makespan:
        Workflow duration (per-second billing and storage proration).
    stored_gb:
        Data resident in S3 during the run.
    at:
        Clock value closing still-open billing intervals.
    """
    resource = billing.resource_cost(at=at)
    fees = None
    if storage_name == "s3":
        fees = S3Fees(
            put_requests=storage_stats.put_requests,
            get_requests=storage_stats.get_requests,
            stored_gb=stored_gb,
            duration_seconds=makespan,
        )
    return WorkflowCost(resource=resource, s3_fees=fees)
