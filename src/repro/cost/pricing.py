"""The 2010 AWS price list used by the paper's cost analysis (§VI).

Instance prices live in :mod:`repro.cloud.types`; this module holds the
S3 fee schedule and storage rates:

* $0.01 per 1,000 PUT operations;
* $0.01 per 10,000 GET operations;
* $0.15 per GB-month of storage;
* data transfer inside EC2 is free.

The paper reports the resulting surcharges: Montage ≈ $0.28,
Epigenome ≈ $0.01, Broadband ≈ $0.02, with storage cost « $0.01.
"""

from __future__ import annotations

from dataclasses import dataclass

#: USD per PUT request.
S3_PUT_PRICE = 0.01 / 1_000
#: USD per GET request.
S3_GET_PRICE = 0.01 / 10_000
#: USD per GB-month of S3 storage.
S3_STORAGE_PRICE_GB_MONTH = 0.15
#: Seconds in the billing month S3 prorates against.
SECONDS_PER_MONTH = 30 * 24 * 3600.0


@dataclass(frozen=True)
class S3Fees:
    """Computed S3 charges for one workflow execution."""

    put_requests: int
    get_requests: int
    stored_gb: float
    duration_seconds: float

    @property
    def request_cost(self) -> float:
        """PUT + GET request charges, USD."""
        return (self.put_requests * S3_PUT_PRICE
                + self.get_requests * S3_GET_PRICE)

    @property
    def storage_cost(self) -> float:
        """Prorated GB-month storage charge, USD (tiny for these runs,
        as the paper notes: « $0.01)."""
        months = self.duration_seconds / SECONDS_PER_MONTH
        return self.stored_gb * S3_STORAGE_PRICE_GB_MONTH * months

    @property
    def total(self) -> float:
        """All S3 charges, USD."""
        return self.request_cost + self.storage_cost
