"""Rule registry and lint runner.

Rules are small AST checkers registered with :func:`register`; the
runner parses each file once, asks every applicable rule for findings,
applies inline suppressions and the optional baseline, and returns a
:class:`~repro.lint.findings.LintReport`.

The determinism contract this enforces is *scoped*: some rules apply
everywhere (mutable default arguments), others only to modules on the
event-ordering path (see :data:`SCHEDULING_PREFIXES`).  A rule declares
its scope by overriding :meth:`Rule.applies_to`.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from .baseline import Baseline
from .findings import Finding, LintReport, Severity
from .suppressions import SuppressionMap

#: Canonical module prefixes that schedule events or order jobs: a
#: nondeterministic iteration here changes *when* things happen, which
#: corrupts every downstream makespan/cost figure.
SCHEDULING_PREFIXES = (
    "repro/simcore/",
    "repro/workflow/",
    "repro/storage/",
    "repro/faults/",
    "repro/cloud/",
)

#: The only modules allowed to touch the event heap directly: the
#: engine owns the queue, the events layer feeds it through
#: ``_queue_event``, and PriorityResource owns its waiter heap.
#: flownet's completion heap and the NFS clean-LRU heap are private
#: min-heaps whose entries carry explicit sequence/stamp tie-breaks,
#: so they preserve the determinism contract this rule protects.
EVENT_QUEUE_OWNERS = (
    "repro/simcore/engine.py",
    "repro/simcore/events.py",
    "repro/simcore/flownet.py",
    "repro/simcore/flownet_legacy.py",
    "repro/simcore/resources.py",
    "repro/storage/nfs.py",
)

#: Packages sanctioned to read the host clock: host-side sweep
#: observability (progress lines, event-log timestamps, crash bundles)
#: and the job service (lease deadlines, submission timestamps, HTTP
#: polling).  SIM001 is switched off here; everywhere else wall-clock
#: reads are flagged, and inside the simulation kernel SIM009
#: additionally bans any reference to these packages.
HOST_OBSERVE_PREFIXES = ("repro/observe/", "repro/service/")

#: The simulation kernel proper: modules whose outputs feed the
#: deterministic telemetry hash-chain.  SIM009 guards this boundary —
#: no wall-clock reads and no ``repro.observe`` references here.
SIM_KERNEL_PREFIXES = (
    "repro/simcore/",
    "repro/storage/",
    "repro/workflow/",
)

#: Host-side packages whose code runs on more than one thread (the
#: ThreadingMixIn WSGI app, the worker/supervisor pair, the monitor
#: callbacks, shared metric instruments).  The SIM010–SIM014 thread-
#: safety rules apply here and only here: the simulation kernel is
#: single-threaded by contract, so lock discipline rules would be
#: noise there.
THREADED_PREFIXES = (
    "repro/service/",
    "repro/observe/",
    "repro/telemetry/",
)


class ModuleContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        #: Path as given (forward slashes).
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.tree = tree
        self.suppressions = SuppressionMap(source)
        #: Path rebased at the ``repro/`` package root when present, so
        #: scope checks work for ``src/repro/...``, installed trees,
        #: and test fixtures alike.
        self.canonical = _canonical_path(self.path)

    def in_scheduling_module(self) -> bool:
        """Whether this file is on the event-ordering path."""
        return self.canonical.startswith(SCHEDULING_PREFIXES)

    def is_event_queue_owner(self) -> bool:
        """Whether this file may manipulate the event heap."""
        return self.canonical in EVENT_QUEUE_OWNERS

    def in_host_observe_module(self) -> bool:
        """Whether this file is sanctioned host-side observability."""
        return self.canonical.startswith(HOST_OBSERVE_PREFIXES)

    def in_sim_kernel_module(self) -> bool:
        """Whether this file is inside the simulation kernel proper."""
        return self.canonical.startswith(SIM_KERNEL_PREFIXES)

    def in_threaded_module(self) -> bool:
        """Whether this file runs on the multi-threaded host side."""
        return self.canonical.startswith(THREADED_PREFIXES)


def _canonical_path(path: str) -> str:
    parts = path.split("/")
    for i, part in enumerate(parts):
        if part == "repro":
            return "/".join(parts[i:])
    return path


class Rule:
    """Base class for one lint rule."""

    id: str = "SIM000"
    title: str = ""
    severity: Severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Whether this rule runs on ``ctx`` (default: every file)."""
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for ``ctx``."""
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        """A finding of this rule at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=message,
            severity=self.severity,
        )


#: rule id -> rule instance, in registration (= numeric) order.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git")
                    and not d.endswith(".egg-info"))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            out.append(path)
    return iter(sorted(dict.fromkeys(out)))


def lint_source(source: str, path: str = "<string>",
                select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one in-memory source (test/fixture entry point).

    Returns *all* findings, with :attr:`Finding.suppressed` set where an
    inline directive covers them; callers filter as needed.
    """
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(path, source, tree)
    wanted = set(select) if select is not None else None
    findings: List[Finding] = []
    for rule_id, rule in RULES.items():
        if wanted is not None and rule_id not in wanted:
            continue
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressions.covers(finding.line, finding.rule_id):
                finding = Finding(**{**finding.__dict__, "suppressed": True})
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               baseline: Optional[Baseline] = None) -> LintReport:
    """Lint files/directories and assemble the report."""
    report = LintReport()
    live: List[Finding] = []
    for filepath in iter_python_files(paths):
        try:
            with open(filepath, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            report.parse_errors.append((filepath, str(exc)))
            continue
        report.n_files += 1
        try:
            findings = lint_source(source, path=filepath, select=select)
        except SyntaxError as exc:
            report.parse_errors.append((filepath, f"syntax error: {exc}"))
            continue
        for finding in findings:
            (report.suppressed if finding.suppressed else live).append(finding)
    if baseline is not None and baseline.fingerprints:
        new, known = baseline.partition(live)
        report.findings = new
        report.baselined = known
    else:
        report.findings = sorted(
            live, key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return report
