"""Simulation-invariant static analysis and runtime determinism checks.

The reproduction's entire evidence chain — the paper grid, the cost
model, the zero-overhead golden test — assumes the simulator is a
deterministic function of ``(scenario, seed)``.  This package machine-
checks that contract from two sides:

* **static rules** (``SIM001``–``SIM015``): AST checks for the code
  patterns that break determinism or simulator discipline — wall-clock
  reads, global random streams, hash-ordered iteration on scheduling
  paths, float equality on sim-time, unprotected resource release,
  mutable defaults, broad excepts, event-queue manipulation outside
  the kernel, shared numpy scratch buffers — plus the thread-safety
  rules over the host-side packages (``repro-ec2 lint [paths]``);
* **runtime sanitizer**: a small paper-grid scenario run repeatedly —
  same seed, fresh interpreters, different ``PYTHONHASHSEED`` values —
  with the full telemetry event stream hash-chained into a digest that
  must be bit-identical (``repro-ec2 lint --determinism``);
* **runtime lock witness**: the service's locks, created through the
  :mod:`~repro.lint.lockwatch` factory seam, feed a lock-order graph
  checked for cycles, hold-time overruns, and guarded-by violations
  (``repro-ec2 lint --locks``).

See ``docs/static-analysis.md`` for rule-by-rule rationale, the
suppression/baseline workflow, and both sanitizer protocols.
"""

# Importing the rule modules populates the rule registry (side effect).
from . import rules as _rules  # noqa: F401
from . import threadrules as _threadrules  # noqa: F401
from .baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    load_baseline,
    write_baseline,
)
from .determinism import (
    DeterminismReport,
    RunDigest,
    digest_run,
    first_divergence,
    format_digest_line,
    run_determinism_check,
    small_workflow,
)
from .engine import (
    RULES,
    SCHEDULING_PREFIXES,
    THREADED_PREFIXES,
    ModuleContext,
    Rule,
    iter_python_files,
    lint_paths,
    lint_source,
    register,
)
from .findings import Finding, LintReport, Severity, fingerprint_findings
from .lockwatch import (
    LockFinding,
    LockWatcher,
    current_watcher,
    guard,
    install_watcher,
    new_condition,
    new_lock,
    new_rlock,
    run_lockwatch_check,
    uninstall_watcher,
)
from .suppressions import SuppressionMap

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "DeterminismReport",
    "Finding",
    "LintReport",
    "LockFinding",
    "LockWatcher",
    "ModuleContext",
    "RULES",
    "Rule",
    "RunDigest",
    "SCHEDULING_PREFIXES",
    "Severity",
    "SuppressionMap",
    "THREADED_PREFIXES",
    "current_watcher",
    "digest_run",
    "fingerprint_findings",
    "first_divergence",
    "format_digest_line",
    "guard",
    "install_watcher",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "new_condition",
    "new_lock",
    "new_rlock",
    "register",
    "run_determinism_check",
    "run_lockwatch_check",
    "small_workflow",
    "uninstall_watcher",
    "write_baseline",
]
