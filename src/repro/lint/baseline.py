"""Checked-in lint baseline.

A baseline is the set of *known, accepted* findings: CI fails only on
findings that are not in it, so the linter can be adopted on a tree
with pre-existing violations and ratcheted down to zero.  This
repository ships an **empty** baseline (``.lint-baseline.json``) — the
acceptance bar is that ``repro-ec2 lint src/`` is clean without any
grandfathering.

Entries are line-number-independent fingerprints (see
:meth:`repro.lint.findings.Finding.fingerprint`), so editing code above
a baselined violation does not resurrect it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

from .findings import Finding, fingerprint_findings

BASELINE_VERSION = 1
#: Conventional baseline location at the repository root.
DEFAULT_BASELINE_NAME = ".lint-baseline.json"


@dataclass
class Baseline:
    """A set of accepted finding fingerprints."""

    fingerprints: Set[str] = field(default_factory=set)
    version: int = BASELINE_VERSION

    def __len__(self) -> int:
        return len(self.fingerprints)

    def partition(self, findings: Iterable[Finding]
                  ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (new, baselined).

        Fingerprint indices are assigned per duplicate group exactly as
        :func:`write_baseline` does, so a baseline accepting N identical
        violations hides exactly N of them — the N+1th stays live.
        """
        ordered = sorted(findings,
                         key=lambda f: (f.path, f.line, f.col, f.rule_id))
        prints = fingerprint_findings(ordered)
        new: List[Finding] = []
        known: List[Finding] = []
        for finding, fp in zip(ordered, prints):
            (known if fp in self.fingerprints else new).append(finding)
        return new, known

    def to_json(self) -> str:
        """Serialise (sorted, so diffs are stable)."""
        return json.dumps(
            {"version": self.version,
             "fingerprints": sorted(self.fingerprints)},
            indent=2) + "\n"


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; raises ValueError on malformed content."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "fingerprints" not in doc:
        raise ValueError(f"{path}: not a lint baseline (no 'fingerprints')")
    version = doc.get("version", BASELINE_VERSION)
    if version != BASELINE_VERSION:
        raise ValueError(f"{path}: unsupported baseline version {version}")
    prints = doc["fingerprints"]
    if not isinstance(prints, list) \
            or not all(isinstance(p, str) for p in prints):
        raise ValueError(f"{path}: 'fingerprints' must be a list of strings")
    return Baseline(fingerprints=set(prints), version=version)


def write_baseline(path: str, findings: Iterable[Finding]) -> Baseline:
    """Write a baseline accepting exactly ``findings``; returns it."""
    baseline = Baseline(fingerprints=set(fingerprint_findings(findings)))
    with open(path, "w") as fh:
        fh.write(baseline.to_json())
    return baseline
