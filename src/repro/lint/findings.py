"""Finding and severity model for the simulation-invariant linter.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` identifies the violation *independently of
its line number* (file, rule, message, duplicate index), so a checked-in
baseline survives unrelated edits above the flagged line.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List


class Severity(enum.IntEnum):
    """How bad a finding is.  Ordering is meaningful (ERROR > WARNING)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lowercase name for display (``"error"``)."""
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a case-insensitive severity name."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    path:
        Path of the offending file as given to the runner (normalised
        to forward slashes for stable output across platforms).
    line, col:
        1-based line and 0-based column of the offending node.
    rule_id:
        ``SIMxxx`` identifier of the rule that fired.
    message:
        Human-readable description of the violation.
    severity:
        :class:`Severity` of the rule.
    suppressed:
        True when an inline ``# lint: ignore[...]`` covers this finding
        (suppressed findings are reported separately, never fatal).
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    severity: Severity = Severity.ERROR
    suppressed: bool = False

    def format(self) -> str:
        """Classic one-line compiler format."""
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} [{self.severity.label}] {self.message}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "suppressed": self.suppressed,
            "fingerprint": self.fingerprint(),
        }

    def fingerprint(self, index: int = 0) -> str:
        """Line-number-independent identity for baseline matching.

        ``index`` disambiguates identical findings within one file
        (same rule, same message) by order of appearance.
        """
        raw = f"{self.path}|{self.rule_id}|{self.message}|{index}"
        return hashlib.sha256(raw.encode()).hexdigest()[:16]


@dataclass
class LintReport:
    """The outcome of one lint run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by inline suppressions (for ``--show-suppressed``).
    suppressed: List[Finding] = field(default_factory=list)
    #: Findings silenced by the baseline file.
    baselined: List[Finding] = field(default_factory=list)
    #: Number of files scanned.
    n_files: int = 0
    #: Files that failed to parse: (path, error message).
    parse_errors: List[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no live findings, no parse errors)."""
        return not self.findings and not self.parse_errors

    def counts_by_rule(self) -> Dict[str, int]:
        """Live findings per rule id, sorted by rule id."""
        counts: Dict[str, int] = {}
        for f in sorted(self.findings, key=lambda f: f.rule_id):
            counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
        return counts


def fingerprint_findings(findings: Iterable[Finding]) -> List[str]:
    """Fingerprints for ``findings`` with per-duplicate indices.

    Two findings that differ only by line number share a fingerprint
    *base*; the occurrence index keeps them distinct so a baseline with
    two known violations does not hide a third identical one.
    """
    seen: Dict[str, int] = {}
    prints: List[str] = []
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))
    for f in ordered:
        base = f"{f.path}|{f.rule_id}|{f.message}"
        idx = seen.get(base, 0)
        seen[base] = idx + 1
        prints.append(f.fingerprint(idx))
    return prints
