"""Thread-safety rules (SIM010–SIM014) for the host-side packages.

The simulation kernel is single-threaded by contract, but the host
side is not: the WSGI app serves requests on a thread per connection,
the worker and its supervisor share job slots, and metric instruments
are incremented from all of them.  These rules enforce the lock
discipline that keeps that side honest — scoped to
:data:`~repro.lint.engine.THREADED_PREFIXES` (``repro/service/``,
``repro/observe/``, ``repro/telemetry/``) so they never add noise to
kernel code.

The static half pairs with the runtime witness in
:mod:`repro.lint.lockwatch`: SIM010–SIM014 catch the patterns a code
reader can see, the watcher catches what only an execution can (lock
*order* across call chains, hold times, guarded state touched off-lock).
See ``docs/static-analysis.md`` for rule-by-rule rationale.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import ModuleContext, Rule, register
from .findings import Finding, Severity
from .rules import _ParentMap, _import_aliases, _qualified

# --------------------------------------------------------------------------
# shared symbol collection

#: ``threading`` constructors that produce a plain lock.
_LOCK_CONSTRUCTORS = {"threading.Lock", "threading.RLock"}
#: :mod:`repro.lint.lockwatch` factory functions (same semantics, but
#: watchable); matched by trailing name so both ``new_lock(...)`` and
#: ``lockwatch.new_lock(...)`` count.
_LOCK_FACTORIES = {"new_lock", "new_rlock"}
_CONDITION_CONSTRUCTORS = {"threading.Condition"}
_CONDITION_FACTORIES = {"new_condition"}

#: A symbol key: ("name", local variable) or ("attr", attribute name).
SymbolKey = Tuple[str, str]


def _symbol_key(node: ast.AST) -> Optional[SymbolKey]:
    """The tracking key of a Name / single-attribute target or value."""
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if isinstance(node, ast.Attribute):
        return ("attr", node.attr)
    return None


def _is_factory_call(node: ast.AST, aliases: Dict[str, str],
                     constructors: Set[str], factories: Set[str]) -> bool:
    if not isinstance(node, ast.Call):
        return False
    qual = _qualified(node.func, aliases)
    if qual in constructors:
        return True
    leaf = qual.rsplit(".", 1)[-1] if qual else None
    return leaf in factories


def _collect_symbols(tree: ast.Module, aliases: Dict[str, str],
                     constructors: Set[str],
                     factories: Set[str]) -> Set[SymbolKey]:
    """Symbols assigned from one of ``constructors``/``factories``.

    Attribute symbols are tracked module-wide by attribute name — a
    ``self._lock`` assigned in one class and aliased into another (the
    store handing its lock to ``_Transaction``) stays recognised.
    """
    symbols: Set[SymbolKey] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_factory_call(
                node.value, aliases, constructors, factories):
            for target in node.targets:
                key = _symbol_key(target)
                if key is not None:
                    symbols.add(key)
        elif isinstance(node, ast.AnnAssign) and _is_factory_call(
                node.value, aliases, constructors, factories):
            key = _symbol_key(node.target)
            if key is not None:
                symbols.add(key)
    return symbols


def _matches(node: ast.AST, symbols: Set[SymbolKey]) -> bool:
    key = _symbol_key(node)
    if key is None:
        return False
    if key in symbols:
        return True
    # An attribute assigned in one class, read through another name
    # (``store._lock``): match by attribute name alone.
    return key[0] == "attr" and ("attr", key[1]) in symbols


def _lock_symbols(ctx: ModuleContext,
                  aliases: Dict[str, str]) -> Set[SymbolKey]:
    return _collect_symbols(ctx.tree, aliases,
                            _LOCK_CONSTRUCTORS, _LOCK_FACTORIES)


def _enclosing_function(parents: _ParentMap, node: ast.AST
                        ) -> Optional[ast.AST]:
    cur: Optional[ast.AST] = node
    while cur is not None:
        link = parents.parent_of(cur)
        if link is None:
            return None
        parent, _ = link
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent
        cur = parent
    return None


def _enclosing_class(parents: _ParentMap, node: ast.AST
                     ) -> Optional[ast.ClassDef]:
    cur: Optional[ast.AST] = node
    while cur is not None:
        link = parents.parent_of(cur)
        if link is None:
            return None
        parent, _ = link
        if isinstance(parent, ast.ClassDef):
            return parent
        cur = parent
    return None


# --------------------------------------------------------------------------
# SIM010 — lock acquired without with / try-finally release


@register
class UnprotectedAcquireRule(Rule):
    """SIM010: a bare ``acquire()`` leaks the lock on any exception.

    Every explicit ``lock.acquire()`` must be paired with a
    ``lock.release()`` inside a ``finally:`` in the same function (or
    use a ``with`` block, which never trips this rule).  The one
    sanctioned cross-method pattern is a context manager: an acquire in
    ``__enter__`` is satisfied by a release in the same class's
    ``__exit__`` — that pairing *is* the try/finally, written by the
    caller's ``with``.
    """

    id = "SIM010"
    title = "lock acquired without with-block or try/finally release"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_threaded_module()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        locks = _lock_symbols(ctx, aliases)
        if not locks:
            return
        parents = _ParentMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"
                    and _matches(node.func.value, locks)):
                continue
            func = _enclosing_function(parents, node)
            if func is None:
                yield self.finding(
                    ctx, node,
                    "module-level acquire() can never be released on "
                    "the failure path; use a with block")
                continue
            if func.name == "__enter__" and self._exit_releases(
                    parents, node, func):
                continue
            if not self._released_in_finally(parents, func, node.func.value):
                yield self.finding(
                    ctx, node,
                    "acquire() without a release() in a finally block "
                    "in the same function: any exception in between "
                    "leaks the lock and deadlocks every later waiter; "
                    "use `with lock:` or try/finally")

    @staticmethod
    def _released_in_finally(parents: _ParentMap, func: ast.AST,
                             lock_expr: ast.AST) -> bool:
        key = _symbol_key(lock_expr)
        for node in ast.walk(func):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "release" \
                    and _symbol_key(node.func.value) == key \
                    and parents.in_finally(node):
                return True
        return False

    @staticmethod
    def _exit_releases(parents: _ParentMap, node: ast.AST,
                       enter: ast.AST) -> bool:
        cls = _enclosing_class(parents, enter)
        if cls is None:
            return False
        for method in cls.body:
            if isinstance(method, ast.FunctionDef) \
                    and method.name == "__exit__":
                for sub in ast.walk(method):
                    if isinstance(sub, ast.Call) \
                            and isinstance(sub.func, ast.Attribute) \
                            and sub.func.attr == "release":
                        return True
        return False


# --------------------------------------------------------------------------
# SIM011 — blocking call while a lock is held


#: Fully qualified callables that block the calling thread.
_BLOCKING_CALLS = {"time.sleep"}
#: Module prefixes whose calls block (network / process I/O).
_BLOCKING_PREFIXES = ("subprocess.", "socket.", "urllib.")
#: sqlite statement methods (on a tracked connection symbol).
_SQLITE_EXEC_METHODS = {"execute", "executemany", "executescript"}


@register
class BlockingUnderLockRule(Rule):
    """SIM011: blocking I/O while holding a lock starves every waiter.

    A lock held across ``time.sleep``, a subprocess, socket/urllib I/O,
    or a raw sqlite statement turns one slow operation into a stall of
    every thread queued behind the lock — the classic convoy.  Do the
    blocking work first, then take the lock only around the shared-state
    update.  Calls routed through a method seam (the store's
    ``_db_execute``) are deliberately not matched: serializing
    statements on the connection lock *is* the store's design, and the
    runtime witness's hold-time check covers the residual risk.
    """

    id = "SIM011"
    title = "blocking call while a lock is held"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_threaded_module()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        locks = _lock_symbols(ctx, aliases)
        if not locks:
            return
        conns = _collect_symbols(ctx.tree, aliases,
                                 {"sqlite3.connect"}, set())
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.With):
                continue
            if not any(_matches(item.context_expr, locks)
                       for item in node.items):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                why = self._blocking_reason(sub, aliases, conns)
                if why is not None:
                    yield self.finding(
                        ctx, sub,
                        f"{why} while a lock is held: every thread "
                        f"queued on the lock stalls behind this call; "
                        f"move the blocking work outside the critical "
                        f"section")

    @staticmethod
    def _blocking_reason(call: ast.Call, aliases: Dict[str, str],
                         conns: Set[SymbolKey]) -> Optional[str]:
        qual = _qualified(call.func, aliases)
        if qual in _BLOCKING_CALLS:
            return f"{qual}()"
        if qual is not None and qual.startswith(_BLOCKING_PREFIXES):
            return f"{qual}() blocks on I/O"
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in _SQLITE_EXEC_METHODS \
                and _matches(call.func.value, conns):
            return f"sqlite {call.func.attr}()"
        return None


# --------------------------------------------------------------------------
# SIM012 — module-level mutable state without a guarded-by annotation


def _is_mutable_value(node: Optional[ast.AST]) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("dict", "list", "set", "bytearray"))


def _is_constant_name(name: str) -> bool:
    """ALL_CAPS (optionally underscore-prefixed) or dunder names."""
    if name.startswith("__") and name.endswith("__"):
        return True
    return name.upper() == name


@register
class UnguardedModuleStateRule(Rule):
    """SIM012: shared module state needs a declared lock.

    A module-level dict/list/set in a threaded module is shared by
    every thread that imports it.  Either document which lock protects
    it with ``# lint: guarded-by[<lock>]`` on the same line (the
    runtime witness enforces the claim via
    :func:`repro.lint.lockwatch.guard`), or make it immutable.
    ALL_CAPS names are exempt: the constants convention already says
    "never mutated", and mutating one is a different review failure.
    """

    id = "SIM012"
    title = "module-level mutable state without a guarded-by annotation"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_threaded_module()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                targets: List[ast.AST] = list(node.targets)
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            if not _is_mutable_value(value):
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or all(_is_constant_name(n) for n in names):
                continue
            if ctx.suppressions.guard_at(node.lineno) is not None:
                continue
            yield self.finding(
                ctx, node,
                f"module-level mutable {', '.join(names)} in a "
                f"threaded module: annotate the guarding lock with "
                f"`# lint: guarded-by[<lock>]` (and enforce it with "
                f"lockwatch.guard), or make it immutable")


# --------------------------------------------------------------------------
# SIM013 — thread without an explicit daemon flag or a join path


@register
class UnownedThreadRule(Rule):
    """SIM013: every thread needs a declared lifecycle.

    A ``threading.Thread`` with neither an explicit ``daemon=`` flag
    nor a visible ``join()`` on its symbol has an *accidental*
    lifecycle: it inherits daemon-ness from its creator and nothing
    ever waits for it, so interpreter shutdown may kill it mid-write or
    hang on it forever — whichever the inherited flag happens to pick.
    Say which one you mean.
    """

    id = "SIM013"
    title = "thread without explicit daemon flag or join path"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_threaded_module()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        joined = self._joined_symbols(ctx.tree)
        parents = _ParentMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _qualified(node.func, aliases) != "threading.Thread":
                continue
            if any(kw.arg == "daemon" for kw in node.keywords):
                continue
            target = self._assignment_target(parents, node)
            if target is not None and target in joined:
                continue
            yield self.finding(
                ctx, node,
                "Thread created without an explicit daemon= flag and "
                "never joined: its shutdown behaviour is inherited by "
                "accident — set daemon= explicitly or join() it")

    @staticmethod
    def _assignment_target(parents: _ParentMap,
                           call: ast.Call) -> Optional[SymbolKey]:
        link = parents.parent_of(call)
        if link is None:
            return None
        parent, _ = link
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            return _symbol_key(parent.targets[0])
        if isinstance(parent, ast.AnnAssign):
            return _symbol_key(parent.target)
        return None

    @staticmethod
    def _joined_symbols(tree: ast.Module) -> Set[SymbolKey]:
        out: Set[SymbolKey] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join":
                key = _symbol_key(node.func.value)
                if key is not None:
                    out.add(key)
        return out


# --------------------------------------------------------------------------
# SIM014 — Condition wait/notify outside its with block


_CONDITION_METHODS = {"wait", "wait_for", "notify", "notify_all"}


@register
class BareConditionRule(Rule):
    """SIM014: ``wait``/``notify`` require the condition's lock.

    Calling them without holding the underlying lock raises
    ``RuntimeError`` at runtime — but only on the execution path that
    reaches the call, which for a ``notify`` on an error branch can be
    long after the code shipped.  ``threading.Event`` is not tracked:
    its ``wait()`` is sanctioned lock-free sleeping.
    """

    id = "SIM014"
    title = "Condition wait/notify outside its with block"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_threaded_module()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        conditions = _collect_symbols(ctx.tree, aliases,
                                      _CONDITION_CONSTRUCTORS,
                                      _CONDITION_FACTORIES)
        if not conditions:
            return
        parents = _ParentMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CONDITION_METHODS
                    and _matches(node.func.value, conditions)):
                continue
            if self._inside_with(parents, node, node.func.value):
                continue
            yield self.finding(
                ctx, node,
                f"{node.func.attr}() on a Condition outside its "
                f"`with` block: the underlying lock is not held, which "
                f"raises RuntimeError on this path at runtime")

    @staticmethod
    def _inside_with(parents: _ParentMap, node: ast.AST,
                     cond_expr: ast.AST) -> bool:
        key = _symbol_key(cond_expr)
        cur: Optional[ast.AST] = node
        while cur is not None:
            link = parents.parent_of(cur)
            if link is None:
                return False
            parent, _ = link
            if isinstance(parent, ast.With) and any(
                    _symbol_key(item.context_expr) == key
                    for item in parent.items):
                return True
            cur = parent
        return False
