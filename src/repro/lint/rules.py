"""The simulation-invariant rules (SIM001–SIM009, SIM015).

Each rule guards one way a code change can silently break the
determinism contract the paper reproduction rests on: the simulator
must be a pure function of ``(scenario, seed)``.  See
``docs/static-analysis.md`` for the rationale, scope, and fix idiom of
every rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import ModuleContext, Rule, register
from .findings import Finding, Severity

# --------------------------------------------------------------------------
# shared AST helpers


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted module paths.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import time`` -> ``{"time": "time.time"}``.
    Only module-level imports are tracked — function-local imports of
    the flagged modules are rare and equally caught because the alias
    walk scans every Import node in the file.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def _qualified(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a Name/Attribute chain, or None."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = aliases.get(cur.id, cur.id)
    parts.append(root)
    return ".".join(reversed(parts))


class _ParentMap:
    """Child -> (parent, field-name) links for one tree."""

    def __init__(self, tree: ast.Module) -> None:
        self._parent: Dict[ast.AST, Tuple[ast.AST, str]] = {}
        for parent in ast.walk(tree):
            for field_name, value in ast.iter_fields(parent):
                if isinstance(value, ast.AST):
                    self._parent[value] = (parent, field_name)
                elif isinstance(value, list):
                    for item in value:
                        if isinstance(item, ast.AST):
                            self._parent[item] = (parent, field_name)

    def parent_of(self, node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
        return self._parent.get(node)

    def in_finally(self, node: ast.AST) -> bool:
        """Whether ``node`` sits (transitively) inside a ``finally:``."""
        cur: Optional[ast.AST] = node
        while cur is not None:
            link = self._parent.get(cur)
            if link is None:
                return False
            parent, field_name = link
            if isinstance(parent, ast.Try) and field_name == "finalbody":
                return True
            cur = parent

    def enclosed_by_call_to(self, node: ast.AST, names: Set[str]) -> bool:
        """Whether the *immediate* consumer of ``node`` is a call to one
        of ``names`` (e.g. ``sorted(node)``)."""
        link = self._parent.get(node)
        if link is None:
            return False
        parent, field_name = link
        return (isinstance(parent, ast.Call)
                and field_name == "args"
                and isinstance(parent.func, ast.Name)
                and parent.func.id in names)


# --------------------------------------------------------------------------
# SIM001 — wall-clock access


#: Canonical callables that read the host clock.
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """SIM001: wall-clock reads make a run a function of the host.

    ``repro/observe/`` and ``repro/service/`` are exempt: they are the
    sanctioned homes for host-side orchestration telemetry (progress
    lines, event-log timestamps, crash bundles) and the job service
    (lease deadlines, submission timestamps), and SIM009 enforces that
    nothing in the simulation kernel reaches into them.
    """

    id = "SIM001"
    title = "wall-clock access inside the simulator"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.in_host_observe_module()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if isinstance(node, ast.Name) \
                    and not isinstance(node.ctx, ast.Load):
                continue
            qual = _qualified(node, aliases)
            if qual in _WALL_CLOCK:
                yield self.finding(
                    ctx, node,
                    f"{qual} reads the host clock; simulation time is "
                    f"env.now — a run must be a pure function of "
                    f"(scenario, seed)")


# --------------------------------------------------------------------------
# SIM002 — unseeded randomness


#: numpy.random constructors that take an explicit seed — the only
#: sanctioned way to make a generator (see simcore.rand.substream).
_SEEDED_CONSTRUCTORS = {
    "default_rng", "Generator", "PCG64", "PCG64DXSM", "Philox", "SFC64",
    "SeedSequence", "BitGenerator",
}


@register
class UnseededRandomRule(Rule):
    """SIM002: global random streams break seed reproducibility."""

    id = "SIM002"
    title = "unseeded / global random stream"
    severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            qual = _qualified(node, aliases)
            if qual is None:
                continue
            if qual.startswith("random."):
                yield self.finding(
                    ctx, node,
                    f"{qual} draws from the global random stream; use a "
                    f"named substream from simcore.rand.substream(seed, ...)")
            elif qual.startswith("numpy.random."):
                leaf = qual.rsplit(".", 1)[1]
                if leaf not in _SEEDED_CONSTRUCTORS:
                    yield self.finding(
                        ctx, node,
                        f"{qual} uses numpy's global random state; build "
                        f"an explicitly seeded generator via "
                        f"simcore.rand.substream(seed, ...)")


# --------------------------------------------------------------------------
# SIM003 — unordered-collection iteration on scheduling paths


_SET_TYPE_NAMES = {
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
    "typing.Set", "typing.FrozenSet", "typing.AbstractSet",
    "typing.MutableSet",
}
#: Set methods that return sets (hash-ordered when iterated).
_SET_RETURNING_METHODS = {
    "intersection", "union", "difference", "symmetric_difference",
}


@register
class UnorderedIterationRule(Rule):
    """SIM003: hash-ordered iteration on an event-ordering path.

    Iterating a ``set``/``frozenset`` yields elements in hash order,
    which for strings depends on ``PYTHONHASHSEED``: any schedule
    derived from it differs between processes without failing a test.
    Wrap the iterable in ``sorted(...)`` with a deterministic key.

    Dict views are deliberately *not* flagged: dicts preserve insertion
    order on every supported Python, so a deterministic program inserts
    — and therefore iterates — deterministically.
    """

    id = "SIM003"
    title = "unordered set iteration on a scheduling path"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_scheduling_module()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parents = _ParentMap(ctx.tree)
        set_names, set_attrs = self._collect_set_symbols(ctx.tree)

        def is_set_expr(expr: ast.AST) -> bool:
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return True
            if isinstance(expr, ast.Call):
                if isinstance(expr.func, ast.Name) \
                        and expr.func.id in ("set", "frozenset"):
                    return True
                if isinstance(expr.func, ast.Attribute) \
                        and expr.func.attr in _SET_RETURNING_METHODS:
                    return True
                return False
            if isinstance(expr, ast.BinOp) \
                    and isinstance(expr.op, (ast.BitAnd, ast.BitOr,
                                             ast.Sub, ast.BitXor)):
                return is_set_expr(expr.left) or is_set_expr(expr.right)
            if isinstance(expr, ast.Name):
                return expr.id in set_names
            if isinstance(expr, ast.Attribute):
                return expr.attr in set_attrs
            return False

        def flag(expr: ast.AST, how: str) -> Iterator[Finding]:
            if is_set_expr(expr):
                yield self.finding(
                    ctx, expr,
                    f"{how} iterates a set in hash order on a scheduling "
                    f"path; wrap it in sorted(...) with an explicit key "
                    f"so event order cannot depend on PYTHONHASHSEED")

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from flag(node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    yield from flag(gen.iter, "comprehension")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name):
                name = node.func.id
                if name in ("min", "max") and node.args \
                        and any(kw.arg == "key" for kw in node.keywords):
                    # min/max over a set is order-free for a total
                    # order, but a key function ties break by
                    # iteration order.
                    yield from flag(
                        node.args[0], f"{name}() with a key function")
                elif name in ("list", "tuple", "enumerate") and node.args \
                        and not parents.enclosed_by_call_to(
                            node, {"sorted"}):
                    yield from flag(node.args[0], f"{name}()")

    @staticmethod
    def _collect_set_symbols(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
        """Names / attribute names statically known to hold sets."""
        names: Set[str] = set()
        attrs: Set[str] = set()

        def annotation_is_set(ann: Optional[ast.AST]) -> bool:
            if ann is None:
                return False
            target = ann.value if isinstance(ann, ast.Subscript) else ann
            if isinstance(target, ast.Name):
                return target.id in _SET_TYPE_NAMES
            if isinstance(target, ast.Attribute):
                return f"{getattr(target.value, 'id', '?')}.{target.attr}" \
                    in _SET_TYPE_NAMES
            if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                head = ann.value.split("[", 1)[0].strip()
                return head in _SET_TYPE_NAMES
            return False

        def value_is_set(value: Optional[ast.AST]) -> bool:
            if isinstance(value, (ast.Set, ast.SetComp)):
                return True
            return (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("set", "frozenset"))

        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                if annotation_is_set(node.annotation):
                    if isinstance(node.target, ast.Name):
                        names.add(node.target.id)
                    elif isinstance(node.target, ast.Attribute):
                        attrs.add(node.target.attr)
            elif isinstance(node, ast.Assign) and value_is_set(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        attrs.add(target.attr)
            elif isinstance(node, ast.arg) \
                    and annotation_is_set(node.annotation):
                names.add(node.arg)
        return names, attrs


# --------------------------------------------------------------------------
# SIM004 — float equality on sim-time values


_TIME_WORDS = {"now", "makespan", "deadline", "at"}


def _is_timeish(node: ast.AST) -> bool:
    ident = None
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    if ident is None:
        return False
    low = ident.lower()
    return "time" in low or low in _TIME_WORDS


def _is_zero_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) \
        and isinstance(node.value, (int, float)) \
        and not isinstance(node.value, bool) and node.value == 0


@register
class FloatTimeEqualityRule(Rule):
    """SIM004: ``==`` on accumulated sim-time is numerically fragile.

    Simulation timestamps are sums of float intervals; two paths to the
    "same" instant can differ in the last ulp, so exact equality flips
    with arithmetic reassociation.  Compare against an explicit
    tolerance, or restructure to avoid the comparison.  Equality with
    literal ``0`` / ``0.0`` is allowed: a zero sentinel assigned exactly
    compares exactly.
    """

    id = "SIM004"
    title = "float equality on a sim-time value"
    severity = Severity.WARNING

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_zero_literal(left) or _is_zero_literal(right):
                    continue
                if _is_timeish(left) or _is_timeish(right):
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx, node,
                        f"exact float {sym} on a sim-time value; "
                        f"timestamps are float sums — compare with a "
                        f"tolerance or restructure the check")


# --------------------------------------------------------------------------
# SIM005 — resource acquired without try/finally release


@register
class UnprotectedReleaseRule(Rule):
    """SIM005: a ``release()`` outside ``finally`` leaks on interrupt.

    Condor slots are interrupted by node crashes at any yield point; a
    ``request()`` whose ``release()`` is not in a ``finally:`` block
    leaks capacity when the interrupt lands between the two, deadlocking
    every later waiter.  Follow the idiom::

        req = resource.request()
        yield req
        try:
            ...
        finally:
            resource.release(req)
    """

    id = "SIM005"
    title = "resource release not protected by try/finally"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_scheduling_module()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        parents = _ParentMap(ctx.tree)
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            requests: List[ast.Call] = []
            releases: List[ast.Call] = []
            for node in ast.walk(func):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute):
                    if node.func.attr == "request":
                        requests.append(node)
                    elif node.func.attr == "release":
                        releases.append(node)
            if not requests or not releases:
                # No release at all usually means ownership moves
                # elsewhere (the request is returned/stored); that is a
                # design choice this rule cannot judge statically.
                continue
            for release in releases:
                if not parents.in_finally(release):
                    yield self.finding(
                        ctx, release,
                        "release() outside try/finally: an interrupt "
                        "between request() and release() leaks the "
                        "resource and deadlocks later waiters")


# --------------------------------------------------------------------------
# SIM006 — mutable default arguments


_MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


@register
class MutableDefaultRule(Rule):
    """SIM006: mutable defaults alias state across calls (and runs)."""

    id = "SIM006"
    title = "mutable default argument"
    severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(func.args.defaults) \
                + [d for d in func.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        "mutable default argument is shared across "
                        "calls; default to None and construct inside "
                        "the function")

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MUTABLE_CALLS
                and not node.args and not node.keywords)


# --------------------------------------------------------------------------
# SIM007 — broad except that can swallow simulator control flow


@register
class BroadExceptRule(Rule):
    """SIM007: a broad handler can swallow ``simcore.errors``.

    ``Interrupt`` (node crash delivery) and ``SimulationDeadlock``
    derive from :class:`Exception`; a bare/broad ``except`` on a
    process path absorbs them and the crash semantics silently
    disappear.  Handlers that visibly propagate — a bare ``raise``, a
    ``raise ... from exc``, or failing an event with ``.fail(exc)`` —
    are allowed.
    """

    id = "SIM007"
    title = "bare/broad except can swallow simcore.errors"
    severity = Severity.WARNING

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if self._propagates(node):
                continue
            label = broad if node.type is not None else "bare except"
            yield self.finding(
                ctx, node,
                f"{label} can swallow simcore.errors (Interrupt, "
                f"SimulationDeadlock); catch specific exceptions, "
                f"re-raise, or fail the owning event")

    @staticmethod
    def _broad_name(type_node: Optional[ast.AST]) -> Optional[str]:
        if type_node is None:
            return "bare except"
        candidates = type_node.elts if isinstance(type_node, ast.Tuple) \
            else [type_node]
        for cand in candidates:
            name = cand.id if isinstance(cand, ast.Name) else \
                cand.attr if isinstance(cand, ast.Attribute) else None
            if name in ("Exception", "BaseException"):
                return f"except {name}"
        return None

    @staticmethod
    def _propagates(handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if bound is not None and isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "fail" \
                    and any(isinstance(a, ast.Name) and a.id == bound
                            for a in node.args):
                return True
        return False


# --------------------------------------------------------------------------
# SIM008 — event-queue manipulation outside the simcore kernel


@register
class EventQueueRule(Rule):
    """SIM008: only the simcore kernel may touch the event heap.

    The engine's ``(time, priority, seq, event)`` heap entries are the
    *entire* tie-break contract; pushing into it (or re-heapifying a
    waiter queue) anywhere else bypasses the sequence counter and makes
    same-timestamp ordering fall back to object identity — i.e. memory
    addresses.  Schedule through ``env.timeout`` / ``env.process`` /
    resource requests instead.
    """

    id = "SIM008"
    title = "event-queue manipulation outside simcore"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.is_event_queue_owner()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "heapq":
                        yield self.finding(
                            ctx, node,
                            "heapq outside the simcore kernel: direct "
                            "heap manipulation bypasses the engine's "
                            "deterministic (time, priority, seq) "
                            "tie-break")
            elif isinstance(node, ast.ImportFrom) and node.module == "heapq":
                yield self.finding(
                    ctx, node,
                    "heapq outside the simcore kernel: direct heap "
                    "manipulation bypasses the engine's deterministic "
                    "(time, priority, seq) tie-break")
            elif isinstance(node, ast.Attribute):
                if node.attr == "_queue_event":
                    yield self.finding(
                        ctx, node,
                        "_queue_event is the engine's private "
                        "scheduling API; use env.timeout/env.process "
                        "or an Event instead")
                elif node.attr == "_queue" and self._on_env(node.value):
                    yield self.finding(
                        ctx, node,
                        "direct access to the engine's event heap; "
                        "use the public Environment API")
                qual = _qualified(node, aliases)
                if qual is not None and qual.startswith("heapq."):
                    yield self.finding(
                        ctx, node,
                        f"{qual} outside the simcore kernel: direct "
                        f"heap manipulation bypasses the engine's "
                        f"deterministic tie-break")

    @staticmethod
    def _on_env(value: ast.AST) -> bool:
        if isinstance(value, ast.Name):
            return value.id == "env"
        if isinstance(value, ast.Attribute):
            return value.attr == "env"
        return False


# --------------------------------------------------------------------------
# SIM009 — host-side observability leaking into the simulation kernel

#: Top-level ``repro`` subpackages sanctioned to touch the host
#: (mirrors ``engine.HOST_OBSERVE_PREFIXES``): the kernel must not
#: reference any of them.
_HOST_SIDE_PACKAGES = frozenset({"observe", "service"})


@register
class HostObservabilityLeakRule(Rule):
    """SIM009: the simulation kernel must not see host-side telemetry.

    ``repro/observe/`` and ``repro/service/`` are where wall-clock
    reads legitimately live (sweep progress, event-log timestamps,
    crash bundles, job-lease deadlines) — but that sanction is
    one-directional.  Inside the kernel proper (``simcore/``,
    ``storage/``, ``workflow/``) any wall-clock read, or any reference
    to those host-side packages, is a channel through which host time
    could reach simulation state and silently break the telemetry
    hash-chain's bit-identity across machines.  Host measurements
    belong in the orchestration layer (``experiments/runner.py``),
    which observes workers from outside.
    """

    id = "SIM009"
    title = "host-side observability reference inside the sim kernel"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_sim_kernel_module()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        parents = _ParentMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._is_observe_module(alias.name):
                        yield self._observe_finding(ctx, node, alias.name)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if isinstance(node, ast.Name) \
                        and not isinstance(node.ctx, ast.Load):
                    continue
                qual = _qualified(node, aliases)
                if qual is None:
                    continue
                if qual in _WALL_CLOCK:
                    yield self.finding(
                        ctx, node,
                        f"{qual} reads the host clock inside the sim "
                        f"kernel; host-side probes live in "
                        f"repro.observe and may only be used by the "
                        f"orchestration layer")
                elif self._is_observe_module(qual) \
                        and not self._inside_attribute(parents, node):
                    # Flag only the outermost node of a dotted chain so
                    # ``hostclock.wall_now()`` is one finding, not two.
                    yield self._observe_finding(ctx, node, qual)

    def _check_import_from(self, ctx: ModuleContext,
                           node: ast.ImportFrom) -> Iterator[Finding]:
        module = node.module or ""
        if node.level == 0:
            if self._is_observe_module(module):
                yield self._observe_finding(ctx, node, module)
            return
        # Relative import: ``from ..observe import ...`` or
        # ``from .. import observe`` (likewise ``service``).
        head = module.split(".", 1)[0]
        if head in _HOST_SIDE_PACKAGES:
            yield self._observe_finding(ctx, node,
                                        f"{'.' * node.level}{module}")
        elif not module:
            for alias in node.names:
                if alias.name in _HOST_SIDE_PACKAGES:
                    yield self._observe_finding(
                        ctx, node,
                        f"{'.' * node.level} import {alias.name}")

    @staticmethod
    def _is_observe_module(name: str) -> bool:
        return any(name == f"repro.{pkg}" or name.startswith(f"repro.{pkg}.")
                   for pkg in _HOST_SIDE_PACKAGES)

    @staticmethod
    def _inside_attribute(parents: _ParentMap, node: ast.AST) -> bool:
        link = parents.parent_of(node)
        return link is not None and isinstance(link[0], ast.Attribute) \
            and link[1] == "value"

    def _observe_finding(self, ctx: ModuleContext, node: ast.AST,
                         what: str) -> Finding:
        return self.finding(
            ctx, node,
            f"{what}: the sim kernel must not reference host-side "
            f"observability — wall-clock telemetry flows one way, from "
            f"the orchestration layer's monitor, never into the "
            f"deterministic kernel")


#: numpy constructors whose result is a fresh buffer; assigning one at
#: module or class scope creates scratch state shared by every kernel
#: instance in the process.
_NUMPY_ARRAY_FACTORIES = frozenset({
    "array", "arange", "empty", "empty_like", "frombuffer", "fromiter",
    "full", "full_like", "linspace", "ones", "ones_like", "zeros",
    "zeros_like",
})


@register
class Sim015NoSharedNumpyScratch(Rule):
    """SIM015: numpy scratch arrays must be owned per instance.

    The struct-of-arrays kernels preallocate numpy buffers and mutate
    them in place on every event.  A buffer allocated at module or
    class scope is *aliased across every* ``Environment`` in the
    process: a serial sweep's second cell would inherit the first
    cell's residues, and any concurrent use corrupts both — silently,
    since the numbers stay plausible.  Scratch arrays belong on the
    instance (allocated in ``__init__`` or a method), whose lifetime
    is tied to exactly one environment.
    """

    id = "SIM015"
    title = "shared numpy scratch array in the sim kernel"
    severity = Severity.ERROR

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_sim_kernel_module()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _import_aliases(ctx.tree)
        scopes: List[Tuple[str, List[ast.stmt]]] = \
            [("module scope", ctx.tree.body)]
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                scopes.append((f"class {node.name}", node.body))
        for where, body in scopes:
            for stmt in body:
                if isinstance(stmt, ast.Assign):
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                    value = stmt.value
                else:
                    continue
                factory = self._array_factory(value, aliases)
                if factory is not None:
                    yield self.finding(
                        ctx, stmt,
                        f"{factory}(...) assigned at {where} is scratch "
                        f"state aliased across every Environment in the "
                        f"process; allocate the buffer per instance "
                        f"(e.g. in __init__) so each environment owns "
                        f"its own")

    @staticmethod
    def _array_factory(value: ast.AST,
                       aliases: Dict[str, str]) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        qual = _qualified(value.func, aliases)
        if qual is None or "." not in qual:
            return None
        head, _dot, leaf = qual.rpartition(".")
        if head == "numpy" and leaf in _NUMPY_ARRAY_FACTORIES:
            return qual
        return None
