"""Inline suppression comments.

A finding on a line carrying ``# lint: ignore[SIM001]`` (or a
comma-separated list, or a bare ``# lint: ignore`` covering every rule)
is silenced at that line.  ``# lint: skip-file`` within the first ten
lines exempts the whole file — reserved for generated code and test
fixtures that violate rules on purpose.

Suppressions silence, they do not erase: the runner still reports how
many findings each file suppressed, so a rule that never fires live can
still be audited.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional

#: Matches ``# lint: ignore`` with an optional bracketed rule list.
_IGNORE_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file\b")

#: Sentinel rule set meaning "every rule".
ALL_RULES: FrozenSet[str] = frozenset({"*"})

#: How many leading lines may carry a ``skip-file`` directive.
SKIP_FILE_WINDOW = 10


class SuppressionMap:
    """Per-line suppression directives parsed from one source file."""

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, FrozenSet[str]] = {}
        self.skip_file = False
        lines: List[str] = source.splitlines()
        for lineno, text in enumerate(lines, start=1):
            if lineno <= SKIP_FILE_WINDOW and _SKIP_FILE_RE.search(text):
                self.skip_file = True
            match = _IGNORE_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                self._by_line[lineno] = ALL_RULES
            else:
                parsed = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip())
                self._by_line[lineno] = parsed or ALL_RULES

    def covers(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is suppressed at ``line``."""
        if self.skip_file:
            return True
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return rules is ALL_RULES or "*" in rules or rule_id in rules

    def rules_at(self, line: int) -> Optional[FrozenSet[str]]:
        """The rule set suppressed at ``line`` (None = no directive)."""
        return self._by_line.get(line)

    @property
    def n_directives(self) -> int:
        """Number of inline ignore directives in the file."""
        return len(self._by_line)
