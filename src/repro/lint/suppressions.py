"""Inline suppression comments.

A finding on a line carrying ``# lint: ignore[SIM001]`` (or a
comma-separated list, or a bare ``# lint: ignore`` covering every rule)
is silenced at that line.  ``# lint: skip-file`` within the first ten
lines exempts the whole file — reserved for generated code and test
fixtures that violate rules on purpose.

Suppressions silence, they do not erase: the runner still reports how
many findings each file suppressed, so a rule that never fires live can
still be audited.

A third directive, ``# lint: guarded-by[<lock>]``, is not a
suppression: it *documents* which lock protects the mutable state
declared on that line.  SIM012 treats it as the required annotation for
module-level mutable state in threaded modules, and the runtime lock
witness (:mod:`repro.lint.lockwatch`) enforces it dynamically via
:func:`~repro.lint.lockwatch.guard`.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional

#: Matches ``# lint: ignore`` with an optional bracketed rule list.
_IGNORE_RE = re.compile(
    r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE_RE = re.compile(r"#\s*lint:\s*skip-file\b")
#: Matches ``# lint: guarded-by[<lock name>]`` (dotted names allowed).
_GUARD_RE = re.compile(
    r"#\s*lint:\s*guarded-by\[(?P<lock>[A-Za-z0-9_.]+)\]")

#: Sentinel rule set meaning "every rule".
ALL_RULES: FrozenSet[str] = frozenset({"*"})

#: How many leading lines may carry a ``skip-file`` directive.
SKIP_FILE_WINDOW = 10


class SuppressionMap:
    """Per-line suppression directives parsed from one source file."""

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, FrozenSet[str]] = {}
        self._guards: Dict[int, str] = {}
        self.skip_file = False
        lines: List[str] = source.splitlines()
        for lineno, text in enumerate(lines, start=1):
            if lineno <= SKIP_FILE_WINDOW and _SKIP_FILE_RE.search(text):
                self.skip_file = True
            guard = _GUARD_RE.search(text)
            if guard is not None:
                self._guards[lineno] = guard.group("lock")
            match = _IGNORE_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                self._by_line[lineno] = ALL_RULES
            else:
                parsed = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip())
                self._by_line[lineno] = parsed or ALL_RULES

    def covers(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` is suppressed at ``line``."""
        if self.skip_file:
            return True
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return rules is ALL_RULES or "*" in rules or rule_id in rules

    def rules_at(self, line: int) -> Optional[FrozenSet[str]]:
        """The rule set suppressed at ``line`` (None = no directive)."""
        return self._by_line.get(line)

    def guard_at(self, line: int) -> Optional[str]:
        """The ``guarded-by`` lock named at ``line`` (None = none)."""
        return self._guards.get(line)

    @property
    def n_directives(self) -> int:
        """Number of inline ignore directives in the file."""
        return len(self._by_line)
