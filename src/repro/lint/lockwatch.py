"""Runtime lock-order / race witness for the host-side service stack.

The static rules (SIM010–SIM014) catch what a code reader can see;
this module catches what only an execution can.  Service code creates
its synchronization primitives through the injectable factory seam —
:func:`new_lock` / :func:`new_rlock` / :func:`new_condition` — and
declares lock-protected containers with :func:`guard`.  With no
watcher installed (the production default) the factories return the
**raw** :mod:`threading` primitives and :func:`guard` returns its
argument unchanged, so the seam costs one ``None`` check at
construction time and nothing per operation.

Installing a :class:`LockWatcher` (``repro-ec2 lint --locks``, the
chaos test suite, ``scripts/concurrency_smoke.py``) turns the seam on:

* every acquisition records an **edge** from each lock already held by
  the acquiring thread to the new lock, building a global lock-order
  graph; a cycle in that graph is a potential deadlock even if this
  particular run never interleaved into one — the finding carries the
  acquisition stacks of both directions;
* every release checks the **hold time** against a threshold, the
  dynamic complement of SIM011's "no blocking call under a lock";
* every mutation of a :func:`guard`-ed container checks that its
  declared lock is held by the mutating thread — the runtime teeth
  behind the ``# lint: guarded-by[<lock>]`` annotation SIM012 requires.

Locks are identified by their factory *name*, not instance, so two
stores constructed from the same code path share one node in the
graph — the classic lock-*class* ordering discipline.  The watcher
itself synchronizes on one raw leaf lock and never calls out while
holding it, so it cannot participate in the deadlocks it hunts.  Time
comes from :func:`repro.observe.hostclock.monotonic`: the witness
lives entirely on the host side and never touches simulation state,
which is why golden digests are bit-identical with or without it.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..observe.hostclock import monotonic

#: Seconds a lock may be held before the witness flags it.
DEFAULT_HOLD_THRESHOLD = 1.0

#: The installed watcher (None = factories hand out raw primitives).
_WATCHER: Optional["LockWatcher"] = None


@dataclass
class LockFinding:
    """One runtime violation the watcher observed."""

    #: ``lock-order-inversion`` / ``hold-time`` / ``guarded-by``.
    kind: str
    message: str
    #: Acquisition / mutation stacks relevant to the finding.
    stacks: Tuple[str, ...] = ()

    def format(self) -> str:
        head = f"[{self.kind}] {self.message}"
        if not self.stacks:
            return head
        blocks = "\n".join(f"--- stack {i + 1} ---\n{s.rstrip()}"
                           for i, s in enumerate(self.stacks))
        return f"{head}\n{blocks}"


@dataclass
class _Held:
    name: str
    since: float
    first: bool  # False for a reentrant re-acquire (no edges, no timing)


class _ThreadState(threading.local):
    """Per-thread held-lock stack (``__init__`` re-runs per thread)."""

    def __init__(self) -> None:
        self.stack: List[_Held] = []


class LockWatcher:
    """Collects lock-order edges, hold times, and guard violations.

    All shared state (the order graph, the findings list) lives behind
    one private raw lock; per-thread held stacks are thread-local and
    need no synchronization at all.
    """

    def __init__(self, hold_threshold: float = DEFAULT_HOLD_THRESHOLD,
                 max_findings: int = 100) -> None:
        self.hold_threshold = hold_threshold
        self.max_findings = max_findings
        self.findings: List[LockFinding] = []
        self.n_acquires = 0
        self.n_guard_checks = 0
        self._mu = threading.Lock()
        self._local = _ThreadState()
        #: lock name -> names acquired while it was held.
        self._edges: Dict[str, Set[str]] = {}
        #: first-witness stack per edge (for inversion reports).
        self._edge_stacks: Dict[Tuple[str, str], str] = {}

    # -- per-thread bookkeeping (no lock needed) ----------------------------

    def _held_stack(self) -> List[_Held]:
        return self._local.stack

    def held_by_current(self, name: str) -> bool:
        """Whether the calling thread currently holds ``name``."""
        return any(h.name == name for h in self._held_stack())

    def held_names(self) -> List[str]:
        """Lock names the calling thread holds, innermost last."""
        return [h.name for h in self._held_stack() if h.first]

    # -- events from watched primitives -------------------------------------

    def on_acquire(self, name: str) -> None:
        """Record that the calling thread now holds ``name``."""
        held = self._held_stack()
        first = not any(h.name == name for h in held)
        if first:
            outer = [h.name for h in held if h.first]
            if outer:
                with self._mu:
                    self.n_acquires += 1
                    for prior in outer:
                        self._add_edge(prior, name)
            else:
                with self._mu:
                    self.n_acquires += 1
        held.append(_Held(name, monotonic(), first))

    def on_release(self, name: str) -> None:
        """Record the release; check the hold time on the outermost."""
        held = self._held_stack()
        for i in range(len(held) - 1, -1, -1):
            if held[i].name == name:
                entry = held.pop(i)
                break
        else:
            return  # release of a lock acquired before install(); ignore
        if not entry.first:
            return  # reentrant inner release: the outer one is timed
        duration = monotonic() - entry.since
        if duration > self.hold_threshold:
            self._record(LockFinding(
                kind="hold-time",
                message=(f"lock {name!r} held for {duration:.3f}s "
                         f"(threshold {self.hold_threshold:.3f}s)"),
                stacks=(self._stack_here(),)))

    def on_guard_violation(self, container: str, lock: str) -> None:
        """A guarded container was mutated off-lock."""
        held = ", ".join(self.held_names()) or "none"
        self._record(LockFinding(
            kind="guarded-by",
            message=(f"{container!r} mutated without holding its "
                     f"declared lock {lock!r} (held: {held})"),
            stacks=(self._stack_here(),)))

    def count_guard_check(self) -> None:
        with self._mu:
            self.n_guard_checks += 1

    # -- the order graph (callers hold self._mu) -----------------------------

    def _add_edge(self, outer: str, inner: str) -> None:
        if outer == inner:
            return
        targets = self._edges.setdefault(outer, set())
        if inner in targets:
            return
        targets.add(inner)
        self._edge_stacks[(outer, inner)] = self._stack_here()
        cycle = self._path(inner, outer)
        if cycle is not None:
            chain = " -> ".join([outer, inner] + cycle[1:])
            stacks = [self._edge_stacks[(outer, inner)]]
            reverse = self._edge_stacks.get((inner, cycle[1] if
                                             len(cycle) > 1 else outer))
            if reverse is not None:
                stacks.append(reverse)
            self._record_locked(LockFinding(
                kind="lock-order-inversion",
                message=(f"lock-order cycle {chain}: threads that "
                         f"interleave these call paths can deadlock"),
                stacks=tuple(stacks)))

    def _path(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS path ``start -> ... -> goal`` in the edge graph."""
        seen: Set[str] = set()
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in sorted(self._edges.get(node, ())):
                stack.append((nxt, path + [nxt]))
        return None

    # -- findings ------------------------------------------------------------

    def _record(self, finding: LockFinding) -> None:
        with self._mu:
            self._record_locked(finding)

    def _record_locked(self, finding: LockFinding) -> None:
        if len(self.findings) < self.max_findings:
            self.findings.append(finding)

    @staticmethod
    def _stack_here() -> str:
        # Drop the watcher's own frames: callers want to see the
        # acquire site, not the bookkeeping under it.
        return "".join(traceback.format_stack(limit=16)[:-2])

    @property
    def ok(self) -> bool:
        return not self.findings

    def edge_count(self) -> int:
        with self._mu:
            return sum(len(v) for v in self._edges.values())

    def format_report(self) -> str:
        """Human-readable summary of everything witnessed."""
        lines = [
            f"lockwatch: {self.n_acquires} acquisition(s), "
            f"{self.edge_count()} order edge(s), "
            f"{self.n_guard_checks} guard check(s), "
            f"{len(self.findings)} finding(s)"
        ]
        for finding in self.findings:
            lines.append(finding.format())
        return "\n".join(lines)


# --------------------------------------------------------------------------
# watched primitives


class _WatchedLock:
    """Lock/RLock proxy reporting acquire/release to the watcher."""

    def __init__(self, inner: Any, name: str,
                 watcher: LockWatcher) -> None:
        self._inner = inner
        self._name = name
        self._watcher = watcher

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._watcher.on_acquire(self._name)
        return ok

    def release(self) -> None:
        self._watcher.on_release(self._name)
        self._inner.release()

    def __enter__(self) -> "_WatchedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:
        return f"<watched {self._inner!r} name={self._name!r}>"


class _WatchedCondition:
    """Condition proxy: wait() re-reports the implicit release/acquire."""

    def __init__(self, name: str, watcher: LockWatcher) -> None:
        self._inner = threading.Condition()
        self._name = name
        self._watcher = watcher

    def acquire(self, *args: Any) -> bool:
        ok = self._inner.acquire(*args)
        if ok:
            self._watcher.on_acquire(self._name)
        return ok

    def release(self) -> None:
        self._watcher.on_release(self._name)
        self._inner.release()

    def __enter__(self) -> "_WatchedCondition":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._watcher.on_release(self._name)
        try:
            return self._inner.wait(timeout)
        finally:
            self._watcher.on_acquire(self._name)

    def wait_for(self, predicate: Any,
                 timeout: Optional[float] = None) -> Any:
        self._watcher.on_release(self._name)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            self._watcher.on_acquire(self._name)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


class _GuardedDict(dict):
    """Dict whose mutations require the declared lock to be held."""

    def __init__(self, initial: Dict[Any, Any], lock: str, name: str,
                 watcher: LockWatcher) -> None:
        super().__init__(initial)
        self._lock_name = lock
        self._container_name = name
        self._watcher = watcher

    def _check(self) -> None:
        self._watcher.count_guard_check()
        if not self._watcher.held_by_current(self._lock_name):
            self._watcher.on_guard_violation(
                self._container_name, self._lock_name)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._check()
        super().__setitem__(key, value)

    def __delitem__(self, key: Any) -> None:
        self._check()
        super().__delitem__(key)

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._check()
        super().update(*args, **kwargs)

    def clear(self) -> None:
        self._check()
        super().clear()

    def pop(self, *args: Any) -> Any:
        self._check()
        return super().pop(*args)

    def popitem(self) -> Tuple[Any, Any]:
        self._check()
        return super().popitem()

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._check()
        return super().setdefault(key, default)


# --------------------------------------------------------------------------
# the factory seam


def new_lock(name: str) -> Any:
    """A ``threading.Lock`` — watched when a watcher is installed."""
    watcher = _WATCHER
    if watcher is None:
        return threading.Lock()
    return _WatchedLock(threading.Lock(), name, watcher)


def new_rlock(name: str) -> Any:
    """A ``threading.RLock`` — watched when a watcher is installed."""
    watcher = _WATCHER
    if watcher is None:
        return threading.RLock()
    return _WatchedLock(threading.RLock(), name, watcher)


def new_condition(name: str) -> Any:
    """A ``threading.Condition`` — watched when a watcher is installed."""
    watcher = _WATCHER
    if watcher is None:
        return threading.Condition()
    return _WatchedCondition(name, watcher)


def guard(container: Dict[Any, Any], lock: str, name: str) -> Dict[Any, Any]:
    """Declare ``container`` protected by the lock named ``lock``.

    The runtime half of ``# lint: guarded-by[<lock>]``: with a watcher
    installed, every *mutation* of the returned dict checks that the
    calling thread holds the declared lock (reads stay free — the
    published convention is mutate-under-lock, snapshot-read).  With no
    watcher this returns ``container`` itself, unchanged.
    """
    watcher = _WATCHER
    if watcher is None:
        return container
    return _GuardedDict(container, lock, name, watcher)


def install_watcher(watcher: Optional[LockWatcher] = None,
                    hold_threshold: float = DEFAULT_HOLD_THRESHOLD
                    ) -> LockWatcher:
    """Install (and return) the process-wide watcher.

    Primitives created *after* this call are watched; install before
    constructing the service under test.  Raises if a watcher is
    already installed — nested witnesses would double-count.
    """
    global _WATCHER
    if _WATCHER is not None:
        raise RuntimeError("a LockWatcher is already installed")
    _WATCHER = watcher if watcher is not None \
        else LockWatcher(hold_threshold=hold_threshold)
    return _WATCHER


def uninstall_watcher() -> Optional[LockWatcher]:
    """Remove the installed watcher (already-built proxies keep it)."""
    global _WATCHER
    watcher, _WATCHER = _WATCHER, None
    return watcher


def current_watcher() -> Optional[LockWatcher]:
    """The installed watcher, or None."""
    return _WATCHER


# --------------------------------------------------------------------------
# the --locks check


def run_lockwatch_check(seed: int = 11,
                        hold_threshold: float = 2.0,
                        db_path: str = ":memory:") -> LockWatcher:
    """Boot the chaos-wrapped service under a watcher and drain a batch.

    The ``repro-ec2 lint --locks`` entry point: every lock in the
    store / queue / worker / breaker / chaos stack is created through
    the watched factory, a small job batch runs under mild injected
    faults (faults force the retry, requeue, and supervisor paths —
    the interesting lock orders), and the returned watcher holds
    whatever the run witnessed.  Imports are local: this is the one
    place the lint package reaches *into* the service layer, and only
    on demand.
    """
    import time

    from ..experiments.config import ExperimentConfig
    from ..service.chaos import ChaosSpec, chaos_service
    from ..service.client import TRANSIENT_STATUSES, ServiceError

    watcher = install_watcher(hold_threshold=hold_threshold)
    try:
        spec = ChaosSpec(
            seed=seed,
            store_error_rate=0.04,
            store_delay_rate=0.02,
            store_delay_seconds=0.002,
            http_error_rate=0.10,
            kill_job_rate=0.05,
        )
        harness = chaos_service(spec, db_path=db_path, lease_seconds=1.0,
                                max_attempts=8)
        client = harness.client()
        try:
            cells = [
                ExperimentConfig("montage", "nfs", 2),
                ExperimentConfig("montage", "s3", 2),
                ExperimentConfig("epigenome", "nfs", 2),
            ]
            job_ids = []
            for cell in cells:
                t0 = monotonic()
                while True:
                    try:
                        doc = client.submit([cell], scale="small")
                        break
                    except ServiceError as exc:
                        if exc.status not in TRANSIENT_STATUSES \
                                or monotonic() - t0 > 60.0:
                            raise
                        time.sleep(0.05)
                job_ids.append(doc["job_id"])
            for job_id in job_ids:
                client.wait(job_id, timeout=120, poll_interval=0.05)
        finally:
            harness.stop()
    finally:
        uninstall_watcher()
    return watcher
