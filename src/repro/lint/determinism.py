"""Runtime determinism sanitizer.

The static rules catch *patterns* that can break determinism; this
module checks the property itself: a small paper-grid scenario is run
repeatedly — same seed in-process, and in fresh interpreters under two
different ``PYTHONHASHSEED`` values — and the full telemetry event
stream of every run is hash-chained into a single digest.  Any
divergence in the order, timing, or payload of *any* traced event
(scheduler decisions, storage operations, task phases, billing) changes
the digest; on mismatch the sanitizer replays the runs and reports the
first divergent event.

The digest covers the :class:`~repro.simcore.tracing.TraceCollector`
stream — the same records the telemetry bridge feeds to metrics and
spans — plus the run's makespan and cost, so the check fails if any
observable output is not a pure function of ``(scenario, seed)``.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.config import ExperimentConfig
from ..workflow.dag import Workflow

#: Default scenario: the smallest paper cell that still exercises a
#: shared storage service, remote transfers, and slot contention.
DEFAULT_APP = "montage"
DEFAULT_STORAGE = "nfs"
DEFAULT_NODES = 2
DEFAULT_SEEDS = (0, 1)
DEFAULT_HASH_SEEDS = ("1", "2")


def small_workflow(app: str) -> Workflow:
    """A scaled-down instance of ``app`` for fast double-runs."""
    from ..apps import (
        APP_BUILDERS,
        build_broadband,
        build_epigenome,
        build_montage,
        build_synthetic,
    )
    if app == "montage":
        return build_montage(degrees=1.0)
    if app == "epigenome":
        return build_epigenome(chunks_per_lane=[4, 4])
    if app == "broadband":
        return build_broadband(n_sources=2, n_sites=4)
    if app == "synthetic":
        return build_synthetic(40, width=8, seed=1)
    return APP_BUILDERS[app]()


def _canon_value(value: object) -> str:
    """Canonical text for one trace-field value.

    ``repr`` of a float is exact (shortest round-trip), so any
    last-ulp drift shows up; everything else is stringified with its
    type tag so ``1`` and ``"1"`` cannot collide.
    """
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    return f"s:{value}"


def canonical_event(time: float, category: str, event: str,
                    fields: Dict[str, object]) -> str:
    """The hash-chain line for one trace record."""
    payload = ",".join(f"{k}={_canon_value(v)}"
                       for k, v in sorted(fields.items()))
    return f"{time!r}|{category}|{event}|{payload}"


@dataclass
class RunDigest:
    """One run's hash-chained event stream."""

    digest: str
    n_events: int
    makespan: float
    cost: float
    #: Canonical event lines (only when ``keep_events=True``).
    events: Optional[List[str]] = None


def digest_run(app: str = DEFAULT_APP, storage: str = DEFAULT_STORAGE,
               nodes: int = DEFAULT_NODES, seed: int = 0,
               keep_events: bool = False) -> RunDigest:
    """Run the scenario once and hash-chain its telemetry stream."""
    from ..experiments.runner import run_experiment
    # A small CPU jitter routes the seed through the rand substreams,
    # so different seeds *must* produce different digests (asserted by
    # the protocol) while identical seeds must match bit-for-bit.
    config = ExperimentConfig(app, storage, nodes, seed=seed,
                              cpu_jitter_sigma=0.05,
                              collect_traces=True)
    result = run_experiment(config, workflow=small_workflow(app))
    chain = hashlib.sha256()
    events: Optional[List[str]] = [] if keep_events else None
    assert result.trace is not None
    for rec in result.trace.records:
        line = canonical_event(rec.time, rec.category, rec.event, rec.fields)
        chain.update(line.encode())
        chain.update(b"\n")
        if events is not None:
            events.append(line)
    makespan = result.run.makespan
    cost = result.cost.per_second_total
    tail = f"makespan={makespan!r}|cost={cost!r}"
    chain.update(tail.encode())
    if events is not None:
        events.append(tail)
    return RunDigest(digest=chain.hexdigest(),
                     n_events=len(result.trace.records),
                     makespan=makespan, cost=cost, events=events)


def first_divergence(a: RunDigest, b: RunDigest
                     ) -> Optional[Tuple[int, str, str]]:
    """Index and both canonical lines of the first differing event."""
    if a.events is None or b.events is None:
        return None
    for i, (ea, eb) in enumerate(zip(a.events, b.events)):
        if ea != eb:
            return i, ea, eb
    if len(a.events) != len(b.events):
        i = min(len(a.events), len(b.events))
        longer = a.events if len(a.events) > len(b.events) else b.events
        return (i, "<stream ended>", longer[i]) \
            if longer is b.events else (i, longer[i], "<stream ended>")
    return None


# --------------------------------------------------------------------------
# cross-interpreter legs


def _subprocess_digest(app: str, storage: str, nodes: int, seed: int,
                       hash_seed: str, timeout: float = 300.0) -> RunDigest:
    """Digest the scenario in a fresh interpreter under ``hash_seed``.

    ``PYTHONHASHSEED`` only takes effect at interpreter startup, so the
    cross-hash-seed legs must re-exec; the child prints one
    machine-readable line via ``repro-ec2 lint --emit-digest``.
    """
    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(os.path.join(__file__, os.pardir))))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "repro", "lint", "--emit-digest",
           "--app", app, "--storage", storage, "--nodes", str(nodes),
           "--seed", str(seed)]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True,
                          timeout=timeout)
    if proc.returncode != 0:
        raise RuntimeError(
            f"digest subprocess failed (PYTHONHASHSEED={hash_seed}): "
            f"{proc.stderr.strip() or proc.stdout.strip()}")
    line = proc.stdout.strip().splitlines()[-1]
    return parse_digest_line(line)


def format_digest_line(run: RunDigest) -> str:
    """The one-line wire format of ``--emit-digest``."""
    return (f"digest {run.digest} events {run.n_events} "
            f"makespan {run.makespan!r} cost {run.cost!r}")


def parse_digest_line(line: str) -> RunDigest:
    """Inverse of :func:`format_digest_line`."""
    parts = line.split()
    if len(parts) != 8 or parts[0] != "digest" or parts[2] != "events":
        raise ValueError(f"malformed digest line: {line!r}")
    return RunDigest(digest=parts[1], n_events=int(parts[3]),
                     makespan=float(parts[5]), cost=float(parts[7]))


# --------------------------------------------------------------------------
# the full protocol


@dataclass
class DeterminismReport:
    """Outcome of the full sanitizer protocol."""

    scenario: str
    #: (leg label, digest) in execution order.
    legs: List[Tuple[str, str]] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    n_events: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        lines = [f"determinism sanitizer: {self.scenario} "
                 f"({self.n_events} traced events per run)"]
        for label, digest in self.legs:
            lines.append(f"  {label:<28} {digest[:16]}")
        if self.ok:
            lines.append("all event-stream digests identical: "
                         "the run is a pure function of (scenario, seed)")
        else:
            for failure in self.failures:
                lines.append(f"FAIL: {failure}")
        return "\n".join(lines)


def run_determinism_check(app: str = DEFAULT_APP,
                          storage: str = DEFAULT_STORAGE,
                          nodes: int = DEFAULT_NODES,
                          seeds: Sequence[int] = DEFAULT_SEEDS,
                          hash_seeds: Sequence[str] = DEFAULT_HASH_SEEDS,
                          subprocess_legs: bool = True
                          ) -> DeterminismReport:
    """Run the double-run / double-hash-seed protocol.

    For every seed: the scenario runs twice in this interpreter (their
    digests must match — catches stateful nondeterminism such as
    leaked module globals), then once per ``PYTHONHASHSEED`` value in a
    fresh interpreter (all digests must match the in-process one —
    catches hash-order dependence).  Different *seeds* are expected to
    produce different digests; that contrast is asserted too, since a
    digest that ignores the seed would be vacuous.
    """
    report = DeterminismReport(
        scenario=f"{app}/{storage}@{nodes} seeds={list(seeds)} "
                 f"hash_seeds={list(hash_seeds)}")
    by_seed: Dict[int, str] = {}
    for seed in seeds:
        first = digest_run(app, storage, nodes, seed)
        second = digest_run(app, storage, nodes, seed)
        report.n_events = first.n_events
        report.legs.append((f"seed={seed} run 1", first.digest))
        report.legs.append((f"seed={seed} run 2", second.digest))
        by_seed[seed] = first.digest
        if first.digest != second.digest:
            a = digest_run(app, storage, nodes, seed, keep_events=True)
            b = digest_run(app, storage, nodes, seed, keep_events=True)
            div = first_divergence(a, b)
            where = (f" first divergent event #{div[0]}:\n"
                     f"    run 1: {div[1]}\n    run 2: {div[2]}"
                     if div else " (divergence not reproduced on replay)")
            report.failures.append(
                f"seed {seed}: two in-process runs disagree "
                f"({first.digest[:16]} != {second.digest[:16]});{where}")
            continue
        if not subprocess_legs:
            continue
        for hash_seed in hash_seeds:
            child = _subprocess_digest(app, storage, nodes, seed, hash_seed)
            report.legs.append(
                (f"seed={seed} PYTHONHASHSEED={hash_seed}", child.digest))
            if child.digest != first.digest:
                report.failures.append(
                    f"seed {seed}: PYTHONHASHSEED={hash_seed} changes the "
                    f"event stream ({child.digest[:16]} != "
                    f"{first.digest[:16]}): some code path iterates in "
                    f"hash order ({child.n_events} vs {first.n_events} "
                    f"events, makespan {child.makespan!r} vs "
                    f"{first.makespan!r})")
    if len(seeds) > 1:
        digests = {d for d in by_seed.values()}
        if len(digests) == 1 and len(by_seed) > 1:
            report.failures.append(
                f"seeds {sorted(by_seed)} all produced digest "
                f"{next(iter(digests))[:16]}: the digest does not depend "
                f"on the seed, so the check is vacuous")
    return report
