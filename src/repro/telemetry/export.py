"""Metrics export: Prometheus/OpenMetrics text exposition and JSON.

The :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot feeds two
wire formats:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, escaped label values, cumulative
  ``_bucket``/``_sum``/``_count`` histogram series).  This is the
  surface a future simulation-as-a-service scrape endpoint serves, and
  what ``repro-ec2 run --metrics-out m.prom --metrics-format prom``
  writes today.
* :func:`to_json_snapshot` — the registry snapshot as JSON, shared with
  ``--metrics-out`` in its default mode.

Both exports are **canonical**: metric names sorted, label names sorted
within a series, series sorted by label key, histogram buckets in
ascending numeric order with ``+Inf`` last.  Two registries holding the
same values produce byte-identical documents regardless of insertion
order — the regression tests pin this, because sweep artifacts are
diffed across runs and machines.

:func:`validate_exposition` is a promtool-style checker (pure python,
no external dependency) used by the tests and the CI observability
smoke to prove the exposition we emit actually parses.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Metric/label name grammar from the Prometheus data model.
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One sample line: ``name{labels} value`` (labels optional).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$")

_EXPOSITION_KINDS = ("counter", "gauge", "histogram")


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value (backslash, double quote, newline)."""
    return (value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape(value: str) -> str:
    out: List[str] = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def format_value(value: float) -> str:
    """Canonical sample value: integral floats render as integers,
    everything else as the shortest round-trip ``repr``."""
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _label_str(labels: Dict[str, str],
               extra: Optional[Tuple[str, str]] = None) -> str:
    """``{a="1",le="0.5"}`` with names sorted; '' when empty."""
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{escape_label_value(str(v))}"'
                    for k, v in items)
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Deterministic end to end: metric names sorted, one ``# HELP`` /
    ``# TYPE`` pair per metric, series ordered by their sorted label
    key, histogram buckets ascending with ``+Inf`` last.
    """
    lines: List[str] = []
    for name in registry.names():
        inst = registry.get(name)
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"metric name {name!r} is not a valid "
                             f"Prometheus metric name")
        if inst.help:
            lines.append(f"# HELP {name} {escape_help(inst.help)}")
        lines.append(f"# TYPE {name} {inst.kind}")
        if isinstance(inst, (Counter, Gauge)):
            for row in inst.series():
                lines.append(f"{name}{_label_str(row['labels'])} "
                             f"{format_value(row['value'])}")
        elif isinstance(inst, Histogram):
            for row in inst.series():
                labels = row["labels"]
                for bucket in row["buckets"]:
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_str(labels, ('le', bucket['le']))} "
                        f"{bucket['count']}")
                lines.append(f"{name}_sum{_label_str(labels)} "
                             f"{format_value(row['sum'])}")
                lines.append(f"{name}_count{_label_str(labels)} "
                             f"{row['count']}")
        else:  # pragma: no cover - no other instrument kinds exist
            raise TypeError(f"unknown instrument kind {inst.kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json_snapshot(registry: MetricsRegistry,
                     indent: Optional[int] = 2) -> str:
    """The canonical JSON snapshot (same bytes for same values)."""
    return registry.to_json(indent=indent)


def write_metrics(path: str, registry: MetricsRegistry,
                  fmt: str = "json") -> None:
    """Write the registry to ``path`` in ``json`` or ``prom`` format."""
    if fmt not in ("json", "prom"):
        raise ValueError(f"metrics format must be 'json' or 'prom', "
                         f"got {fmt!r}")
    text = to_prometheus(registry) if fmt == "prom" \
        else to_json_snapshot(registry) + "\n"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


# ------------------------------------------------------------ validation


def _parse_labels(raw: str) -> Tuple[Dict[str, str], Optional[str]]:
    """Parse a ``k="v",...`` label body; returns (labels, error)."""
    labels: Dict[str, str] = {}
    pos = 0
    pair_re = re.compile(
        r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
        r'"(?P<value>(?:\\.|[^"\\])*)"\s*(?P<sep>,|$)')
    while pos < len(raw):
        m = pair_re.match(raw, pos)
        if m is None:
            return labels, f"malformed label pair at {raw[pos:pos+20]!r}"
        name = m.group("name")
        if name in labels:
            return labels, f"duplicate label name {name!r}"
        labels[name] = _unescape(m.group("value"))
        pos = m.end()
    return labels, None


def _base_metric(sample_name: str, typed: Dict[str, str]) -> str:
    """The declared metric a sample belongs to (histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        base = sample_name[:-len(suffix)] if sample_name.endswith(suffix) \
            else None
        if base and typed.get(base) == "histogram":
            return base
    return sample_name


def validate_exposition(text: str) -> List[str]:
    """Promtool-style format checks; returns a list of problems.

    Checks: sample lines parse; label names/values well-formed with no
    duplicates; every sample's metric carries a preceding ``# TYPE`` of
    a known kind; at most one HELP/TYPE per metric; no duplicate
    series; histogram buckets numerically ascending ending in ``+Inf``
    with non-decreasing cumulative counts, and ``_count`` equal to the
    ``+Inf`` bucket.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    helped: Dict[str, bool] = {}
    seen_series: set = set()
    # (metric, label-key) -> list of (le-float, count) in document order.
    buckets: Dict[Tuple[str, Tuple[Tuple[str, str], ...]],
                  List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                problems.append(f"line {lineno}: malformed HELP line")
                continue
            name = parts[2]
            if helped.get(name):
                problems.append(f"line {lineno}: second HELP for {name}")
            helped[name] = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                problems.append(f"line {lineno}: malformed TYPE line")
                continue
            _, _, name, kind = parts
            if name in typed:
                problems.append(f"line {lineno}: second TYPE for {name}")
            elif kind not in _EXPOSITION_KINDS + ("summary", "untyped"):
                problems.append(f"line {lineno}: unknown type {kind!r}")
            else:
                typed[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: unparsable sample {line!r}")
            continue
        name = m.group("name")
        labels, err = _parse_labels(m.group("labels") or "")
        if err:
            problems.append(f"line {lineno}: {err}")
            continue
        value_text = m.group("value")
        if value_text not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value_text)
            except ValueError:
                problems.append(
                    f"line {lineno}: bad sample value {value_text!r}")
                continue
        base = _base_metric(name, typed)
        if base not in typed:
            problems.append(f"line {lineno}: sample for {name} has no "
                            f"preceding # TYPE")
            continue
        series_key = (name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            problems.append(f"line {lineno}: duplicate series "
                            f"{name}{sorted(labels.items())}")
        seen_series.add(series_key)
        if typed.get(base) == "histogram":
            bare = tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le"))
            if name == base + "_bucket":
                le_text = labels.get("le")
                if le_text is None:
                    problems.append(
                        f"line {lineno}: {name} sample without le=")
                    continue
                le = float("inf") if le_text == "+Inf" else float(le_text)
                buckets.setdefault((base, bare), []).append(
                    (le, float(value_text)))
            elif name == base + "_count":
                counts[(base, bare)] = float(value_text)

    for (base, bare), rows in sorted(buckets.items()):
        les = [le for le, _ in rows]
        if les != sorted(les) or len(set(les)) != len(les):
            problems.append(f"{base}{dict(bare)}: bucket le values are "
                            f"not strictly ascending")
        if not les or not math.isinf(les[-1]):
            problems.append(f"{base}{dict(bare)}: buckets do not end "
                            f"with le=\"+Inf\"")
        vals = [v for _, v in rows]
        if any(b < a for a, b in zip(vals, vals[1:])):
            problems.append(f"{base}{dict(bare)}: cumulative bucket "
                            f"counts decrease")
        expected = counts.get((base, bare))
        if expected is not None and vals and vals[-1] != expected:
            problems.append(f"{base}{dict(bare)}: _count {expected:g} != "
                            f"+Inf bucket {vals[-1]:g}")
    return problems
