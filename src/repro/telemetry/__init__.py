"""Observability for simulation runs: metrics, spans, timelines.

The telemetry layer turns the fire-and-forget trace stream
(:mod:`repro.simcore.tracing`) into three queryable views of a run:

* :mod:`~repro.telemetry.metrics` — Prometheus-style ``Counter`` /
  ``Gauge`` / ``Histogram`` instruments in a per-run
  :class:`MetricsRegistry`, derived from trace records;
* :mod:`~repro.telemetry.spans` — hierarchical spans (experiment →
  workflow → job → storage op) with Chrome-trace / JSONL exporters;
* :mod:`~repro.telemetry.sampler` — fixed-cadence per-node utilization
  timelines (CPU, NIC, disk queue, storage-server load), rendered as
  ASCII heatmaps by :mod:`~repro.telemetry.render`.

Everything is inert when the run's trace collector is disabled, so
benchmark sweeps pay nothing.  See ``docs/observability.md``.
"""

from .export import (
    to_json_snapshot,
    to_prometheus,
    validate_exposition,
    write_metrics,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    install_trace_bridge,
)
from .render import render_heatmap, render_node_gantt, render_timeline_summary
from .sampler import Timeline, UtilizationSampler, attach_cluster, node_probes
from .spans import (
    Span,
    SpanBuilder,
    iter_spans,
    load_chrome_trace,
    spans_from_trace,
    summarize_chrome_trace,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "install_trace_bridge",
    "to_prometheus",
    "to_json_snapshot",
    "write_metrics",
    "validate_exposition",
    "Span",
    "SpanBuilder",
    "spans_from_trace",
    "iter_spans",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "load_chrome_trace",
    "summarize_chrome_trace",
    "Timeline",
    "UtilizationSampler",
    "attach_cluster",
    "node_probes",
    "render_heatmap",
    "render_node_gantt",
    "render_timeline_summary",
]
