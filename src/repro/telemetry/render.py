"""ASCII rendering of telemetry timelines and span Gantt charts.

Everything renders as plain text so timelines drop straight into
terminal output and ``benchmarks/output/`` artifacts, mirroring the
repo's table/bar-chart reporting style.  The heatmap makes saturation
effects legible at a glance::

    nfs server RPC utilization (5 s/column)
    nfs.rpc_util    |..:==++###%%%%%%%%%%%@@%%#+=:.|  max 0.98

Dark cells are high load; the Broadband NFS 2->4 node collapse shows
up as the 4-node row pinning dark for the entire run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .sampler import Timeline
from .spans import Span, iter_spans

#: Shade ramp, light to dark (10 levels).
SHADES = " .:-=+*#%@"


def _bucketize(times: Sequence[float], values: Sequence[float],
               t0: float, t1: float, width: int) -> List[Optional[float]]:
    """Average samples into ``width`` equal time buckets (None = no data)."""
    sums = [0.0] * width
    counts = [0] * width
    spanlen = max(t1 - t0, 1e-12)
    for t, v in zip(times, values):
        idx = min(width - 1, int((t - t0) / spanlen * width))
        sums[idx] += v
        counts[idx] += 1
    return [sums[i] / counts[i] if counts[i] else None for i in range(width)]


def _shade_row(buckets: List[Optional[float]], vmax: float) -> str:
    cells = []
    for b in buckets:
        if b is None:
            cells.append(" ")
        elif vmax <= 0:
            cells.append(SHADES[0])
        else:
            level = min(len(SHADES) - 1,
                        int(b / vmax * (len(SHADES) - 1) + 0.5))
            cells.append(SHADES[level])
    return "".join(cells)


def render_heatmap(timeline: Timeline,
                   series: Optional[Iterable[str]] = None,
                   width: int = 60,
                   title: str = "",
                   normalize: str = "series") -> str:
    """Render series as one shaded row each over a shared time axis.

    ``normalize='series'`` scales each row to its own max (shape
    comparison); ``'global'`` uses one scale across rows (magnitude
    comparison, e.g. the same signal at 2 vs 4 nodes).
    """
    if normalize not in ("series", "global"):
        raise ValueError("normalize must be 'series' or 'global'")
    names = list(series) if series is not None else timeline.names()
    if not names or not timeline.times:
        return (title + "\n" if title else "") + "(no samples)"
    t0, t1 = timeline.times[0], timeline.times[-1]
    label_w = max(len(n) for n in names) + 2
    per_col = (t1 - t0) / width if t1 > t0 else 0.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'':<{label_w}} t={t0:,.0f}..{t1:,.0f} s "
                 f"({per_col:,.1f} s/column)")
    rows = {n: _bucketize(timeline.times, timeline.values(n), t0, t1, width)
            for n in names}
    global_max = max((b for bs in rows.values() for b in bs
                      if b is not None), default=0.0)
    for n in names:
        buckets = rows[n]
        present = [b for b in buckets if b is not None]
        vmax = global_max if normalize == "global" \
            else (max(present) if present else 0.0)
        lines.append(f"{n:<{label_w}}|{_shade_row(buckets, vmax)}| "
                     f"max {max(present) if present else 0.0:,.3g}")
    return "\n".join(lines)


def render_timeline_summary(timeline: Timeline,
                            series: Optional[Iterable[str]] = None) -> str:
    """Mean/peak table over the sampled series."""
    names = list(series) if series is not None else timeline.names()
    if not names:
        return "(no samples)"
    label_w = max(len(n) for n in names) + 2
    lines = [f"{'series':<{label_w}}{'mean':>12}{'peak':>12}"]
    for n in names:
        lines.append(f"{n:<{label_w}}{timeline.mean(n):>12,.3g}"
                     f"{timeline.max(n):>12,.3g}")
    return "\n".join(lines)


def render_node_gantt(roots: Iterable[Span],
                      category: str = "job",
                      width: int = 60,
                      title: str = "") -> str:
    """Per-node occupancy Gantt from the span tree.

    One row per node; each column is shaded by how many spans of
    ``category`` (jobs by default) overlap that time slice, normalized
    to the busiest slice — a compact picture of load balance and
    stragglers.
    """
    spans = [s for s in iter_spans(roots)
             if s.category == category and s.end is not None]
    if not spans:
        return (title + "\n" if title else "") + f"(no {category} spans)"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    spanlen = max(t1 - t0, 1e-12)
    by_node: Dict[str, List[int]] = {}
    for s in spans:
        node = str(s.fields.get("node", "?"))
        counts = by_node.setdefault(node, [0] * width)
        lo = min(width - 1, int((s.start - t0) / spanlen * width))
        hi = min(width - 1, int((s.end - t0) / spanlen * width))
        for i in range(lo, hi + 1):
            counts[i] += 1
    vmax = max(max(c) for c in by_node.values())
    label_w = max(len(n) for n in by_node) + 2
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'':<{label_w}} t={t0:,.0f}..{t1:,.0f} s, "
                 f"shade = concurrent {category} spans (max {vmax})")
    for node in sorted(by_node):
        row = _shade_row([float(c) for c in by_node[node]], float(vmax))
        lines.append(f"{node:<{label_w}}|{row}|")
    return "\n".join(lines)
