"""Hierarchical span tracing on top of the trace stream.

A *span* is a named interval of simulation time with a category, a
parent, and free-form fields.  Spans nest into the hierarchy::

    experiment -> workflow -> job -> phase (read/compute/write)
                                       -> storage_op

:class:`SpanBuilder` is the producer API: it emits paired
``span/begin`` + ``span/end`` :class:`~repro.simcore.tracing.TraceRecord`
rows into the run's :class:`~repro.simcore.tracing.TraceCollector`, so
spans travel the exact same fire-and-forget pipe as every other
observation and cost nothing when tracing is disabled.

:func:`spans_from_trace` reconstructs the span tree from those record
pairs after the run.  Two exporters serialise the tree:

* :func:`to_chrome_trace` — Chrome trace-event JSON, loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev (spans become ``"X"``
  complete events, one timeline row per node);
* :func:`to_jsonl` — one span per line, for ad-hoc ``jq`` analysis.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, Iterable, Iterator, List,
                    Optional, Union)

from ..simcore.tracing import TraceCollector, TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..simcore.engine import Environment

#: Trace category that carries span begin/end pairs.
SPAN_CATEGORY = "span"
#: Sentinel id handed out by a disabled builder; ``end()`` ignores it.
DISABLED_SPAN = -1


@dataclass
class Span:
    """One reconstructed interval in the span tree."""

    span_id: int
    name: str
    category: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    fields: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Span length in sim seconds (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def closed(self) -> bool:
        """Whether a matching ``span/end`` was seen."""
        return self.end is not None

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (f"<Span {self.category}:{self.name} "
                f"[{self.start:.3f}, {self.end}]>")


class SpanBuilder:
    """Produces nested spans into a trace collector.

    Each builder keeps its own open-span stack, so create one builder
    per logically sequential activity (one per executing job, one per
    WMS run).  Concurrent simulation processes each hold their own
    builder and therefore cannot corrupt each other's nesting; spans
    from different builders are linked via explicit ``root_parent``
    ids instead.
    """

    def __init__(self, trace: TraceCollector, env: "Environment",
                 root_parent: Optional[int] = None) -> None:
        self.trace = trace
        self.env = env
        #: Parent id for spans opened with an empty stack (links this
        #: builder's tree under a span owned by another builder).
        self.root_parent = root_parent
        self._stack: List[int] = []

    @property
    def enabled(self) -> bool:
        """Whether spans will actually be recorded."""
        return self.trace.enabled

    @property
    def current(self) -> Optional[int]:
        """Innermost open span id (None when the stack is empty)."""
        return self._stack[-1] if self._stack else None

    def begin(self, category: str, name: str,
              parent_id: Optional[int] = None, **fields: Any) -> int:
        """Open a span; returns its id (pass to :meth:`end`)."""
        if not self.trace.enabled:
            return DISABLED_SPAN
        if parent_id is None:
            parent_id = self.current if self._stack else self.root_parent
        # Ids are allocated by the run's collector, not a process-wide
        # counter: a trace must not depend on how many spans *earlier*
        # runs in the same interpreter allocated (the determinism
        # sanitizer hash-chains span ids along with everything else).
        sid = self.trace.next_id()
        self.trace.emit(self.env.now, SPAN_CATEGORY, "begin",
                        span_id=sid, parent_id=parent_id,
                        span_category=category, name=name, **fields)
        self._stack.append(sid)
        return sid

    def end(self, span_id: int, **fields: Any) -> None:
        """Close a span opened by :meth:`begin`."""
        if span_id == DISABLED_SPAN or not self.trace.enabled:
            return
        # Normally span_id is the top of the stack; tolerate out-of-
        # order closes (e.g. an error path) by dropping inner entries.
        if span_id in self._stack:
            while self._stack and self._stack[-1] != span_id:
                self._stack.pop()
            self._stack.pop()
        self.trace.emit(self.env.now, SPAN_CATEGORY, "end",
                        span_id=span_id, **fields)

    @contextmanager
    def span(self, category: str, name: str,
             parent_id: Optional[int] = None, **fields: Any):
        """Context manager bracketing a span around a code region."""
        sid = self.begin(category, name, parent_id=parent_id, **fields)
        try:
            yield sid
        finally:
            self.end(sid)


# ----------------------------------------------------------- reconstruction

def spans_from_trace(
        trace: Union[TraceCollector, Iterable[TraceRecord]]) -> List[Span]:
    """Rebuild the span forest from ``span`` begin/end record pairs.

    Returns the root spans (no parent, or parent never seen), children
    nested and sorted by start time.  Spans missing their ``end`` (a
    crashed run, a VM never terminated) are clamped to the latest
    timestamp observed in the stream.
    """
    if isinstance(trace, TraceCollector):
        records = trace.select(SPAN_CATEGORY)
        last_time = trace.records[-1].time if trace.records else 0.0
    else:
        records = [r for r in trace if r.category == SPAN_CATEGORY]
        last_time = max((r.time for r in records), default=0.0)

    by_id: Dict[int, Span] = {}
    for rec in records:
        sid = rec.get("span_id")
        if sid is None:
            continue
        if rec.event == "begin":
            fields = {k: v for k, v in rec.fields.items()
                      if k not in ("span_id", "parent_id",
                                   "span_category", "name")}
            by_id[sid] = Span(
                span_id=sid,
                name=rec.get("name", str(sid)),
                category=rec.get("span_category", "span"),
                start=rec.time,
                parent_id=rec.get("parent_id"),
                fields=fields,
            )
        elif rec.event == "end":
            span = by_id.get(sid)
            if span is not None:
                span.end = rec.time
                extra = {k: v for k, v in rec.fields.items()
                         if k != "span_id"}
                span.fields.update(extra)
    roots: List[Span] = []
    for span in by_id.values():
        if span.end is None:
            span.end = max(last_time, span.start)
        parent = by_id.get(span.parent_id) if span.parent_id is not None \
            else None
        if parent is not None:
            parent.children.append(span)
        else:
            roots.append(span)
    for span in by_id.values():
        span.children.sort(key=lambda s: (s.start, s.span_id))
    roots.sort(key=lambda s: (s.start, s.span_id))
    return roots


def iter_spans(roots: Iterable[Span]) -> Iterator[Span]:
    """Flatten a span forest depth-first."""
    for root in roots:
        yield from root.walk()


# ----------------------------------------------------------------- export

#: Synthetic process id used for all events (one simulated cluster).
_PID = 1


def _thread_of(span: Span) -> str:
    """The timeline row a span renders on: its node, else its category."""
    node = span.fields.get("node")
    return str(node) if node is not None else f"({span.category})"


def to_chrome_trace(roots: Iterable[Span]) -> Dict[str, Any]:
    """Serialise spans as a Chrome trace-event document.

    Every span becomes a ``"X"`` (complete) event with microsecond
    timestamps.  Events are grouped onto one timeline row ("thread")
    per node so per-node activity reads like a Gantt chart; spans with
    no node (experiment, workflow) get a row per category.  The result
    round-trips through ``json.dumps`` and loads directly in
    ``chrome://tracing`` and Perfetto.
    """
    spans = list(iter_spans(roots))
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro-ec2 simulated cluster"},
    }]
    for span in spans:
        row = _thread_of(span)
        if row not in tids:
            tids[row] = len(tids) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": _PID,
                "tid": tids[row], "args": {"name": row},
            })
    for span in spans:
        end = span.end if span.end is not None else span.start
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": (end - span.start) * 1e6,
            "pid": _PID,
            "tid": tids[_thread_of(span)],
            "args": dict(span.fields),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, roots: Iterable[Span]) -> int:
    """Write the Chrome trace JSON; returns the number of span events."""
    doc = to_chrome_trace(roots)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return sum(1 for ev in doc["traceEvents"] if ev.get("ph") == "X")


def to_jsonl(roots: Iterable[Span]) -> str:
    """One JSON object per span, depth-first, newline-separated."""
    lines = []
    for span in iter_spans(roots):
        lines.append(json.dumps({
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "category": span.category,
            "name": span.name,
            "start": span.start,
            "end": span.end,
            "duration": span.duration,
            "fields": span.fields,
        }, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str, roots: Iterable[Span]) -> None:
    """Write the JSONL form of a span forest."""
    with open(path, "w") as fh:
        fh.write(to_jsonl(roots))


# ----------------------------------------------------------- summarising

def load_chrome_trace(path: str) -> Dict[str, Any]:
    """Load and structurally validate a Chrome trace-event document."""
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace-event document "
                         "(missing 'traceEvents')")
    if not isinstance(doc["traceEvents"], list):
        raise ValueError(f"{path}: 'traceEvents' must be a list")
    for ev in doc["traceEvents"]:
        if not isinstance(ev, dict) or "ph" not in ev:
            raise ValueError(f"{path}: malformed trace event: {ev!r}")
    return doc


def summarize_chrome_trace(doc: Dict[str, Any], top: int = 10) -> str:
    """Human-readable digest of a Chrome trace (the ``trace`` command)."""
    complete = [ev for ev in doc["traceEvents"] if ev.get("ph") == "X"]
    if not complete:
        return "empty trace (no complete events)"
    t0 = min(ev["ts"] for ev in complete)
    t1 = max(ev["ts"] + ev.get("dur", 0.0) for ev in complete)
    lines = [
        f"{len(complete)} spans covering "
        f"{(t1 - t0) / 1e6:,.1f} s of simulated time",
        "",
        f"{'category':<14}{'spans':>8}{'total s':>12}{'mean s':>10}",
    ]
    by_cat: Dict[str, List[float]] = {}
    for ev in complete:
        by_cat.setdefault(ev.get("cat", "?"), []).append(
            ev.get("dur", 0.0) / 1e6)
    for cat in sorted(by_cat, key=lambda c: -sum(by_cat[c])):
        durs = by_cat[cat]
        lines.append(f"{cat:<14}{len(durs):>8}{sum(durs):>12.1f}"
                     f"{sum(durs) / len(durs):>10.3f}")
    lines.append("")
    lines.append(f"top {top} longest spans:")
    for ev in sorted(complete, key=lambda e: -e.get("dur", 0.0))[:top]:
        lines.append(f"  {ev.get('dur', 0.0) / 1e6:>10.2f} s  "
                     f"{ev.get('cat', '?')}:{ev.get('name', '?')}")
    return "\n".join(lines)
