"""Per-node utilization timelines sampled on a sim-time cadence.

A :class:`UtilizationSampler` is a simulation process that wakes on a
fixed interval and evaluates a set of *probes* — zero-argument callables
returning a float — recording every reading into a columnar
:class:`Timeline`.  Probe factories cover the paper's interesting
signals:

* :func:`node_probes` — per-node CPU-core busy fraction, memory
  pressure, NIC throughput (instantaneous flow rates), and ephemeral
  disk queue depth / utilization;
* storage backends advertise their own server-side probes through
  :meth:`~repro.storage.base.StorageSystem.telemetry_probes` (NFS RPC
  queue and service utilization, S3 front-end throughput, ...).

This is what makes the Broadband NFS collapse *visible*: at 2 workers
the NFS server's RPC utilization hovers mid-range, at 4 workers it
pins near 1.0 for the whole run — the same signal the paper inferred
from makespans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance
    from ..simcore.engine import Environment
    from ..storage.base import StorageSystem

#: A probe: (series name, callable returning the current reading).
Probe = Tuple[str, Callable[[], float]]

#: Default sampling cadence, sim seconds.
DEFAULT_INTERVAL = 5.0


class Timeline:
    """Columnar store of sampled series (shared time axis)."""

    def __init__(self) -> None:
        self.times: List[float] = []
        self.series: Dict[str, List[float]] = {}

    def add_sample(self, time: float, values: Dict[str, float]) -> None:
        """Append one synchronized reading of every series."""
        self.times.append(time)
        for name, value in values.items():
            col = self.series.get(name)
            if col is None:
                # A series added mid-run backfills zeros for alignment.
                col = self.series[name] = [0.0] * (len(self.times) - 1)
            col.append(value)
        for name, col in self.series.items():
            if len(col) < len(self.times):
                col.append(0.0)

    def __len__(self) -> int:
        return len(self.times)

    def names(self) -> List[str]:
        """All series names, sorted."""
        return sorted(self.series)

    def values(self, name: str) -> List[float]:
        """The sampled values of one series."""
        return self.series.get(name, [])

    def mean(self, name: str, t0: Optional[float] = None,
             t1: Optional[float] = None) -> float:
        """Mean of a series over ``[t0, t1]`` (whole run by default).

        This is the "sustained load" statistic used by the regression
        tests: time-windowed so ramp-up/drain tails can be excluded.
        """
        vals = [v for t, v in zip(self.times, self.values(name))
                if (t0 is None or t >= t0) and (t1 is None or t <= t1)]
        return sum(vals) / len(vals) if vals else 0.0

    def max(self, name: str) -> float:
        """Peak of a series (0 when empty)."""
        vals = self.values(name)
        return max(vals) if vals else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form: time axis plus every series."""
        return {"times": list(self.times),
                "series": {k: list(v) for k, v in self.series.items()}}


class RateProbe:
    """Wraps a cumulative counter into a per-second rate reading."""

    def __init__(self, fn: Callable[[], float],
                 clock: Callable[[], float]) -> None:
        self._fn = fn
        self._clock = clock
        self._last_value = fn()
        self._last_time = clock()

    def __call__(self) -> float:
        now = self._clock()
        value = self._fn()
        dt = now - self._last_time
        rate = (value - self._last_value) / dt if dt > 0 else 0.0
        self._last_value = value
        self._last_time = now
        return rate


class UtilizationSampler:
    """Samples registered probes every ``interval`` sim seconds."""

    def __init__(self, env: "Environment",
                 interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.env = env
        self.interval = interval
        self.timeline = Timeline()
        self._probes: List[Probe] = []
        self._stopped = False
        self._started = False

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge-style probe under ``name``."""
        self._probes.append((name, fn))

    def add_rate_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a probe over a cumulative counter; the recorded
        series is the counter's per-second rate between samples."""
        self._probes.append((name, RateProbe(fn, lambda: self.env.now)))

    def add_probes(self, probes: Sequence[Probe]) -> None:
        """Register many ``(name, fn)`` probes at once."""
        self._probes.extend(probes)

    @property
    def n_probes(self) -> int:
        """Registered probe count."""
        return len(self._probes)

    def start(self) -> None:
        """Spawn the sampling process (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._loop(), name="telemetry-sampler")

    def stop(self) -> None:
        """Stop sampling after the current tick."""
        self._stopped = True

    def sample_now(self) -> None:
        """Take one sample immediately (also used by the loop)."""
        values = {name: float(fn()) for name, fn in self._probes}
        self.timeline.add_sample(self.env.now, values)

    def _loop(self) -> Generator:
        while not self._stopped:
            self.sample_now()
            yield self.env.timeout(self.interval)


# ------------------------------------------------------------ factories

def node_probes(node: "VMInstance",
                clock: Callable[[], float]) -> List[Probe]:
    """The standard per-node probe set.

    ``<node>.cpu``            busy fraction of Condor slots (0..1)
    ``<node>.mem``            claimed fraction of physical memory (0..1)
    ``<node>.nic_tx_bps``     instantaneous transmit throughput, bytes/s
    ``<node>.nic_rx_bps``     instantaneous receive throughput, bytes/s
    ``<node>.disk_queue``     block-device operations in flight
    ``<node>.disk_util``      delivered disk service seconds per second
    """
    name = node.name

    def nic_rate(link) -> Callable[[], float]:
        return lambda: sum(flow.rate for flow in link._flows)

    return [
        (f"{name}.cpu", lambda: node.cpu_utilization),
        (f"{name}.mem",
         lambda: 1.0 - node.memory.level / node.memory.capacity),
        (f"{name}.nic_tx_bps", nic_rate(node.nic.tx)),
        (f"{name}.nic_rx_bps", nic_rate(node.nic.rx)),
        (f"{name}.disk_queue", lambda: float(node.disk.active_ops)),
        (f"{name}.disk_util",
         RateProbe(lambda: node.disk.busy_seconds, clock)),
    ]


def attach_cluster(sampler: UtilizationSampler,
                   nodes: Sequence["VMInstance"],
                   storage: Optional["StorageSystem"] = None) -> None:
    """Wire the standard probe set for a cluster onto ``sampler``.

    ``nodes`` should include service nodes (the dedicated NFS server)
    so server-side saturation is observable; ``storage`` contributes
    whatever backend-specific probes it advertises.
    """
    clock = lambda: sampler.env.now  # noqa: E731
    for node in nodes:
        sampler.add_probes(node_probes(node, clock))
    if storage is not None:
        sampler.add_probes(storage.telemetry_probes(clock))
