"""Prometheus-style metric instruments for simulation runs.

A :class:`MetricsRegistry` holds named :class:`Counter`, :class:`Gauge`
and :class:`Histogram` instruments.  Every instrument supports labels
(``node=``, ``storage=``, ``transformation=`` ...): each distinct label
combination gets its own time series, exactly like Prometheus children.

The registry is threaded through :func:`repro.experiments.run_experiment`
alongside the :class:`~repro.simcore.tracing.TraceCollector`; the
standard instruments are derived from the trace stream by
:func:`install_trace_bridge`, so subsystems need no direct registry
dependency.  ``snapshot()`` produces the plain-dict form that feeds
result tables and ``--metrics-out`` JSON.

A disabled registry (``MetricsRegistry(enabled=False)``, or the shared
:data:`NULL_REGISTRY`) hands out inert instruments whose mutators
return immediately — benchmarks pay near-zero overhead.

**Thread safety.**  The default registry is single-threaded: the
simulation kernel owns its registry outright, and taking a lock on the
trace bridge's hot path would tax every kernel run for a race it can
never have.  The multi-threaded *service* stack constructs its
registries with ``thread_safe=True``: one shared lock then serializes
every mutator (the unguarded ``d[k] = d.get(k, 0) + v`` read-modify-
write loses updates under concurrent ``inc``).  The lock is built by
an injectable ``lock_factory`` — the service passes
:func:`repro.lint.lockwatch.new_lock` so the runtime lock witness sees
it; this module deliberately never imports the lint package (the lint
package's determinism checks import the experiment stack, which
imports telemetry — a hard import would be a cycle).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left, insort
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..simcore.tracing import TraceCollector, TraceRecord

#: Canonical sorted-tuple form of a label set (hashable dict key).
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    # Hot path: every inc/set/observe canonicalises its labels.  Most
    # call sites pass zero or one label — skip the sort for those.
    if len(labels) < 2:
        if not labels:
            return ()
        k, v = next(iter(labels.items()))
        return ((k, str(v)),)
    items = [(k, str(v)) for k, v in labels.items()]
    items.sort()
    return tuple(items)


def _key_dict(key: LabelKey) -> Dict[str, str]:
    return dict(key)


class Instrument:
    """Common state of a named, labelled instrument.

    ``lock`` is the registry's shared mutator lock (None on the
    single-threaded kernel path).  Mutators branch on it rather than
    unconditionally entering a no-op context manager so the kernel hot
    path stays a plain dict update.
    """

    kind = "abstract"

    def __init__(self, name: str, help: str = "", enabled: bool = True,
                 lock: Optional[Any] = None) -> None:
        self.name = name
        self.help = help
        self.enabled = enabled
        self._lock = lock

    def label_sets(self) -> List[Dict[str, str]]:
        """All label combinations observed so far."""
        raise NotImplementedError

    def series(self) -> List[Dict[str, Any]]:
        """Snapshot rows: one dict per label combination."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class Counter(Instrument):
    """A monotonically increasing count (ops, bytes, retries)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", enabled: bool = True,
                 lock: Optional[Any] = None) -> None:
        super().__init__(name, help, enabled, lock)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled child."""
        if not self.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        key = _label_key(labels)
        lock = self._lock
        if lock is None:
            self._values[key] = self._values.get(key, 0.0) + amount
        else:
            with lock:
                self._values[key] = self._values.get(key, 0.0) + amount

    def inc_key(self, key: LabelKey, amount: float = 1.0) -> None:
        """Fast-path ``inc`` taking an already-canonical label key.

        ``key`` must be sorted ``((name, str_value), ...)`` — exactly
        what :func:`_label_key` produces.  Hot subscribers (the trace
        bridge) build these tuples directly to skip the kwargs dict
        and canonicalisation on every record.
        """
        if not self.enabled:
            return
        lock = self._lock
        if lock is None:
            self._values[key] = self._values.get(key, 0.0) + amount
        else:
            with lock:
                self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one labelled child (0 if never touched)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label combinations."""
        return sum(self._values.values())

    def label_sets(self) -> List[Dict[str, str]]:
        return [_key_dict(k) for k in self._values]

    def series(self) -> List[Dict[str, Any]]:
        return [{"labels": _key_dict(k), "value": v}
                for k, v in sorted(self._values.items())]


class Gauge(Instrument):
    """A value that can go up and down (queue depth, cached bytes)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", enabled: bool = True,
                 lock: Optional[Any] = None) -> None:
        super().__init__(name, help, enabled, lock)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Overwrite the labelled child's value."""
        if not self.enabled:
            return
        key = _label_key(labels)
        lock = self._lock
        if lock is None:
            self._values[key] = float(value)
        else:
            with lock:
                self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (may be negative) to the labelled child."""
        if not self.enabled:
            return
        key = _label_key(labels)
        lock = self._lock
        if lock is None:
            self._values[key] = self._values.get(key, 0.0) + amount
        else:
            with lock:
                self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        """Subtract ``amount`` from the labelled child."""
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        """Current value of one labelled child (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def label_sets(self) -> List[Dict[str, str]]:
        return [_key_dict(k) for k in self._values]

    def series(self) -> List[Dict[str, Any]]:
        return [{"labels": _key_dict(k), "value": v}
                for k, v in sorted(self._values.items())]


#: Default histogram buckets, tuned for seconds-scale durations.
DEFAULT_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 25.0,
                   100.0, 500.0, 2500.0)

#: Quantiles reported in snapshots.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


class _HistChild:
    """Per-label-set histogram state: fixed buckets + sorted reservoir."""

    __slots__ = ("bucket_counts", "count", "sum", "sorted_values")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0
        self.sorted_values: List[float] = []


class Histogram(Instrument):
    """Fixed-bucket histogram with an exact quantile summary.

    Buckets are cumulative upper bounds (Prometheus-style, with an
    implicit ``+Inf``).  Observations are also kept in a sorted list so
    ``quantile()`` is exact — simulation runs observe at most a few
    hundred thousand values, so the reservoir stays cheap.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 enabled: bool = True, lock: Optional[Any] = None) -> None:
        super().__init__(name, help, enabled, lock)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: Tuple[float, ...] = bounds
        self._children: Dict[LabelKey, _HistChild] = {}

    def _child(self, labels: Dict[str, Any]) -> _HistChild:
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _HistChild(len(self.buckets))
        return child

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation in the labelled child."""
        if not self.enabled:
            return
        self.observe_key(value, _label_key(labels))

    def observe_key(self, value: float, key: LabelKey) -> None:
        """Fast-path ``observe`` taking an already-canonical label key
        (see :meth:`Counter.inc_key`)."""
        if not self.enabled:
            return
        lock = self._lock
        if lock is None:
            self._observe_locked(value, key)
        else:
            with lock:
                self._observe_locked(value, key)

    def _observe_locked(self, value: float, key: LabelKey) -> None:
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _HistChild(len(self.buckets))
        idx = bisect_left(self.buckets, value)
        child.bucket_counts[idx] += 1
        child.count += 1
        child.sum += value
        insort(child.sorted_values, value)

    # -- per-child accessors ----------------------------------------------

    def count(self, **labels: Any) -> int:
        """Observations recorded for one labelled child."""
        child = self._children.get(_label_key(labels))
        return child.count if child else 0

    def sum_(self, **labels: Any) -> float:
        """Sum of observations for one labelled child."""
        child = self._children.get(_label_key(labels))
        return child.sum if child else 0.0

    def mean(self, **labels: Any) -> float:
        """Mean observation (0 when empty)."""
        child = self._children.get(_label_key(labels))
        if not child or child.count == 0:
            return 0.0
        return child.sum / child.count

    def quantile(self, q: float, **labels: Any) -> float:
        """Exact ``q``-quantile (nearest-rank; 0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        child = self._children.get(_label_key(labels))
        if not child or not child.sorted_values:
            return 0.0
        vals = child.sorted_values
        rank = min(len(vals) - 1, max(0, int(round(q * (len(vals) - 1)))))
        return vals[rank]

    def bucket_counts(self, **labels: Any) -> Dict[str, int]:
        """Cumulative counts per upper bound (Prometheus ``le`` style)."""
        return dict(self.bucket_rows(**labels))

    def bucket_rows(self, **labels: Any) -> List[Tuple[str, int]]:
        """Cumulative ``(le, count)`` pairs in ascending bucket order.

        The ordered form feeds the exporters: a plain dict would be
        re-sorted lexicographically by ``json.dumps(sort_keys=True)``,
        scrambling ``"+Inf"`` and ``"25"`` in between numeric bounds.
        """
        child = self._children.get(_label_key(labels))
        raw = child.bucket_counts if child \
            else [0] * (len(self.buckets) + 1)
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.buckets, raw):
            running += n
            out.append((f"{bound:g}", running))
        out.append(("+Inf", running + raw[-1]))
        return out

    def label_sets(self) -> List[Dict[str, str]]:
        return [_key_dict(k) for k in self._children]

    def series(self) -> List[Dict[str, Any]]:
        rows = []
        for key, child in sorted(self._children.items()):
            labels = _key_dict(key)
            rows.append({
                "labels": labels,
                "count": child.count,
                "sum": child.sum,
                "mean": child.sum / child.count if child.count else 0.0,
                # Ordered list-of-objects so ascending bucket order
                # survives every JSON serializer (sort_keys would
                # lexicographically scramble a dict keyed by bound).
                "buckets": [{"le": le, "count": n}
                            for le, n in self.bucket_rows(**labels)],
                "quantiles": {f"p{int(q * 100)}": self.quantile(q, **labels)
                              for q in SUMMARY_QUANTILES},
            })
        return rows


class MetricsRegistry:
    """A per-run namespace of instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for an
    existing name returns the existing instrument (and raises if the
    kind differs), so independent subsystems can share series safely.

    ``thread_safe=True`` builds one shared lock that serializes
    instrument creation and every mutator; ``lock_factory`` (called as
    ``lock_factory("metrics.registry")``) lets the service inject a
    witness-instrumented lock without telemetry importing the lint
    package.  The default stays lock-free for the kernel (see module
    docstring).
    """

    def __init__(self, enabled: bool = True, thread_safe: bool = False,
                 lock_factory: Optional[Callable[[str], Any]] = None) -> None:
        self.enabled = enabled
        self.thread_safe = thread_safe
        if thread_safe:
            self._lock = (lock_factory("metrics.registry")
                          if lock_factory is not None else threading.Lock())
        else:
            self._lock = None
        self._instruments: Dict[str, Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Any:
        lock = self._lock
        if lock is None:
            return self._get_or_create_locked(cls, name, help, **kwargs)
        with lock:
            return self._get_or_create_locked(cls, name, help, **kwargs)

    def _get_or_create_locked(self, cls, name: str, help: str,
                              **kwargs) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")
            return existing
        inst = cls(name, help=help, enabled=self.enabled, lock=self._lock,
                   **kwargs)
        self._instruments[name] = inst
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create a histogram."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Instrument]:
        """Look up an instrument by name (None if absent)."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of every instrument (feeds tables and JSON)."""
        out: Dict[str, Any] = {}
        for name in self.names():
            inst = self._instruments[name]
            out[name] = {
                "kind": inst.kind,
                "help": inst.help,
                "series": inst.series(),
            }
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def summary_rows(self) -> List[Dict[str, Any]]:
        """Flat rows (metric, labels, value) for text tables / CSV."""
        rows = []
        for name in self.names():
            inst = self._instruments[name]
            for entry in inst.series():
                labels = ",".join(f"{k}={v}" for k, v in
                                  sorted(entry["labels"].items()))
                value = entry.get("value", entry.get("sum", 0.0))
                rows.append({"metric": name, "kind": inst.kind,
                             "labels": labels, "value": value})
        return rows


#: Shared inert registry for benchmarks (mirrors ``NULL_COLLECTOR``).
NULL_REGISTRY = MetricsRegistry(enabled=False)


# --------------------------------------------------------------- bridge

def install_trace_bridge(registry: MetricsRegistry,
                         trace: TraceCollector) -> None:
    """Derive the standard instrument catalog from the trace stream.

    Subscribes to ``trace`` and folds every record into counters and
    histograms, labelled by node / storage system / transformation.
    See ``docs/observability.md`` for the full catalog.
    """
    if not (registry.enabled and trace.enabled):
        return

    tasks_started = registry.counter(
        "tasks_started_total", "task attempts begun, by node/executable")
    tasks_completed = registry.counter(
        "tasks_completed_total", "task attempts finished, by node")
    tasks_failed = registry.counter(
        "tasks_failed_total", "task attempts crashed, by node")
    task_duration = registry.histogram(
        "task_duration_seconds", "wall-clock task runtime, by executable")
    storage_ops = registry.counter(
        "storage_ops_total", "storage reads/writes, by system and locality")
    storage_bytes = registry.counter(
        "storage_bytes_total", "bytes through the storage layer")
    disk_ops = registry.counter(
        "disk_ops_total", "block-device operations, by device")
    disk_bytes = registry.counter(
        "disk_bytes_total", "bytes through block devices")
    disk_first_writes = registry.counter(
        "disk_first_writes_total",
        "writes that paid the ephemeral first-write penalty")
    net_transfers = registry.counter(
        "net_transfers_total", "network flows, by endpoint pair")
    net_bytes = registry.counter(
        "net_bytes_total", "bytes moved over the fabric, by endpoint pair")
    schedd_submits = registry.counter(
        "schedd_submits_total", "jobs queued at the schedd")
    vm_terminations = registry.counter(
        "vm_terminations_total", "instances terminated")
    vm_crashes = registry.counter(
        "vm_crashes_total", "instances killed by fault injection")
    fault_events = registry.counter(
        "fault_events_total", "injected faults and recovery actions, "
                              "by kind")
    storage_retry_delay = registry.histogram(
        "storage_retry_delay_seconds",
        "backoff delays taken by storage clients before retrying")

    # The bridge sees every trace record (hundreds of thousands per
    # cell), so it builds canonical label keys directly — tuple labels
    # pre-sorted by name, values already strings — and feeds them to
    # the ``*_key`` fast paths, skipping the kwargs/canonicalisation
    # machinery of the public ``inc``/``observe``.
    def on_record(rec: TraceRecord) -> None:
        cat, ev, f = rec.category, rec.event, rec.fields
        if cat == "task":
            node = f.get("node", "?")
            if ev == "start":
                tasks_started.inc_key(
                    (("node", node),
                     ("transformation", f.get("transformation", "?"))))
            elif ev == "end":
                tasks_completed.inc_key((("node", node),))
                task_duration.observe_key(
                    f.get("duration", 0.0),
                    (("transformation", f.get("transformation", "?")),))
            elif ev == "failed":
                tasks_failed.inc_key((("node", node),))
        elif cat == "storage" and (ev == "read" or ev == "write"):
            system = f.get("system", "?")
            remote = "remote" if f.get("remote") else "local"
            storage_ops.inc_key(
                (("locality", remote), ("op", ev), ("storage", system)))
            storage_bytes.inc_key((("op", ev), ("storage", system)),
                                  f.get("nbytes", 0.0))
        elif cat == "disk":
            disk = f.get("disk", "?")
            if ev == "read" or ev == "write":
                key = (("disk", disk), ("op", ev))
                disk_ops.inc_key(key)
                disk_bytes.inc_key(key, f.get("nbytes", 0.0))
                if ev == "write" and f.get("first"):
                    disk_first_writes.inc_key((("disk", disk),))
        elif cat == "net" and ev == "transfer":
            key = (("dst", f.get("dst", "?")), ("src", f.get("src", "?")))
            net_transfers.inc_key(key)
            net_bytes.inc_key(key, f.get("nbytes", 0.0))
        elif cat == "schedd" and ev == "submit":
            schedd_submits.inc_key(())
        elif cat == "vm" and ev == "terminate":
            vm_terminations.inc_key(())
        elif cat == "vm" and ev == "crash":
            vm_crashes.inc_key((("node", f.get("node", "?")),))
        elif cat == "fault":
            fault_events.inc_key((("kind", ev),))
            if ev == "storage_retry":
                storage_retry_delay.observe_key(
                    f.get("delay", 0.0), (("op", f.get("op", "?")),))

    trace.subscribe(on_record)
