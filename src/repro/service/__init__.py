"""Simulation-as-a-service: job API, result store, cell cache, worker.

This package stands the deterministic simulator up as a long-running
service (the ROADMAP's "serve the paper's answers under sustained
traffic" direction):

* :mod:`~repro.service.store` — SQLite-backed job queue + result
  store behind a thin adapter interface (schema versioning, WAL mode,
  Postgres-shaped SQL).
* :mod:`~repro.service.cache` — content-addressed cell cache keyed by
  ``ExperimentConfig.digest()``: repeated sweeps are O(new cells).
* :mod:`~repro.service.queue` — leased job queue with crash recovery
  (an expired lease re-queues the job instead of losing it).
* :mod:`~repro.service.worker` — supervisor that drains the queue
  onto :func:`repro.experiments.run_sweep`.
* :mod:`~repro.service.api` — stdlib-only WSGI REST API (submit /
  status / events / results / ``/metrics``).
* :mod:`~repro.service.client` — ``urllib``-based client used by the
  ``repro-ec2 submit``/``status``/``fetch`` CLI trio.
* :mod:`~repro.service.resilience` — host-side retry policy, circuit
  breaker, and deadline primitives the layers above share.
* :mod:`~repro.service.chaos` — seeded fault injectors (flaky store,
  WSGI faults, worker kills) for the chaos tests and smoke script.

Like :mod:`repro.observe`, this package is host-side orchestration:
it may read the wall clock (lint fence ``HOST_OBSERVE_PREFIXES``),
but nothing in it can feed values back into simulation state — cache
hits are served from lossless serialized results of earlier runs, and
misses run through the unmodified deterministic runner.
"""

from .api import ServiceApp, serve
from .cache import CellCache
from .chaos import ChaosMiddleware, ChaosSchedule, ChaosSpec, \
    FlakySQLiteStore, WorkerKilled, WorkerKiller, chaos_service
from .queue import JOB_KINDS, JOB_STATES, JobQueue, JobRow
from .resilience import CircuitBreaker, Deadline, DeadlineExceeded, \
    HostRetryPolicy
from .store import SCHEMA_VERSION, SQLiteStore, open_store
from .worker import ServiceWorker

__all__ = [
    "CellCache",
    "ChaosMiddleware",
    "ChaosSchedule",
    "ChaosSpec",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FlakySQLiteStore",
    "HostRetryPolicy",
    "JOB_KINDS",
    "JOB_STATES",
    "JobQueue",
    "JobRow",
    "SCHEMA_VERSION",
    "SQLiteStore",
    "ServiceApp",
    "ServiceWorker",
    "WorkerKilled",
    "WorkerKiller",
    "chaos_service",
    "open_store",
    "serve",
]
