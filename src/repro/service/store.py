"""SQLite-backed job + result store behind a thin adapter interface.

One :class:`SQLiteStore` owns one database file (or an in-memory
database for tests) holding four tables:

``results``
    Full serialized :class:`~repro.experiments.runner.ExperimentResult`
    payloads, keyed by the scenario's content digest
    (``ExperimentConfig.digest()``).  This is the content-addressed
    half of the service: equal digest ⇒ equal scenario ⇒ (by the
    determinism contract) interchangeable payload, so writes are
    idempotent ``ON CONFLICT DO NOTHING``.
``jobs``
    The work queue (see :mod:`repro.service.queue` for the leasing
    protocol built on top).
``job_events``
    The per-job schema-v1 JSONL event log (one row per line), written
    live by the worker's :class:`~repro.observe.SweepMonitor` sink and
    re-served over HTTP by the API's streaming endpoint.
``job_results``
    Per-cell outcome of one job: result digest (joinable to
    ``results``), cache-hit flag, or the error string.

Design constraints:

* **Schema versioning.**  ``schema_info`` records the applied version;
  :data:`MIGRATIONS` is an append-only list and ``_migrate`` replays
  whatever is missing, so a v1 database opened by v2 code upgrades in
  place and a *newer* database fails loudly instead of corrupting.
* **WAL mode** so the API's readers never block the worker's writes
  (best-effort: in-memory and some network filesystems don't support
  WAL; the store falls back silently because correctness never depends
  on the journal mode).
* **Postgres-shaped SQL.**  Standard types (``TEXT`` / ``BIGINT`` /
  ``DOUBLE PRECISION``), ``INSERT ... ON CONFLICT``, no SQLite-only
  syntax outside the ``PRAGMA`` block — a Postgres adapter can reuse
  every statement by swapping ``?`` placeholders for ``%s``.
* **Thread safety.**  One shared connection guarded by an RLock (plus
  a generous ``busy_timeout`` for multi-process use): N concurrent
  HTTP submitters serialize on the lock instead of racing into
  ``database is locked`` errors.
* **Transient-error retries.**  ``database is locked`` can still
  surface despite the busy timeout (a second process mid-write, a
  network filesystem hiccup, an injected chaos fault); every statement
  runs under a :class:`~repro.service.resilience.HostRetryPolicy`
  (bounded exponential backoff + seeded jitter) so a transient
  contention blip retries instead of failing the job.  All raw
  statements go through the single :meth:`SQLiteStore._db_execute`
  seam, which is also where the chaos harness injects faults *below*
  the retry layer.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..lint.lockwatch import new_lock, new_rlock
from ..observe.hostclock import wall_now
from ..telemetry.metrics import MetricsRegistry
from .resilience import HostRetryPolicy, is_transient_sqlite_error

#: Bump (and append a migration) whenever the schema changes.
SCHEMA_VERSION = 1

#: Append-only migration list: ``(version, [statements...])``.  A
#: database at version N replays every entry with version > N, in
#: order, inside one transaction per entry.
MIGRATIONS: List[Tuple[int, List[str]]] = [
    (1, [
        """
        CREATE TABLE results (
            digest      TEXT PRIMARY KEY,
            label       TEXT NOT NULL,
            created_ts  DOUBLE PRECISION NOT NULL,
            payload     TEXT NOT NULL
        )
        """,
        """
        CREATE TABLE jobs (
            id               INTEGER PRIMARY KEY,
            kind             TEXT NOT NULL,
            state            TEXT NOT NULL DEFAULT 'queued',
            payload          TEXT NOT NULL,
            submitted_ts     DOUBLE PRECISION NOT NULL,
            started_ts       DOUBLE PRECISION,
            finished_ts      DOUBLE PRECISION,
            lease_owner      TEXT,
            lease_expires_ts DOUBLE PRECISION,
            attempts         BIGINT NOT NULL DEFAULT 0,
            error            TEXT,
            n_cells          BIGINT NOT NULL DEFAULT 0,
            n_done           BIGINT NOT NULL DEFAULT 0,
            n_failed         BIGINT NOT NULL DEFAULT 0,
            n_cache_hits     BIGINT NOT NULL DEFAULT 0
        )
        """,
        """
        CREATE INDEX idx_jobs_state ON jobs (state, id)
        """,
        """
        CREATE TABLE job_events (
            job_id  BIGINT NOT NULL,
            seq     BIGINT NOT NULL,
            line    TEXT NOT NULL,
            PRIMARY KEY (job_id, seq)
        )
        """,
        """
        CREATE TABLE job_results (
            job_id     BIGINT NOT NULL,
            cell_index BIGINT NOT NULL,
            label      TEXT NOT NULL,
            digest     TEXT,
            cached     BIGINT NOT NULL DEFAULT 0,
            error      TEXT,
            PRIMARY KEY (job_id, cell_index)
        )
        """,
    ]),
]


class SQLiteStore:
    """The SQLite adapter (see module docstring for the contract)."""

    def __init__(self, path: str = ":memory:",
                 metrics: Optional[MetricsRegistry] = None,
                 retry: Optional[HostRetryPolicy] = None) -> None:
        self.path = path
        # The store's registry is mutated from every worker and HTTP
        # thread, so the default is the thread-safe flavour, with locks
        # built through the lockwatch seam (inert unless a watcher is
        # installed — see repro.lint.lockwatch).
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            thread_safe=True, lock_factory=new_lock)
        self._retry = retry if retry is not None else HostRetryPolicy(
            name="store", max_attempts=6, base_delay=0.01, max_delay=0.25,
            metrics=self.metrics)
        self._lock = new_rlock("store.conn")
        self._conn = sqlite3.connect(
            path, check_same_thread=False, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            # SQLite-specific tuning lives here and only here; every
            # statement below this block is portable SQL.
            self._db_execute("PRAGMA busy_timeout = 30000")
            self._db_execute("PRAGMA journal_mode = WAL")
            self._db_execute("PRAGMA synchronous = NORMAL")
        self._migrate()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- low-level access (used by the queue layer) -------------------------

    def _db_execute(self, sql: str, params: Sequence[Any] = ()
                    ) -> sqlite3.Cursor:
        """The single raw-statement seam (chaos wrappers override it)."""
        return self._conn.execute(sql, params)

    def execute(self, sql: str, params: Sequence[Any] = ()
                ) -> sqlite3.Cursor:
        """Run one statement under the store lock; autocommits.

        Transient contention errors (``database is locked``) retry
        under the store's :class:`HostRetryPolicy`; the lock is
        released between attempts so a competing writer can finish.
        """
        def _once() -> sqlite3.Cursor:
            with self._lock:
                cur = self._db_execute(sql, params)
                self._conn.commit()
                return cur
        return self._retry.call(
            _once, op="store.execute", retry_on=(sqlite3.OperationalError,),
            retry_if=is_transient_sqlite_error)

    def query(self, sql: str, params: Sequence[Any] = ()
              ) -> List[sqlite3.Row]:
        """Run one read-only statement; returns all rows (retried)."""
        def _once() -> List[sqlite3.Row]:
            with self._lock:
                return self._db_execute(sql, params).fetchall()
        return self._retry.call(
            _once, op="store.query", retry_on=(sqlite3.OperationalError,),
            retry_if=is_transient_sqlite_error)

    def transaction(self) -> "_Transaction":
        """``with store.transaction():`` — atomic multi-statement block.

        Holds the store lock for the duration, so a lease decision
        (read candidate + mark running) is a single atomic unit even
        with many worker threads.  Statements inside the block are
        *not* individually retried — use :meth:`run_in_transaction` to
        retry the whole unit atomically.
        """
        return _Transaction(self)

    def run_in_transaction(self, fn: Callable[["_TxnConn"], Any],
                           op: str = "store.txn") -> Any:
        """Run ``fn(conn)`` inside a transaction, retried as a unit.

        A transient contention error anywhere in the block (including
        the final commit) rolls the whole transaction back and re-runs
        ``fn`` from scratch, so multi-statement decisions like a queue
        lease stay atomic under retry.
        """
        def _once() -> Any:
            with self.transaction() as conn:
                return fn(conn)
        return self._retry.call(
            _once, op=op, retry_on=(sqlite3.OperationalError,),
            retry_if=is_transient_sqlite_error)

    # -- schema -------------------------------------------------------------

    def schema_version(self) -> int:
        """The migration version this database is at."""
        rows = self.query("SELECT version FROM schema_info")
        return int(rows[0]["version"]) if rows else 0

    def _migrate(self) -> None:
        with self._lock:
            self._db_execute(
                "CREATE TABLE IF NOT EXISTS schema_info "
                "(version BIGINT NOT NULL)")
            rows = self._db_execute(
                "SELECT version FROM schema_info").fetchall()
            current = int(rows[0]["version"]) if rows else 0
            if current > SCHEMA_VERSION:
                raise ValueError(
                    f"database {self.path!r} is at schema {current}, "
                    f"newer than this code ({SCHEMA_VERSION}); refusing "
                    f"to open")
            for version, statements in MIGRATIONS:
                if version <= current:
                    continue
                for statement in statements:
                    self._db_execute(statement)
                self._db_execute("DELETE FROM schema_info")
                self._db_execute(
                    "INSERT INTO schema_info (version) VALUES (?)",
                    (version,))
                self._conn.commit()

    # -- results (content-addressed) ----------------------------------------

    def put_result(self, digest: str, label: str, payload: str) -> bool:
        """Store one serialized result; returns False on duplicate.

        Idempotent by construction: the digest keys the full scenario,
        so a second writer racing on the same cell simply loses the
        ``ON CONFLICT DO NOTHING`` and both end up with the same row.
        """
        cur = self.execute(
            "INSERT INTO results (digest, label, created_ts, payload) "
            "VALUES (?, ?, ?, ?) ON CONFLICT (digest) DO NOTHING",
            (digest, label, wall_now(), payload))
        return cur.rowcount > 0

    def get_result(self, digest: str) -> Optional[str]:
        """The serialized result payload for one digest, or None."""
        rows = self.query(
            "SELECT payload FROM results WHERE digest = ?", (digest,))
        return rows[0]["payload"] if rows else None

    def has_result(self, digest: str) -> bool:
        """Whether a result is stored for this digest."""
        rows = self.query(
            "SELECT 1 FROM results WHERE digest = ?", (digest,))
        return bool(rows)

    def result_count(self) -> int:
        """Number of distinct cached cells."""
        return int(self.query("SELECT COUNT(*) AS n FROM results")[0]["n"])

    def result_rows(self) -> List[Dict[str, Any]]:
        """Digest/label/creation rows (payloads omitted), digest order."""
        return [dict(digest=r["digest"], label=r["label"],
                     created_ts=r["created_ts"])
                for r in self.query(
                    "SELECT digest, label, created_ts FROM results "
                    "ORDER BY digest")]

    # -- per-job event log ---------------------------------------------------

    def append_event(self, job_id: int, seq: int, line: str) -> None:
        """Append one JSONL event line to a job's log."""
        self.execute(
            "INSERT INTO job_events (job_id, seq, line) VALUES (?, ?, ?) "
            "ON CONFLICT (job_id, seq) DO NOTHING",
            (job_id, seq, line))

    def events_after(self, job_id: int, after_seq: int = 0
                     ) -> Iterator[Tuple[int, str]]:
        """``(seq, line)`` rows with seq > after_seq, in order."""
        for row in self.query(
                "SELECT seq, line FROM job_events "
                "WHERE job_id = ? AND seq > ? ORDER BY seq",
                (job_id, after_seq)):
            yield int(row["seq"]), row["line"]

    # -- per-job cell outcomes ----------------------------------------------

    def record_cell(self, job_id: int, cell_index: int, label: str,
                    digest: Optional[str], cached: bool,
                    error: Optional[str] = None) -> None:
        """Record the outcome of one cell of one job."""
        self.execute(
            "INSERT INTO job_results "
            "(job_id, cell_index, label, digest, cached, error) "
            "VALUES (?, ?, ?, ?, ?, ?) "
            "ON CONFLICT (job_id, cell_index) DO UPDATE SET "
            "digest = excluded.digest, cached = excluded.cached, "
            "error = excluded.error",
            (job_id, cell_index, label, digest, int(cached), error))

    def cell_rows(self, job_id: int) -> List[Dict[str, Any]]:
        """All recorded cell outcomes of one job, in cell order."""
        return [dict(cell_index=r["cell_index"], label=r["label"],
                     digest=r["digest"], cached=bool(r["cached"]),
                     error=r["error"])
                for r in self.query(
                    "SELECT cell_index, label, digest, cached, error "
                    "FROM job_results WHERE job_id = ? "
                    "ORDER BY cell_index", (job_id,))]


class _TxnConn:
    """Connection facade handed out by :class:`_Transaction`.

    Routes statements through the store's ``_db_execute`` seam (so
    retries see real statement errors and chaos wrappers can inject
    them inside transactions too) while exposing the same ``execute``
    surface callers already use.
    """

    def __init__(self, store: "SQLiteStore") -> None:
        self._store = store

    def execute(self, sql: str, params: Sequence[Any] = ()
                ) -> sqlite3.Cursor:
        return self._store._db_execute(sql, params)


class _Transaction:
    """Context manager pairing the store lock with a DB transaction."""

    def __init__(self, store: "SQLiteStore") -> None:
        self._store = store
        self._conn = store._conn
        self._lock = store._lock

    def __enter__(self) -> _TxnConn:
        self._lock.acquire()
        return _TxnConn(self._store)

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        try:
            if exc_type is None:
                try:
                    self._conn.commit()
                except sqlite3.OperationalError:
                    # A transient commit failure must not leave the
                    # transaction half-open for the next attempt.
                    self._conn.rollback()
                    raise
            else:
                self._conn.rollback()
        finally:
            self._lock.release()


def open_store(path: str = ":memory:",
               metrics: Optional[MetricsRegistry] = None) -> SQLiteStore:
    """Open (creating/migrating as needed) the store at ``path``."""
    return SQLiteStore(path, metrics=metrics)
