"""SQLite-backed job + result store behind a thin adapter interface.

One :class:`SQLiteStore` owns one database file (or an in-memory
database for tests) holding four tables:

``results``
    Full serialized :class:`~repro.experiments.runner.ExperimentResult`
    payloads, keyed by the scenario's content digest
    (``ExperimentConfig.digest()``).  This is the content-addressed
    half of the service: equal digest ⇒ equal scenario ⇒ (by the
    determinism contract) interchangeable payload, so writes are
    idempotent ``ON CONFLICT DO NOTHING``.
``jobs``
    The work queue (see :mod:`repro.service.queue` for the leasing
    protocol built on top).
``job_events``
    The per-job schema-v1 JSONL event log (one row per line), written
    live by the worker's :class:`~repro.observe.SweepMonitor` sink and
    re-served over HTTP by the API's streaming endpoint.
``job_results``
    Per-cell outcome of one job: result digest (joinable to
    ``results``), cache-hit flag, or the error string.

Design constraints:

* **Schema versioning.**  ``schema_info`` records the applied version;
  :data:`MIGRATIONS` is an append-only list and ``_migrate`` replays
  whatever is missing, so a v1 database opened by v2 code upgrades in
  place and a *newer* database fails loudly instead of corrupting.
* **WAL mode** so the API's readers never block the worker's writes
  (best-effort: in-memory and some network filesystems don't support
  WAL; the store falls back silently because correctness never depends
  on the journal mode).
* **Postgres-shaped SQL.**  Standard types (``TEXT`` / ``BIGINT`` /
  ``DOUBLE PRECISION``), ``INSERT ... ON CONFLICT``, no SQLite-only
  syntax outside the ``PRAGMA`` block — a Postgres adapter can reuse
  every statement by swapping ``?`` placeholders for ``%s``.
* **Thread safety.**  One shared connection guarded by an RLock (plus
  a generous ``busy_timeout`` for multi-process use): N concurrent
  HTTP submitters serialize on the lock instead of racing into
  ``database is locked`` errors.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..observe.hostclock import wall_now

#: Bump (and append a migration) whenever the schema changes.
SCHEMA_VERSION = 1

#: Append-only migration list: ``(version, [statements...])``.  A
#: database at version N replays every entry with version > N, in
#: order, inside one transaction per entry.
MIGRATIONS: List[Tuple[int, List[str]]] = [
    (1, [
        """
        CREATE TABLE results (
            digest      TEXT PRIMARY KEY,
            label       TEXT NOT NULL,
            created_ts  DOUBLE PRECISION NOT NULL,
            payload     TEXT NOT NULL
        )
        """,
        """
        CREATE TABLE jobs (
            id               INTEGER PRIMARY KEY,
            kind             TEXT NOT NULL,
            state            TEXT NOT NULL DEFAULT 'queued',
            payload          TEXT NOT NULL,
            submitted_ts     DOUBLE PRECISION NOT NULL,
            started_ts       DOUBLE PRECISION,
            finished_ts      DOUBLE PRECISION,
            lease_owner      TEXT,
            lease_expires_ts DOUBLE PRECISION,
            attempts         BIGINT NOT NULL DEFAULT 0,
            error            TEXT,
            n_cells          BIGINT NOT NULL DEFAULT 0,
            n_done           BIGINT NOT NULL DEFAULT 0,
            n_failed         BIGINT NOT NULL DEFAULT 0,
            n_cache_hits     BIGINT NOT NULL DEFAULT 0
        )
        """,
        """
        CREATE INDEX idx_jobs_state ON jobs (state, id)
        """,
        """
        CREATE TABLE job_events (
            job_id  BIGINT NOT NULL,
            seq     BIGINT NOT NULL,
            line    TEXT NOT NULL,
            PRIMARY KEY (job_id, seq)
        )
        """,
        """
        CREATE TABLE job_results (
            job_id     BIGINT NOT NULL,
            cell_index BIGINT NOT NULL,
            label      TEXT NOT NULL,
            digest     TEXT,
            cached     BIGINT NOT NULL DEFAULT 0,
            error      TEXT,
            PRIMARY KEY (job_id, cell_index)
        )
        """,
    ]),
]


class SQLiteStore:
    """The SQLite adapter (see module docstring for the contract)."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            path, check_same_thread=False, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            # SQLite-specific tuning lives here and only here; every
            # statement below this block is portable SQL.
            self._conn.execute("PRAGMA busy_timeout = 30000")
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._migrate()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- low-level access (used by the queue layer) -------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()
                ) -> sqlite3.Cursor:
        """Run one statement under the store lock; autocommits."""
        with self._lock:
            cur = self._conn.execute(sql, params)
            self._conn.commit()
            return cur

    def query(self, sql: str, params: Sequence[Any] = ()
              ) -> List[sqlite3.Row]:
        """Run one read-only statement; returns all rows."""
        with self._lock:
            return self._conn.execute(sql, params).fetchall()

    def transaction(self) -> "_Transaction":
        """``with store.transaction():`` — atomic multi-statement block.

        Holds the store lock for the duration, so a lease decision
        (read candidate + mark running) is a single atomic unit even
        with many worker threads.
        """
        return _Transaction(self._conn, self._lock)

    # -- schema -------------------------------------------------------------

    def schema_version(self) -> int:
        """The migration version this database is at."""
        rows = self.query("SELECT version FROM schema_info")
        return int(rows[0]["version"]) if rows else 0

    def _migrate(self) -> None:
        with self._lock:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS schema_info "
                "(version BIGINT NOT NULL)")
            rows = self._conn.execute(
                "SELECT version FROM schema_info").fetchall()
            current = int(rows[0]["version"]) if rows else 0
            if current > SCHEMA_VERSION:
                raise ValueError(
                    f"database {self.path!r} is at schema {current}, "
                    f"newer than this code ({SCHEMA_VERSION}); refusing "
                    f"to open")
            for version, statements in MIGRATIONS:
                if version <= current:
                    continue
                for statement in statements:
                    self._conn.execute(statement)
                self._conn.execute("DELETE FROM schema_info")
                self._conn.execute(
                    "INSERT INTO schema_info (version) VALUES (?)",
                    (version,))
                self._conn.commit()

    # -- results (content-addressed) ----------------------------------------

    def put_result(self, digest: str, label: str, payload: str) -> bool:
        """Store one serialized result; returns False on duplicate.

        Idempotent by construction: the digest keys the full scenario,
        so a second writer racing on the same cell simply loses the
        ``ON CONFLICT DO NOTHING`` and both end up with the same row.
        """
        cur = self.execute(
            "INSERT INTO results (digest, label, created_ts, payload) "
            "VALUES (?, ?, ?, ?) ON CONFLICT (digest) DO NOTHING",
            (digest, label, wall_now(), payload))
        return cur.rowcount > 0

    def get_result(self, digest: str) -> Optional[str]:
        """The serialized result payload for one digest, or None."""
        rows = self.query(
            "SELECT payload FROM results WHERE digest = ?", (digest,))
        return rows[0]["payload"] if rows else None

    def has_result(self, digest: str) -> bool:
        """Whether a result is stored for this digest."""
        rows = self.query(
            "SELECT 1 FROM results WHERE digest = ?", (digest,))
        return bool(rows)

    def result_count(self) -> int:
        """Number of distinct cached cells."""
        return int(self.query("SELECT COUNT(*) AS n FROM results")[0]["n"])

    def result_rows(self) -> List[Dict[str, Any]]:
        """Digest/label/creation rows (payloads omitted), digest order."""
        return [dict(digest=r["digest"], label=r["label"],
                     created_ts=r["created_ts"])
                for r in self.query(
                    "SELECT digest, label, created_ts FROM results "
                    "ORDER BY digest")]

    # -- per-job event log ---------------------------------------------------

    def append_event(self, job_id: int, seq: int, line: str) -> None:
        """Append one JSONL event line to a job's log."""
        self.execute(
            "INSERT INTO job_events (job_id, seq, line) VALUES (?, ?, ?) "
            "ON CONFLICT (job_id, seq) DO NOTHING",
            (job_id, seq, line))

    def events_after(self, job_id: int, after_seq: int = 0
                     ) -> Iterator[Tuple[int, str]]:
        """``(seq, line)`` rows with seq > after_seq, in order."""
        for row in self.query(
                "SELECT seq, line FROM job_events "
                "WHERE job_id = ? AND seq > ? ORDER BY seq",
                (job_id, after_seq)):
            yield int(row["seq"]), row["line"]

    # -- per-job cell outcomes ----------------------------------------------

    def record_cell(self, job_id: int, cell_index: int, label: str,
                    digest: Optional[str], cached: bool,
                    error: Optional[str] = None) -> None:
        """Record the outcome of one cell of one job."""
        self.execute(
            "INSERT INTO job_results "
            "(job_id, cell_index, label, digest, cached, error) "
            "VALUES (?, ?, ?, ?, ?, ?) "
            "ON CONFLICT (job_id, cell_index) DO UPDATE SET "
            "digest = excluded.digest, cached = excluded.cached, "
            "error = excluded.error",
            (job_id, cell_index, label, digest, int(cached), error))

    def cell_rows(self, job_id: int) -> List[Dict[str, Any]]:
        """All recorded cell outcomes of one job, in cell order."""
        return [dict(cell_index=r["cell_index"], label=r["label"],
                     digest=r["digest"], cached=bool(r["cached"]),
                     error=r["error"])
                for r in self.query(
                    "SELECT cell_index, label, digest, cached, error "
                    "FROM job_results WHERE job_id = ? "
                    "ORDER BY cell_index", (job_id,))]


class _Transaction:
    """Context manager pairing the store lock with a DB transaction."""

    def __init__(self, conn: sqlite3.Connection,
                 lock: threading.RLock) -> None:
        self._conn = conn
        self._lock = lock

    def __enter__(self) -> sqlite3.Connection:
        self._lock.acquire()
        return self._conn

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        try:
            if exc_type is None:
                self._conn.commit()
            else:
                self._conn.rollback()
        finally:
            self._lock.release()


def open_store(path: str = ":memory:") -> SQLiteStore:
    """Open (creating/migrating as needed) the store at ``path``."""
    return SQLiteStore(path)
