"""Host-side resilience primitives: retry, circuit breaker, deadline.

These are the *service's* answer to the partial failures the paper's
EC2 experiments suffered for real (workers dying, storage stalling,
requests hanging) — deliberately distinct from the sim-side
:mod:`repro.faults` types, which advance *simulated* time inside a
deterministic world.  Everything here touches the host clock and
sleeps for real, which is exactly why it lives under ``repro/service/``
(inside the SIM001/SIM009 host-side fence) and must never be imported
by kernel code.

Three primitives, all with injectable clocks so tests never sleep:

:class:`HostRetryPolicy`
    Bounded exponential backoff with *seeded* jitter (a
    :func:`repro.simcore.rand.substream` generator, so even the
    host-side randomness is reproducible given the seed).  Counts
    ``service_retry_attempts_total`` / ``service_retry_exhausted_total``
    by operation.
:class:`CircuitBreaker`
    Classic closed / open / half-open machine with a cooldown.  After
    ``failure_threshold`` consecutive failures it opens and sheds load
    (``allow()`` returns False) until ``cooldown_seconds`` pass, then
    lets ``half_open_probes`` trial calls through; one success closes
    it again.  Exposes ``service_breaker_state`` (0 closed, 1
    half-open, 2 open) and ``service_breaker_transitions_total``.
:class:`Deadline`
    A monotonic time budget shared across retries of one logical
    operation; ``clamp()`` shortens any sleep to what is left and
    ``check()`` raises :class:`DeadlineExceeded`.
"""

from __future__ import annotations

import sqlite3
import time
from typing import Any, Callable, Optional, Tuple, Type

from ..lint.lockwatch import new_lock
from ..observe.hostclock import monotonic
from ..simcore.rand import substream
from ..telemetry.metrics import MetricsRegistry

#: Breaker states (string-valued so status documents read naturally).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of the breaker state machine.
_STATE_VALUE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class DeadlineExceeded(RuntimeError):
    """An operation overran its :class:`Deadline`."""


class Deadline:
    """A monotonic host-time budget for one logical operation.

    ``seconds=None`` means "no deadline": ``remaining()`` is infinite
    and ``expired`` never trips, so callers can thread one object
    through unconditionally.
    """

    def __init__(self, seconds: Optional[float],
                 clock: Callable[[], float] = monotonic) -> None:
        self.seconds = seconds
        self._clock = clock
        self._t0 = clock()

    def remaining(self) -> float:
        """Seconds left in the budget (``inf`` when unbounded)."""
        if self.seconds is None:
            return float("inf")
        return self.seconds - (self._clock() - self._t0)

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.seconds:.3f}s deadline")

    def clamp(self, interval: float) -> float:
        """``interval`` shortened to the remaining budget (>= 0)."""
        return max(0.0, min(interval, self.remaining()))


def is_transient_sqlite_error(exc: BaseException) -> bool:
    """Whether ``exc`` is a retryable SQLite contention error.

    ``database is locked`` can surface despite ``busy_timeout`` (e.g.
    a writer mid-transaction in another process, or an injected chaos
    fault); schema errors and constraint violations are *not*
    transient and must propagate.
    """
    if not isinstance(exc, sqlite3.OperationalError):
        return False
    text = str(exc).lower()
    return ("locked" in text) or ("busy" in text)


class HostRetryPolicy:
    """Bounded exponential backoff with seeded jitter, host-side.

    The sim-side :class:`repro.faults.RetryPolicy` schedules retries in
    *simulated* time inside the deterministic kernel; this one sleeps
    on the host clock between attempts at a real operation (an SQLite
    statement, an HTTP GET).  Jitter draws from a named
    :func:`~repro.simcore.rand.substream`, so two policies built with
    the same ``(seed, name)`` produce the same backoff sequence — the
    property the chaos harness leans on.
    """

    def __init__(self, max_attempts: int = 5,
                 base_delay: float = 0.02,
                 max_delay: float = 1.0,
                 multiplier: float = 2.0,
                 jitter: float = 0.5,
                 seed: int = 0,
                 name: str = "host",
                 sleep: Callable[[float], None] = time.sleep,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.name = name
        self._sleep = sleep
        self._rng = substream(seed, "service.resilience", name)
        # Leaf lock: delay() never calls out while holding it.
        self._rng_lock = new_lock(f"retry.rng.{name}")
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            thread_safe=True, lock_factory=new_lock)
        self._attempts = self.metrics.counter(
            "service_retry_attempts_total",
            "host-side operation retries by operation")
        self._exhausted = self.metrics.counter(
            "service_retry_exhausted_total",
            "retry budgets exhausted (error propagated) by operation")
        # Pre-seed zero-valued series so the instruments appear in the
        # /metrics exposition before the first fault.
        self._attempts.inc(0.0, op=name)
        self._exhausted.inc(0.0, op=name)

    def delay(self, attempt: int) -> float:
        """The jittered pause before retry number ``attempt`` (0-based)."""
        base = min(self.max_delay,
                   self.base_delay * (self.multiplier ** attempt))
        if self.jitter <= 0.0:
            return base
        spread = self.jitter * base
        with self._rng_lock:
            u = float(self._rng.random())
        return max(0.0, base - spread + 2.0 * spread * u)

    def call(self, fn: Callable[[], Any], *,
             op: Optional[str] = None,
             retry_on: Tuple[Type[BaseException], ...] = (Exception,),
             retry_if: Optional[Callable[[BaseException], bool]] = None,
             deadline: Optional[Deadline] = None,
             breaker: Optional["CircuitBreaker"] = None) -> Any:
        """Run ``fn()`` with retries; re-raises the last error.

        Only exceptions matching ``retry_on`` (and, when given, the
        ``retry_if`` predicate) are retried; anything else propagates
        immediately.  ``deadline`` bounds the *total* time spent
        including sleeps; ``breaker`` gets a success/failure signal per
        attempt, so repeated exhaustion opens it.
        """
        op = op if op is not None else self.name
        attempt = 0
        while True:
            try:
                result = fn()
            except retry_on as exc:
                if retry_if is not None and not retry_if(exc):
                    raise
                if breaker is not None:
                    breaker.record_failure()
                attempt += 1
                if attempt >= self.max_attempts:
                    self._exhausted.inc(op=op)
                    raise
                pause = self.delay(attempt - 1)
                if deadline is not None:
                    if deadline.expired:
                        self._exhausted.inc(op=op)
                        raise
                    pause = deadline.clamp(pause)
                self._attempts.inc(op=op)
                self._sleep(pause)
            else:
                if breaker is not None:
                    breaker.record_success()
                return result


class CircuitBreaker:
    """Closed / open / half-open breaker with cooldown (thread-safe).

    Consumers call :meth:`allow` before an operation and
    :meth:`record_success` / :meth:`record_failure` after it; the
    breaker never wraps calls itself, so it composes with any retry or
    transport layer.  State transitions are exported as metrics the
    moment they happen, which is how ``/readyz`` and the Prometheus
    exposition surface degradation.
    """

    def __init__(self, name: str = "store",
                 failure_threshold: int = 5,
                 cooldown_seconds: float = 5.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = monotonic,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock
        # _set() exports metrics while this is held, so the lock-order
        # graph gains the edge breaker.<name> -> metrics.registry.
        self._lock = new_lock(f"breaker.{name}")
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            thread_safe=True, lock_factory=new_lock)
        self._gauge = self.metrics.gauge(
            "service_breaker_state",
            "circuit breaker state (0 closed, 1 half-open, 2 open)")
        self._transitions = self.metrics.counter(
            "service_breaker_transitions_total",
            "circuit breaker state transitions by target state")
        self._rejections = self.metrics.counter(
            "service_breaker_rejected_total",
            "calls shed while the breaker was open")
        self._gauge.set(0, breaker=name)
        self._rejections.inc(0.0, breaker=name)

    # -- state machine (lock held by callers of _set/_tick) -----------------

    def _set(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        self._gauge.set(_STATE_VALUE[state], breaker=self.name)
        self._transitions.inc(breaker=self.name, to=state)

    def _tick(self) -> None:
        if self._state == OPEN and self._opened_at is not None \
                and self._clock() - self._opened_at >= self.cooldown_seconds:
            self._set(HALF_OPEN)
            self._probes_in_flight = 0

    # -- public API ---------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, cooldown applied (``closed``/``open``/...)."""
        with self._lock:
            self._tick()
            return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now (counts rejections)."""
        with self._lock:
            self._tick()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN \
                    and self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self._rejections.inc(breaker=self.name)
            return False

    def record_success(self) -> None:
        """A guarded call succeeded: reset failures, close the breaker."""
        with self._lock:
            self._failures = 0
            if self._state != CLOSED:
                self._set(CLOSED)

    def record_failure(self) -> None:
        """A guarded call failed: trip open at the threshold."""
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or (
                    self._state == CLOSED
                    and self._failures >= self.failure_threshold):
                self._set(OPEN)
                self._opened_at = self._clock()
