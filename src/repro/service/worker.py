"""Worker runtime: a supervised thread draining the job queue.

One :class:`ServiceWorker` polls the queue, leases jobs, expands each
job payload into a list of :class:`ExperimentConfig` cells, and drives
them through the existing :func:`repro.experiments.run_sweep` pool —
with the content-addressed :class:`~repro.service.cache.CellCache`
short-circuiting already-answered cells and ``ObserveOptions``
(``keep_going``, crash bundles, flight recorder) handling per-cell
failures without losing the rest of the job.

The worker thread itself is *supervised*: a companion thread watches
it and, should anything escape :meth:`run_job`'s catch (a chaos kill,
a ``MemoryError``, an interpreter-level surprise), records the crash,
recovers the in-flight job — straight back to ``queued`` while
attempts remain, quarantined as ``failed`` with a crash bundle once
``JobQueue.max_attempts`` is burned — and restarts the thread.  Lease
expiry stays the backstop for whole-process death; the supervisor just
makes single-thread crashes recover in milliseconds instead of a
lease period.  :meth:`stop` drains: the in-flight job finishes before
the thread exits.

The sweep's lifecycle events (schema-v1 JSONL, the same format
``--events-out`` writes) stream into the store's ``job_events`` table
line by line, so the HTTP API can re-serve live progress while the
job is still running.

Job payload shapes (all JSON):

``scenario``   ``{"config": {...}}``
``sweep``      ``{"configs": [{...}, ...]}``
``faultsweep`` ``{"config": {...}, "error_rates": [...],
               "node_mtbfs": [...]}`` — expanded into one cell per
               fault point (plus the fault-free baseline), exactly the
               grid ``repro-ec2 faultsweep`` runs.

Optional payload keys: ``jobs`` (worker processes for the sweep) and
``scale`` (``"paper"`` default, or ``"small"`` for the down-scaled
workflows the determinism sanitizer uses — handy for smoke tests).
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import traceback
from typing import Any, Dict, List, Optional

from ..experiments.config import ExperimentConfig
from ..experiments.runner import ObserveOptions, run_sweep
from ..lint.determinism import small_workflow
from ..lint.lockwatch import new_lock
from ..observe.events import EventLogWriter
from ..observe.flight import BUNDLE_SCHEMA_VERSION, write_crash_bundle
from ..observe.hostclock import wall_now
from ..observe.monitor import SweepMonitor
from ..telemetry.metrics import MetricsRegistry
from .cache import CellCache
from .queue import DEFAULT_LEASE_SECONDS, JobQueue, JobRow
from .store import SQLiteStore


class _StoreEventSink:
    """File-like adapter writing JSONL event lines into ``job_events``.

    :class:`~repro.observe.events.EventLogWriter` only needs
    ``write``/``flush``; each complete line becomes one row keyed by
    the writer's own monotonic ``seq``, so a crashed worker leaves a
    gapless, parseable prefix behind.
    """

    def __init__(self, store: SQLiteStore, job_id: int) -> None:
        self._store = store
        self._job_id = job_id
        self._seq = 0
        self._buffer = ""

    def write(self, text: str) -> int:
        self._buffer += text
        while "\n" in self._buffer:
            line, self._buffer = self._buffer.split("\n", 1)
            if line:
                self._seq += 1
                self._store.append_event(self._job_id, self._seq, line)
        return len(text)

    def flush(self) -> None:
        """No-op: complete lines are committed as they arrive."""


def expand_job(payload: Dict[str, Any], kind: str
               ) -> List[ExperimentConfig]:
    """The cell list one job payload describes (validated)."""
    if kind == "scenario":
        raw_configs = [payload["config"]]
    elif kind == "sweep":
        raw_configs = list(payload["configs"])
        if not raw_configs:
            raise ValueError("sweep job with no configs")
    elif kind == "faultsweep":
        base = ExperimentConfig.from_dict(payload["config"])
        cells = [base]
        for rate in payload.get("error_rates", []):
            cells.append(base.with_(storage_error_rate=float(rate)))
        for mtbf in payload.get("node_mtbfs", []):
            cells.append(base.with_(node_mtbf=float(mtbf)))
        return cells
    else:
        raise ValueError(f"unknown job kind {kind!r}")
    configs = [ExperimentConfig.from_dict(c) for c in raw_configs]
    for config in configs:
        ok, why = config.is_valid()
        if not ok:
            raise ValueError(f"invalid cell {config.label}: {why}")
    return configs


class ServiceWorker:
    """Supervisor thread running queued jobs through ``run_sweep``."""

    def __init__(self, store: SQLiteStore, queue: JobQueue,
                 cache: CellCache,
                 metrics: Optional[MetricsRegistry] = None,
                 name: str = "worker-0",
                 jobs: int = 1,
                 poll_interval: float = 0.05,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 crash_dir: Optional[str] = None,
                 chaos: Optional[Any] = None,
                 max_restarts: int = 1000) -> None:
        self.store = store
        self.queue = queue
        self.cache = cache
        self.metrics = metrics if metrics is not None else cache.metrics
        self.name = name
        self.jobs = jobs
        self.poll_interval = poll_interval
        self.lease_seconds = lease_seconds
        self.crash_dir = crash_dir
        self.chaos = chaos
        self.max_restarts = max_restarts
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._supervisor: Optional[threading.Thread] = None
        # The in-flight slot is shared worker <-> supervisor: the worker
        # sets it at pickup, the supervisor snapshots-and-clears it after
        # a thread death.  A leaf lock (nothing is called while it is
        # held) makes the handoff a single atomic unit — without it the
        # supervisor can pair a stale crash with a fresh job, or start()
        # can wipe a slot the supervisor is mid-recovery on.
        self._slot_lock = new_lock("worker.slot")
        self._current_job: Optional[JobRow] = None
        self._crash: Optional[BaseException] = None
        self.n_restarts = 0
        self._jobs_done = self.metrics.counter(
            "service_jobs_completed_total", "jobs finished by outcome")
        self._cells_run = self.metrics.counter(
            "service_cells_total", "sweep cells processed by source")
        self._restarts = self.metrics.counter(
            "service_worker_restarts_total",
            "worker threads resurrected by the supervisor")
        self._restarts.inc(0.0, worker=name)

    # -- one job ------------------------------------------------------------

    def run_job(self, job: JobRow) -> None:
        """Execute one leased job to completion (never raises).

        "Never raises" covers :class:`Exception`; a ``BaseException``
        (a chaos kill, ``KeyboardInterrupt``) deliberately escapes so
        it kills the thread like a real crash would — that is the
        path the supervisor exists to recover.
        """
        if self.chaos is not None:
            self.chaos.on_job(job)
        try:
            configs = expand_job(job.payload, job.kind)
        except (KeyError, TypeError, ValueError) as exc:
            self.queue.fail(job.id, f"bad job payload: {exc}")
            self._jobs_done.inc(outcome="failed")
            return
        self.queue.update_progress(job.id, n_cells=len(configs))
        sweep_jobs = int(job.payload.get("jobs", self.jobs))
        factory = (small_workflow
                   if job.payload.get("scale") == "small" else None)
        cache = self._job_cache(job)

        sink = _StoreEventSink(self.store, job.id)
        monitor = SweepMonitor(events=EventLogWriter(sink))
        observe = ObserveOptions(monitor=monitor, keep_going=True,
                                 crash_dir=self.crash_dir)
        done = {"n": 0}

        def _progress(result: Any) -> None:
            done["n"] += 1
            self.queue.update_progress(job.id, n_done=done["n"])
            self.queue.heartbeat(job.id, self.name, self.lease_seconds)
            if self.chaos is not None:
                self.chaos.on_cell(job, done["n"])

        # The worker must outlive any cell failure: keep_going already
        # folds per-cell errors into None placeholders, and anything
        # else (a corrupt payload, a store hiccup) must land in the
        # job row as 'failed', never kill the worker thread.
        try:
            results = run_sweep(configs, workflow_factory=factory,
                                progress=_progress, jobs=sweep_jobs,
                                observe=observe, cache=cache)
        except Exception as exc:  # lint: ignore[SIM007]
            self.queue.fail(job.id, traceback.format_exc(limit=20))
            self._jobs_done.inc(outcome="failed")
            self._write_job_bundle(job, exc)
            return

        # _mark_cache_hits stamped, at pickup time, which cells the
        # store could already answer — that snapshot is the per-job
        # hit count even though the shared cache counters aggregate
        # across concurrent jobs.
        marks = job.payload.get("_cache_marks") or []
        n_done = n_failed = n_hits = 0
        for index, (config, result) in enumerate(zip(configs, results)):
            if result is None:
                n_failed += 1
                self._cells_run.inc(source="failed")
                self.store.record_cell(job.id, index, config.label,
                                       None, cached=False,
                                       error="cell failed (see events)")
                continue
            cached = bool(marks[index]) if index < len(marks) else False
            n_done += 1
            if cached:
                n_hits += 1
                self._cells_run.inc(source="cache")
            else:
                self._cells_run.inc(source="simulated")
            self.store.record_cell(job.id, index, config.label,
                                   cache.key(config), cached=cached)
        self.queue.complete(job.id, n_done=n_done, n_failed=n_failed,
                            n_cache_hits=n_hits)
        self._jobs_done.inc(
            outcome="done" if n_failed == 0 else "partial")

    def _write_job_bundle(self, job: JobRow, error: BaseException) -> None:
        """Persist a job-level crash bundle under ``crash_dir``.

        Reuses the :mod:`repro.observe.flight` bundle layout (so
        ``repro-ec2 postmortem`` summarizes service crashes alongside
        cell crashes); the "config" of a job bundle is its payload and
        the digest is the payload's content hash.
        """
        if not self.crash_dir:
            return
        payload = {k: v for k, v in job.payload.items()
                   if k != "_cache_marks"}
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()
        bundle: Dict[str, Any] = {
            "schema": BUNDLE_SCHEMA_VERSION,
            "kind": "crash_bundle",
            "ts": wall_now(),
            "index": job.id,
            "label": f"job-{job.id}-{job.kind}",
            "digest": digest,
            "config": payload,
            "error": {
                "type": type(error).__name__,
                "message": str(error),
                "traceback": "".join(traceback.format_exception(
                    type(error), error, error.__traceback__)),
            },
            "job": {
                "id": job.id,
                "kind": job.kind,
                "attempts": job.attempts,
                "worker": self.name,
            },
        }
        try:
            write_crash_bundle(self.crash_dir, bundle)
        except OSError:
            pass  # a full disk must not take the supervisor down too

    # -- the polling loop ---------------------------------------------------

    def run_once(self) -> bool:
        """Lease and run at most one job; True when one was processed."""
        job = self.queue.lease(self.name, self.lease_seconds)
        if job is None:
            return False
        # The slot is only cleared on clean completion: if run_job dies
        # with a BaseException the clearing below never runs, and the
        # supervisor reads the slot to recover the in-flight job.
        with self._slot_lock:
            self._current_job = job
        job = self._mark_cache_hits(job)
        self.run_job(job)
        with self._slot_lock:
            self._current_job = None
        return True

    def _job_cache(self, job: JobRow) -> CellCache:
        """The cache view for one job's workflow scale.

        Down-scaled (``scale: "small"``) jobs simulate different
        workflows for the same config, so their results live under a
        namespaced key and can never answer a paper-scale submission
        (or vice versa).
        """
        return self.cache.for_scale(job.payload.get("scale"))

    def _mark_cache_hits(self, job: JobRow) -> JobRow:
        """Annotate which cells the store can already answer.

        Done at pickup time (before the sweep issues its counted
        lookups) so the per-job hit count is exact even though the
        shared cache counters aggregate across jobs.
        """
        try:
            configs = expand_job(job.payload, job.kind)
        except (KeyError, TypeError, ValueError):
            return job  # run_job will fail it with the real error
        cache = self._job_cache(job)
        job.payload["_cache_marks"] = [cache.peek(c) for c in configs]
        return job

    def run_forever(self) -> None:
        """Poll until :meth:`stop` is called."""
        while not self._stop.is_set():
            if not self.run_once():
                self._stop.wait(self.poll_interval)

    # -- supervision --------------------------------------------------------

    def _run_guarded(self) -> None:
        """Worker-thread target: record whatever kills the loop."""
        try:
            self.run_forever()
        except BaseException as exc:  # lint: ignore[SIM007]
            # The supervisor seam: a crash is *data* here (recorded for
            # the restart/quarantine decision), never swallowed on a
            # simulation path — run_job already re-raises sim errors
            # into the job row.
            with self._slot_lock:
                self._crash = exc

    def _recover_crashed_job(self, job: JobRow,
                             crash: Optional[BaseException]) -> None:
        """Requeue or quarantine the job a dead thread was holding."""
        error = crash if crash is not None else RuntimeError(
            "worker thread died without recording an exception")
        self._write_job_bundle(job, error)
        try:
            if job.attempts >= self.queue.max_attempts:
                self.queue.fail(
                    job.id,
                    f"worker thread crashed on attempt {job.attempts}/"
                    f"{self.queue.max_attempts} "
                    f"({type(error).__name__}: {error}); quarantined")
                self._jobs_done.inc(outcome="quarantined")
            else:
                self.queue.requeue(job.id)
        except sqlite3.Error:
            # The store is down too; lease expiry is the backstop.
            pass

    def _supervise(self) -> None:
        """Companion loop: restart the worker thread when it dies."""
        while True:
            thread = self._thread
            if thread is None:
                return
            thread.join(self.poll_interval)
            if thread.is_alive():
                continue
            if self._stop.is_set():
                return
            # Snapshot-and-clear atomically: run_once leaves the slot
            # set when run_job dies mid-flight.  Recovery (store/queue
            # work) runs *after* the lock is released — worker.slot
            # stays a leaf in the lock-order graph.
            with self._slot_lock:
                job, crash = self._current_job, self._crash
                self._current_job = None
                self._crash = None
            if job is not None:
                self._recover_crashed_job(job, crash)
            self.n_restarts += 1
            self._restarts.inc(worker=self.name)
            if self.n_restarts > self.max_restarts:
                return
            replacement = threading.Thread(
                target=self._run_guarded, name=self.name, daemon=True)
            self._thread = replacement
            replacement.start()

    def start(self) -> "ServiceWorker":
        """Start the worker + supervisor threads (join via :meth:`stop`)."""
        if self._thread is not None:
            raise RuntimeError("worker already started")
        self._stop.clear()
        with self._slot_lock:
            self._crash = None
            self._current_job = None
        self._thread = threading.Thread(
            target=self._run_guarded, name=self.name, daemon=True)
        self._thread.start()
        self._supervisor = threading.Thread(
            target=self._supervise, name=f"{self.name}-supervisor",
            daemon=True)
        self._supervisor.start()
        return self

    def stop(self, timeout: float = 10.0) -> bool:
        """Signal the loop to exit, drain, and join both threads.

        Draining means the in-flight job (if any) runs to completion
        before the thread exits — the loop only checks the stop flag
        between jobs.  Returns True when everything wound down inside
        ``timeout``; False means a job was still running (its lease
        will expire and re-queue it).
        """
        self._stop.set()
        drained = True
        if self._thread is not None:
            self._thread.join(timeout)
            drained = not self._thread.is_alive()
        if self._supervisor is not None:
            self._supervisor.join(max(0.1, self.poll_interval * 4))
            self._supervisor = None
        self._thread = None
        return drained
