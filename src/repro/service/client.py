"""Stdlib HTTP client for the service API (used by the CLI trio).

:class:`ServiceClient` wraps ``urllib.request`` — no new dependency —
and mirrors the API surface one-to-one: ``submit``/``status``/
``result``/``events``/``metrics``/``health``, plus :meth:`wait` to
poll a job to a terminal state and :meth:`stream_events` to tail the
NDJSON event log.  Errors come back as :class:`ServiceError` carrying
the HTTP status and the server's ``error`` message.

Resilience: idempotent GETs retry transient failures (connection
errors, dropped responses, 502/503/504) under a bounded
:class:`~repro.service.resilience.HostRetryPolicy`; :meth:`wait` keeps
polling through outages until its overall deadline, with a constant
floor on the poll interval so a hot loop can never hammer the API;
:meth:`stream_events` reconnects a dropped stream and resumes from the
last fully-received line (the API's ``?after=N``).  ``POST`` requests
are *not* retried — submission is not idempotent, so the caller
decides (the chaos middleware only injects errors before the app runs
for exactly this reason).
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from ..experiments.config import ExperimentConfig
from .resilience import Deadline, HostRetryPolicy

#: HTTP statuses worth retrying on an idempotent request (the server
#: sheds load with 503 + Retry-After; 0 is "could not connect").
TRANSIENT_STATUSES = (0, 502, 503, 504)

#: Constant floor under every poll/backoff sleep: even with
#: ``poll_interval=0`` the client cannot busy-loop against the API.
MIN_POLL_INTERVAL = 0.05


class ServiceError(RuntimeError):
    """An API call failed (HTTP error or unreachable server)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}" if status
                         else message)
        self.status = status
        self.message = message


def _is_transient(exc: BaseException) -> bool:
    return isinstance(exc, ServiceError) \
        and exc.status in TRANSIENT_STATUSES


class ServiceClient:
    """Talk to one running ``repro-ec2 serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retries: int = 3, retry_seed: int = 0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._retry = HostRetryPolicy(
            max_attempts=max(1, retries + 1), base_delay=0.05,
            max_delay=1.0, seed=retry_seed, name="client")

    # -- transport ----------------------------------------------------------

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode("utf-8"))["error"]
            except (KeyError, TypeError, ValueError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace")[:200]
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}") from None
        except (ConnectionError, TimeoutError,
                http.client.HTTPException) as exc:
            # A dropped/truncated response mid-read: transient by
            # definition for an idempotent request.
            raise ServiceError(
                0, f"connection to {self.base_url} failed: "
                   f"{type(exc).__name__}: {exc}") from None

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> bytes:
        if method != "GET":
            # Non-idempotent: one attempt, the caller owns the retry
            # decision.
            return self._request_once(method, path, body)
        return self._retry.call(
            lambda: self._request_once(method, path, body),
            op="client.get", retry_on=(ServiceError,),
            retry_if=_is_transient)

    def _get_json(self, path: str) -> Dict[str, Any]:
        return json.loads(self._request("GET", path).decode("utf-8"))

    # -- API surface --------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /api/v1/health``."""
        return self._get_json("/api/v1/health")

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` (pure liveness)."""
        return self._get_json("/healthz")

    def readyz(self) -> Dict[str, Any]:
        """``GET /readyz``; raises :class:`ServiceError` when degraded."""
        return self._get_json("/readyz")

    def submit(self, configs: List[ExperimentConfig],
               kind: Optional[str] = None,
               jobs: Optional[int] = None,
               scale: Optional[str] = None,
               **extra: Any) -> Dict[str, Any]:
        """Submit one scenario or a sweep; returns the creation doc.

        ``kind`` defaults to ``scenario`` for one config and ``sweep``
        for several.  ``jobs``/``scale`` and any ``extra`` keys pass
        through into the job payload (e.g. ``error_rates=[...]`` with
        ``kind="faultsweep"``).
        """
        if not configs:
            raise ValueError("nothing to submit")
        if kind is None:
            kind = "scenario" if len(configs) == 1 else "sweep"
        body: Dict[str, Any] = {"kind": kind, **extra}
        if kind == "sweep":
            body["configs"] = [c.to_dict() for c in configs]
        else:
            if len(configs) != 1:
                raise ValueError(f"{kind} jobs take exactly one config")
            body["config"] = configs[0].to_dict()
        if jobs is not None:
            body["jobs"] = jobs
        if scale is not None:
            body["scale"] = scale
        raw = self._request("POST", "/api/v1/jobs", body=body)
        return json.loads(raw.decode("utf-8"))

    def status(self, job_id: int) -> Dict[str, Any]:
        """``GET /api/v1/jobs/{id}``."""
        return self._get_json(f"/api/v1/jobs/{job_id}")

    def list_jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """``GET /api/v1/jobs``."""
        path = "/api/v1/jobs" + (f"?state={state}" if state else "")
        return self._get_json(path)["jobs"]

    def wait(self, job_id: int, timeout: float = 600.0,
             poll_interval: float = 0.2) -> Dict[str, Any]:
        """Poll until the job is done/failed; returns the final status.

        A transient error mid-poll (connection refused, 503 shed, a
        dropped response) does not abort the wait: the client backs
        off with jitter and keeps polling until ``timeout`` — only a
        non-transient error (404, 400) raises immediately.
        """
        poll = max(poll_interval, MIN_POLL_INTERVAL)
        deadline = Deadline(timeout)
        misses = 0
        while True:
            try:
                status = self.status(job_id)
            except ServiceError as exc:
                if not _is_transient(exc):
                    raise
                if deadline.expired:
                    raise ServiceError(
                        0, f"job {job_id} unreachable after "
                           f"{timeout:.0f}s: {exc.message}") from None
                misses += 1
                time.sleep(max(MIN_POLL_INTERVAL,
                               deadline.clamp(self._retry.delay(misses))))
                continue
            misses = 0
            if status["state"] in ("done", "failed"):
                return status
            if deadline.expired:
                raise ServiceError(
                    0, f"job {job_id} still {status['state']} after "
                       f"{timeout:.0f}s")
            time.sleep(max(MIN_POLL_INTERVAL, deadline.clamp(poll)))

    def result(self, job_id: int) -> Dict[str, Any]:
        """``GET /api/v1/jobs/{id}/result`` (full payloads)."""
        return self._get_json(f"/api/v1/jobs/{job_id}/result")

    def result_csv(self, job_id: int) -> str:
        """``GET /api/v1/jobs/{id}/result?format=csv``."""
        raw = self._request(
            "GET", f"/api/v1/jobs/{job_id}/result?format=csv")
        return raw.decode("utf-8")

    def result_by_digest(self, digest: str) -> Dict[str, Any]:
        """``GET /api/v1/results/{digest}``."""
        return self._get_json(f"/api/v1/results/{digest}")

    def events(self, job_id: int, follow: bool = False
               ) -> Iterator[Dict[str, Any]]:
        """Parsed JSONL events of one job, in seq order."""
        suffix = "?follow=1" if follow else ""
        raw = self._request(
            "GET", f"/api/v1/jobs/{job_id}/events{suffix}")
        for line in raw.decode("utf-8").splitlines():
            if line.strip():
                yield json.loads(line)

    def stream_events(self, job_id: int, follow: bool = False,
                      timeout: float = 600.0) -> Iterator[Dict[str, Any]]:
        """Stream parsed events line by line, resuming across drops.

        Unlike :meth:`events` (one buffered GET), this reads the
        NDJSON body incrementally and — when the connection dies
        mid-stream — reconnects with ``?after=<lines received>`` so no
        event is duplicated or lost, under one overall ``timeout``.
        """
        deadline = Deadline(timeout)
        seen = 0
        misses = 0
        while True:
            suffix = f"?after={seen}" + ("&follow=1" if follow else "")
            req = urllib.request.Request(
                f"{self.base_url}/api/v1/jobs/{job_id}/events{suffix}",
                headers={"Accept": "application/x-ndjson"})
            dropped = False
            try:
                with urllib.request.urlopen(
                        req, timeout=self.timeout) as resp:
                    while True:
                        line = resp.readline()
                        if not line:
                            break
                        if not line.endswith(b"\n"):
                            # Truncated mid-line: treat as a drop and
                            # re-fetch from the last complete line.
                            dropped = True
                            break
                        text = line.decode("utf-8").strip()
                        seen += 1
                        misses = 0
                        if text:
                            yield json.loads(text)
            except urllib.error.HTTPError as exc:
                raw = exc.read()
                try:
                    message = json.loads(raw.decode("utf-8"))["error"]
                except (KeyError, TypeError, ValueError,
                        UnicodeDecodeError):
                    message = raw.decode("utf-8", "replace")[:200]
                if exc.code not in TRANSIENT_STATUSES:
                    raise ServiceError(exc.code, message) from None
                dropped = True
            except (urllib.error.URLError, ConnectionError, TimeoutError,
                    http.client.HTTPException):
                dropped = True
            if not dropped:
                return
            misses += 1
            if deadline.expired:
                raise ServiceError(
                    0, f"event stream for job {job_id} kept dropping; "
                       f"gave up after {timeout:.0f}s")
            time.sleep(max(MIN_POLL_INTERVAL,
                           deadline.clamp(self._retry.delay(misses))))

    def metrics(self) -> str:
        """``GET /metrics`` (Prometheus text exposition)."""
        return self._request("GET", "/metrics").decode("utf-8")
