"""Stdlib HTTP client for the service API (used by the CLI trio).

:class:`ServiceClient` wraps ``urllib.request`` — no new dependency —
and mirrors the API surface one-to-one: ``submit``/``status``/
``result``/``events``/``metrics``/``health``, plus :meth:`wait` to
poll a job to a terminal state.  Errors come back as
:class:`ServiceError` carrying the HTTP status and the server's
``error`` message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from ..experiments.config import ExperimentConfig


class ServiceError(RuntimeError):
    """An API call failed (HTTP error or unreachable server)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}" if status
                         else message)
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one running ``repro-ec2 serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode("utf-8"))["error"]
            except (KeyError, TypeError, ValueError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace")[:200]
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}") from None

    def _get_json(self, path: str) -> Dict[str, Any]:
        return json.loads(self._request("GET", path).decode("utf-8"))

    # -- API surface --------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /api/v1/health``."""
        return self._get_json("/api/v1/health")

    def submit(self, configs: List[ExperimentConfig],
               kind: Optional[str] = None,
               jobs: Optional[int] = None,
               scale: Optional[str] = None,
               **extra: Any) -> Dict[str, Any]:
        """Submit one scenario or a sweep; returns the creation doc.

        ``kind`` defaults to ``scenario`` for one config and ``sweep``
        for several.  ``jobs``/``scale`` and any ``extra`` keys pass
        through into the job payload (e.g. ``error_rates=[...]`` with
        ``kind="faultsweep"``).
        """
        if not configs:
            raise ValueError("nothing to submit")
        if kind is None:
            kind = "scenario" if len(configs) == 1 else "sweep"
        body: Dict[str, Any] = {"kind": kind, **extra}
        if kind == "sweep":
            body["configs"] = [c.to_dict() for c in configs]
        else:
            if len(configs) != 1:
                raise ValueError(f"{kind} jobs take exactly one config")
            body["config"] = configs[0].to_dict()
        if jobs is not None:
            body["jobs"] = jobs
        if scale is not None:
            body["scale"] = scale
        raw = self._request("POST", "/api/v1/jobs", body=body)
        return json.loads(raw.decode("utf-8"))

    def status(self, job_id: int) -> Dict[str, Any]:
        """``GET /api/v1/jobs/{id}``."""
        return self._get_json(f"/api/v1/jobs/{job_id}")

    def list_jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """``GET /api/v1/jobs``."""
        path = "/api/v1/jobs" + (f"?state={state}" if state else "")
        return self._get_json(path)["jobs"]

    def wait(self, job_id: int, timeout: float = 600.0,
             poll_interval: float = 0.2) -> Dict[str, Any]:
        """Poll until the job is done/failed; returns the final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, f"job {job_id} still {status['state']} after "
                       f"{timeout:.0f}s")
            time.sleep(poll_interval)

    def result(self, job_id: int) -> Dict[str, Any]:
        """``GET /api/v1/jobs/{id}/result`` (full payloads)."""
        return self._get_json(f"/api/v1/jobs/{job_id}/result")

    def result_csv(self, job_id: int) -> str:
        """``GET /api/v1/jobs/{id}/result?format=csv``."""
        raw = self._request(
            "GET", f"/api/v1/jobs/{job_id}/result?format=csv")
        return raw.decode("utf-8")

    def result_by_digest(self, digest: str) -> Dict[str, Any]:
        """``GET /api/v1/results/{digest}``."""
        return self._get_json(f"/api/v1/results/{digest}")

    def events(self, job_id: int, follow: bool = False
               ) -> Iterator[Dict[str, Any]]:
        """Parsed JSONL events of one job, in seq order."""
        suffix = "?follow=1" if follow else ""
        raw = self._request(
            "GET", f"/api/v1/jobs/{job_id}/events{suffix}")
        for line in raw.decode("utf-8").splitlines():
            if line.strip():
                yield json.loads(line)

    def metrics(self) -> str:
        """``GET /metrics`` (Prometheus text exposition)."""
        return self._request("GET", "/metrics").decode("utf-8")
