"""Stdlib-only WSGI REST API for the simulation service.

No framework, no new dependency: a plain WSGI callable
(:class:`ServiceApp`) served by ``wsgiref``'s threading server
(:func:`serve`).  Endpoints (all JSON unless noted):

========  =============================  =====================================
Method    Path                           Purpose
========  =============================  =====================================
GET       ``/api/v1/health``             liveness + schema/queue snapshot
POST      ``/api/v1/jobs``               submit a scenario / sweep / faultsweep
GET       ``/api/v1/jobs``               list jobs (``?state=queued``)
GET       ``/api/v1/jobs/{id}``          job status incl. cell outcomes
GET       ``/api/v1/jobs/{id}/events``   schema-v1 JSONL event stream
                                         (``?follow=1`` tails a running job)
GET       ``/api/v1/jobs/{id}/result``   full result payloads
                                         (``?format=csv`` → summary CSV)
GET       ``/api/v1/results/{digest}``   one cached cell by content digest
GET       ``/metrics``                   Prometheus text exposition
========  =============================  =====================================

Submissions are validated eagerly — every config must parse and pass
``is_valid()`` *before* the job row is created, so a bad request is a
400, never a failed job.  The events endpoint re-serves the worker's
JSONL log straight from the store as a chunked/streamed body; with
``follow=1`` it polls until the job reaches a terminal state, which is
how a client tails live progress over plain HTTP.
"""

from __future__ import annotations

import json
import threading
from socketserver import ThreadingMixIn
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional
from urllib.parse import parse_qs
from wsgiref.simple_server import (WSGIRequestHandler, WSGIServer,
                                   make_server)

from ..experiments.results import to_csv
from ..experiments.serialize import RESULT_SCHEMA_VERSION, result_from_json
from ..telemetry.export import to_prometheus
from ..telemetry.metrics import MetricsRegistry
from .cache import CellCache
from .queue import JOB_KINDS, JOB_STATES, JobQueue
from .store import SCHEMA_VERSION, SQLiteStore
from .worker import expand_job

#: Terminal job states (the events endpoint stops following at these).
_TERMINAL = ("done", "failed")


class _HTTPError(Exception):
    """Internal control flow: becomes a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "200 OK",
    201: "201 Created",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    413: "413 Payload Too Large",
    500: "500 Internal Server Error",
}

#: Submission body size cap (a 20k-cell sweep is ~10 MB of configs).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceApp:
    """The WSGI application: routes requests onto store/queue/cache."""

    def __init__(self, store: SQLiteStore, queue: JobQueue,
                 cache: CellCache,
                 metrics: Optional[MetricsRegistry] = None,
                 follow_poll_interval: float = 0.1,
                 follow_timeout: float = 600.0) -> None:
        self.store = store
        self.queue = queue
        self.cache = cache
        self.metrics = metrics if metrics is not None else cache.metrics
        self.follow_poll_interval = follow_poll_interval
        self.follow_timeout = follow_timeout
        self._requests = self.metrics.counter(
            "service_http_requests_total", "API requests by route/status")
        self._submitted = self.metrics.counter(
            "service_jobs_submitted_total", "jobs accepted by kind")

    # -- WSGI entry ---------------------------------------------------------

    def __call__(self, environ: Dict[str, Any],
                 start_response: Callable) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        query = parse_qs(environ.get("QUERY_STRING", ""))
        route = "unmatched"
        try:
            route, handler, args = self._route(method, path)
            response = handler(environ, query, *args)
        except _HTTPError as exc:
            response = _json_response(exc.status, {"error": exc.message})
        except Exception as exc:  # lint: ignore[SIM007]
            # The server must answer every request; anything unplanned
            # becomes a 500 with the exception type as the hint.
            response = _json_response(
                500, {"error": f"{type(exc).__name__}: {exc}"})
        status, headers, body = response
        self._requests.inc(route=route, status=str(status))
        start_response(_STATUS_TEXT[status], headers)
        return body

    def _route(self, method: str, path: str):
        parts = [p for p in path.split("/") if p]
        if path == "/metrics":
            self._require(method, "GET")
            return "/metrics", self._h_metrics, ()
        if parts[:2] == ["api", "v1"]:
            tail = parts[2:]
            if tail == ["health"]:
                self._require(method, "GET")
                return "/api/v1/health", self._h_health, ()
            if tail == ["jobs"]:
                if method == "POST":
                    return "/api/v1/jobs", self._h_submit, ()
                self._require(method, "GET")
                return "/api/v1/jobs", self._h_list_jobs, ()
            if len(tail) >= 2 and tail[0] == "jobs":
                job_id = self._int(tail[1], "job id")
                if len(tail) == 2:
                    self._require(method, "GET")
                    return "/api/v1/jobs/{id}", self._h_job, (job_id,)
                if tail[2:] == ["events"]:
                    self._require(method, "GET")
                    return ("/api/v1/jobs/{id}/events",
                            self._h_events, (job_id,))
                if tail[2:] == ["result"]:
                    self._require(method, "GET")
                    return ("/api/v1/jobs/{id}/result",
                            self._h_result, (job_id,))
            if len(tail) == 2 and tail[0] == "results":
                self._require(method, "GET")
                return ("/api/v1/results/{digest}",
                        self._h_result_by_digest, (tail[1],))
        raise _HTTPError(404, f"no route for {method} {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(405, f"method {method} not allowed here")

    @staticmethod
    def _int(text: str, what: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise _HTTPError(400, f"bad {what}: {text!r}") from None

    # -- handlers -----------------------------------------------------------

    def _h_health(self, environ, query):
        return _json_response(200, {
            "status": "ok",
            "store_schema": SCHEMA_VERSION,
            "result_schema": RESULT_SCHEMA_VERSION,
            "jobs": self.queue.counts(),
            "cached_results": len(self.cache),
        })

    def _h_metrics(self, environ, query):
        text = to_prometheus(self.metrics)
        return (200,
                [("Content-Type", "text/plain; version=0.0.4; "
                                  "charset=utf-8")],
                [text.encode("utf-8")])

    def _h_submit(self, environ, query):
        body = _read_body(environ)
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"request body is not JSON: {exc}") \
                from None
        if not isinstance(request, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        kind = request.get("kind", "scenario")
        if kind not in JOB_KINDS:
            raise _HTTPError(400, f"unknown kind {kind!r} "
                                  f"(expected one of {JOB_KINDS})")
        payload = {k: v for k, v in request.items() if k != "kind"}
        try:
            configs = expand_job(payload, kind)
        except (KeyError, TypeError, ValueError) as exc:
            raise _HTTPError(400, f"bad submission: {exc}") from None
        job_id = self.queue.submit(kind, payload, n_cells=len(configs))
        self._submitted.inc(kind=kind)
        # The advertised digests are the *storage keys* the job will
        # use (scale-namespaced when the job overrides the workflow),
        # so each one is addressable via /api/v1/results/{digest}.
        cache = self.cache.for_scale(payload.get("scale"))
        return _json_response(201, {
            "job_id": job_id,
            "kind": kind,
            "n_cells": len(configs),
            "digests": [cache.key(c) for c in configs],
        })

    def _h_list_jobs(self, environ, query):
        state = query.get("state", [None])[0]
        if state is not None and state not in JOB_STATES:
            raise _HTTPError(400, f"unknown state {state!r}")
        limit = self._int(query.get("limit", ["100"])[0], "limit")
        jobs = self.queue.list_jobs(state=state, limit=limit)
        return _json_response(200, {
            "jobs": [j.status_dict() for j in jobs]})

    def _h_job(self, environ, query, job_id: int):
        job = self.queue.get(job_id)
        if job is None:
            raise _HTTPError(404, f"no job {job_id}")
        status = job.status_dict()
        status["cells"] = self.store.cell_rows(job_id)
        return _json_response(200, status)

    def _h_events(self, environ, query, job_id: int):
        if self.queue.get(job_id) is None:
            raise _HTTPError(404, f"no job {job_id}")
        follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
        body = self._event_stream(job_id, follow)
        return (200, [("Content-Type", "application/x-ndjson")], body)

    def _event_stream(self, job_id: int,
                      follow: bool) -> Iterator[bytes]:
        """Yield event lines; with ``follow``, tail until terminal.

        Yielding per line makes the WSGI server flush each chunk as it
        is produced (chunked transfer under HTTP/1.1, progressive body
        otherwise), which is what lets a client watch a running sweep.
        """
        last_seq = 0
        waited = 0.0
        done_event = threading.Event()  # purely a sleep primitive
        while True:
            for seq, line in self.store.events_after(job_id, last_seq):
                last_seq = seq
                yield (line + "\n").encode("utf-8")
            if not follow:
                return
            job = self.queue.get(job_id)
            if job is None or job.state in _TERMINAL:
                # Drain whatever raced in between the read and the
                # state check, then stop.
                for seq, line in self.store.events_after(job_id, last_seq):
                    last_seq = seq
                    yield (line + "\n").encode("utf-8")
                return
            if waited >= self.follow_timeout:
                return
            done_event.wait(self.follow_poll_interval)
            waited += self.follow_poll_interval

    def _h_result(self, environ, query, job_id: int):
        job = self.queue.get(job_id)
        if job is None:
            raise _HTTPError(404, f"no job {job_id}")
        if job.state not in _TERMINAL:
            raise _HTTPError(404, f"job {job_id} is {job.state}; "
                                  f"results are available once done")
        cells = self.store.cell_rows(job_id)
        fmt = query.get("format", ["json"])[0]
        if fmt == "csv":
            results = []
            for cell in cells:
                if cell["digest"] is None:
                    continue
                payload = self.store.get_result(cell["digest"])
                if payload is not None:
                    results.append(result_from_json(payload))
            return (200, [("Content-Type", "text/csv; charset=utf-8")],
                    [to_csv(results).encode("utf-8")])
        if fmt != "json":
            raise _HTTPError(400, f"unknown format {fmt!r}")
        out: List[Dict[str, Any]] = []
        for cell in cells:
            entry: Dict[str, Any] = {
                "cell_index": cell["cell_index"],
                "label": cell["label"],
                "digest": cell["digest"],
                "cached": cell["cached"],
                "error": cell["error"],
                "result": None,
            }
            if cell["digest"] is not None:
                payload = self.store.get_result(cell["digest"])
                if payload is not None:
                    entry["result"] = json.loads(payload)
            out.append(entry)
        return _json_response(200, {
            "job": job.status_dict(),
            "cells": out,
        })

    def _h_result_by_digest(self, environ, query, digest: str):
        payload = self.store.get_result(digest)
        if payload is None:
            raise _HTTPError(404, f"no cached result for digest "
                                  f"{digest[:16]}...")
        return (200, [("Content-Type", "application/json")],
                [payload.encode("utf-8")])


# -- helpers ----------------------------------------------------------------


def _json_response(status: int, doc: Dict[str, Any]):
    body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
    return (status,
            [("Content-Type", "application/json"),
             ("Content-Length", str(len(body)))],
            [body])


def _read_body(environ: Dict[str, Any]) -> bytes:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    if length > MAX_BODY_BYTES:
        raise _HTTPError(413, f"request body over {MAX_BODY_BYTES} bytes")
    if length <= 0:
        raise _HTTPError(400, "empty request body")
    return environ["wsgi.input"].read(length)


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One thread per request so event streaming can't starve polls."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Request handler with per-request stderr logging switched off."""

    def log_message(self, format: str, *args: Any) -> None:
        pass


def serve(app: ServiceApp, host: str = "127.0.0.1", port: int = 0,
          quiet: bool = False):
    """A ready-to-run threaded WSGI server bound to ``(host, port)``.

    ``port=0`` binds an ephemeral port (tests); read the actual one
    from ``server.server_address[1]``.  Call ``serve_forever()`` to
    block, ``shutdown()`` from another thread to stop.  ``quiet``
    suppresses the per-request access log on stderr.
    """
    return make_server(host, port, app, server_class=_ThreadingWSGIServer,
                       handler_class=_QuietHandler if quiet
                       else WSGIRequestHandler)
