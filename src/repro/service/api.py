"""Stdlib-only WSGI REST API for the simulation service.

No framework, no new dependency: a plain WSGI callable
(:class:`ServiceApp`) served by ``wsgiref``'s threading server
(:func:`serve`).  Endpoints (all JSON unless noted):

========  =============================  =====================================
Method    Path                           Purpose
========  =============================  =====================================
GET       ``/api/v1/health``             liveness + schema/queue snapshot
POST      ``/api/v1/jobs``               submit a scenario / sweep / faultsweep
GET       ``/api/v1/jobs``               list jobs (``?state=queued``)
GET       ``/api/v1/jobs/{id}``          job status incl. cell outcomes
GET       ``/api/v1/jobs/{id}/events``   schema-v1 JSONL event stream
                                         (``?follow=1`` tails a running job)
GET       ``/api/v1/jobs/{id}/result``   full result payloads
                                         (``?format=csv`` → summary CSV)
GET       ``/api/v1/results/{digest}``   one cached cell by content digest
GET       ``/metrics``                   Prometheus text exposition
========  =============================  =====================================

Submissions are validated eagerly — every config must parse and pass
``is_valid()`` *before* the job row is created, so a bad request is a
400, never a failed job.  The events endpoint re-serves the worker's
JSONL log straight from the store as a chunked/streamed body; with
``follow=1`` it polls until the job reaches a terminal state, which is
how a client tails live progress over plain HTTP (``?after=N`` resumes
a dropped stream from sequence N).

Graceful degradation (the host-side resilience layer):

* ``GET /healthz`` — pure liveness, never touches the store.
* ``GET /readyz`` — readiness: 503 (with ``Retry-After``) while the
  store circuit breaker is open or the job backlog exceeds the
  ``max_queue_depth`` watermark.
* Submissions are load-shed with a 503 + ``Retry-After`` instead of
  queueing without bound, and every store-touching route is guarded by
  a shared :class:`~repro.service.resilience.CircuitBreaker`: repeated
  store failures flip requests to fast 503s instead of hammering a
  sick database.
* Every request carries a :class:`~repro.service.resilience.Deadline`;
  overrunning it is a 503, not a hung connection.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from io import StringIO
from socketserver import ThreadingMixIn
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional
from urllib.parse import parse_qs
from wsgiref.simple_server import (WSGIRequestHandler, WSGIServer,
                                   make_server)

from ..experiments.results import to_csv
from ..experiments.serialize import RESULT_SCHEMA_VERSION, result_from_json
from ..telemetry.export import to_prometheus
from ..telemetry.metrics import MetricsRegistry
from .cache import CellCache
from .queue import JOB_KINDS, JOB_STATES, JobQueue
from .resilience import CircuitBreaker, Deadline, DeadlineExceeded
from .store import SCHEMA_VERSION, SQLiteStore
from .worker import expand_job

#: Terminal job states (the events endpoint stops following at these).
_TERMINAL = ("done", "failed")

#: Routes that must answer even when the store is sick: liveness,
#: readiness, and metrics never cross the circuit breaker.
_UNGUARDED_ROUTES = frozenset({"/healthz", "/readyz", "/metrics",
                               "unmatched"})


class _HTTPError(Exception):
    """Internal control flow: becomes a JSON error response."""

    def __init__(self, status: int, message: str,
                 headers: Optional[List] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or []


_STATUS_TEXT = {
    200: "200 OK",
    201: "201 Created",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    413: "413 Payload Too Large",
    500: "500 Internal Server Error",
    503: "503 Service Unavailable",
}

#: Submission body size cap (a 20k-cell sweep is ~10 MB of configs).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceApp:
    """The WSGI application: routes requests onto store/queue/cache."""

    def __init__(self, store: SQLiteStore, queue: JobQueue,
                 cache: CellCache,
                 metrics: Optional[MetricsRegistry] = None,
                 follow_poll_interval: float = 0.1,
                 follow_timeout: float = 600.0,
                 breaker: Optional[CircuitBreaker] = None,
                 max_queue_depth: int = 256,
                 request_deadline: float = 30.0,
                 retry_after: float = 1.0) -> None:
        self.store = store
        self.queue = queue
        self.cache = cache
        self.metrics = metrics if metrics is not None else cache.metrics
        self.follow_poll_interval = follow_poll_interval
        self.follow_timeout = follow_timeout
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            name="store", metrics=self.metrics)
        self.max_queue_depth = max_queue_depth
        self.request_deadline = request_deadline
        self.retry_after = retry_after
        self._requests = self.metrics.counter(
            "service_http_requests_total", "API requests by route/status")
        self._submitted = self.metrics.counter(
            "service_jobs_submitted_total", "jobs accepted by kind")
        self._shed = self.metrics.counter(
            "service_requests_shed_total",
            "requests answered 503 by the resilience layer (by reason)")
        self._shed.inc(0.0, reason="backlog")

    # -- WSGI entry ---------------------------------------------------------

    def __call__(self, environ: Dict[str, Any],
                 start_response: Callable) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        query = parse_qs(environ.get("QUERY_STRING", ""))
        deadline = Deadline(self.request_deadline)
        route = "unmatched"
        guarded = False
        try:
            route, handler, args = self._route(method, path)
            guarded = route not in _UNGUARDED_ROUTES
            if guarded and not self.breaker.allow():
                self._shed.inc(reason="breaker")
                raise _HTTPError(
                    503, "service degraded: store circuit breaker open",
                    headers=self._retry_after_headers())
            response = handler(environ, query, deadline, *args)
            if guarded:
                self.breaker.record_success()
        except _HTTPError as exc:
            response = _json_response(exc.status, {"error": exc.message},
                                      extra_headers=exc.headers)
        except DeadlineExceeded as exc:
            self._shed.inc(reason="deadline")
            response = _json_response(503, {"error": str(exc)},
                                      extra_headers=self._retry_after_headers())
        except Exception as exc:  # lint: ignore[SIM007]
            # The server must answer every request; anything unplanned
            # becomes a 500 with the exception type as the hint — and
            # a failure signal to the breaker, so a persistently sick
            # store degrades into fast 503s instead of an error storm.
            if guarded:
                self.breaker.record_failure()
            response = _json_response(
                500, {"error": f"{type(exc).__name__}: {exc}"})
        status, headers, body = response
        self._requests.inc(route=route, status=str(status))
        start_response(_STATUS_TEXT[status], headers)
        return body

    def _retry_after_headers(self) -> List:
        return [("Retry-After", f"{max(1, round(self.retry_after))}")]

    def _route(self, method: str, path: str):
        parts = [p for p in path.split("/") if p]
        if path == "/metrics":
            self._require(method, "GET")
            return "/metrics", self._h_metrics, ()
        if path == "/healthz":
            self._require(method, "GET")
            return "/healthz", self._h_healthz, ()
        if path == "/readyz":
            self._require(method, "GET")
            return "/readyz", self._h_readyz, ()
        if parts[:2] == ["api", "v1"]:
            tail = parts[2:]
            if tail == ["health"]:
                self._require(method, "GET")
                return "/api/v1/health", self._h_health, ()
            if tail == ["jobs"]:
                if method == "POST":
                    return "/api/v1/jobs", self._h_submit, ()
                self._require(method, "GET")
                return "/api/v1/jobs", self._h_list_jobs, ()
            if len(tail) >= 2 and tail[0] == "jobs":
                job_id = self._int(tail[1], "job id")
                if len(tail) == 2:
                    self._require(method, "GET")
                    return "/api/v1/jobs/{id}", self._h_job, (job_id,)
                if tail[2:] == ["events"]:
                    self._require(method, "GET")
                    return ("/api/v1/jobs/{id}/events",
                            self._h_events, (job_id,))
                if tail[2:] == ["result"]:
                    self._require(method, "GET")
                    return ("/api/v1/jobs/{id}/result",
                            self._h_result, (job_id,))
            if len(tail) == 2 and tail[0] == "results":
                self._require(method, "GET")
                return ("/api/v1/results/{digest}",
                        self._h_result_by_digest, (tail[1],))
        raise _HTTPError(404, f"no route for {method} {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HTTPError(405, f"method {method} not allowed here")

    @staticmethod
    def _int(text: str, what: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise _HTTPError(400, f"bad {what}: {text!r}") from None

    # -- handlers -----------------------------------------------------------

    def _h_health(self, environ, query, deadline):
        return _json_response(200, {
            "status": "ok",
            "store_schema": SCHEMA_VERSION,
            "result_schema": RESULT_SCHEMA_VERSION,
            "jobs": self.queue.counts(),
            "cached_results": len(self.cache),
        })

    def _h_healthz(self, environ, query, deadline):
        """Pure liveness: the process answers, nothing else checked."""
        return _json_response(200, {"status": "ok"})

    def _h_readyz(self, environ, query, deadline):
        """Readiness: degraded while the breaker is open or backlogged."""
        reasons: List[str] = []
        breaker_state = self.breaker.state
        if breaker_state == "open":
            reasons.append("store circuit breaker open")
        backlog = None
        try:
            counts = self.queue.counts()
        except sqlite3.Error as exc:
            reasons.append(f"store unavailable: {exc}")
        else:
            backlog = counts["queued"] + counts["running"]
            # Same threshold submission shedding uses: at the
            # watermark the service is already refusing new jobs.
            if backlog >= self.max_queue_depth:
                reasons.append(f"job backlog {backlog} at watermark "
                               f"{self.max_queue_depth}")
        doc = {
            "status": "ready" if not reasons else "degraded",
            "breaker": breaker_state,
            "backlog": backlog,
            "watermark": self.max_queue_depth,
            "reasons": reasons,
        }
        if not reasons:
            return _json_response(200, doc)
        return _json_response(503, doc,
                              extra_headers=self._retry_after_headers())

    def _h_metrics(self, environ, query, deadline):
        text = to_prometheus(self.metrics)
        return (200,
                [("Content-Type", "text/plain; version=0.0.4; "
                                  "charset=utf-8")],
                [text.encode("utf-8")])

    def _h_submit(self, environ, query, deadline):
        backlog = self.queue.counts()
        depth = backlog["queued"] + backlog["running"]
        if depth >= self.max_queue_depth:
            self._shed.inc(reason="backlog")
            raise _HTTPError(
                503, f"job backlog at capacity ({depth} >= "
                     f"{self.max_queue_depth}); retry later",
                headers=self._retry_after_headers())
        body = _read_body(environ)
        try:
            request = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HTTPError(400, f"request body is not JSON: {exc}") \
                from None
        if not isinstance(request, dict):
            raise _HTTPError(400, "request body must be a JSON object")
        kind = request.get("kind", "scenario")
        if kind not in JOB_KINDS:
            raise _HTTPError(400, f"unknown kind {kind!r} "
                                  f"(expected one of {JOB_KINDS})")
        payload = {k: v for k, v in request.items() if k != "kind"}
        try:
            configs = expand_job(payload, kind)
        except (KeyError, TypeError, ValueError) as exc:
            raise _HTTPError(400, f"bad submission: {exc}") from None
        job_id = self.queue.submit(kind, payload, n_cells=len(configs))
        self._submitted.inc(kind=kind)
        # The advertised digests are the *storage keys* the job will
        # use (scale-namespaced when the job overrides the workflow),
        # so each one is addressable via /api/v1/results/{digest}.
        cache = self.cache.for_scale(payload.get("scale"))
        return _json_response(201, {
            "job_id": job_id,
            "kind": kind,
            "n_cells": len(configs),
            "digests": [cache.key(c) for c in configs],
        })

    def _h_list_jobs(self, environ, query, deadline):
        state = query.get("state", [None])[0]
        if state is not None and state not in JOB_STATES:
            raise _HTTPError(400, f"unknown state {state!r}")
        limit = self._int(query.get("limit", ["100"])[0], "limit")
        jobs = self.queue.list_jobs(state=state, limit=limit)
        return _json_response(200, {
            "jobs": [j.status_dict() for j in jobs]})

    def _h_job(self, environ, query, deadline, job_id: int):
        job = self.queue.get(job_id)
        if job is None:
            raise _HTTPError(404, f"no job {job_id}")
        status = job.status_dict()
        status["cells"] = self.store.cell_rows(job_id)
        return _json_response(200, status)

    def _h_events(self, environ, query, deadline, job_id: int):
        if self.queue.get(job_id) is None:
            raise _HTTPError(404, f"no job {job_id}")
        follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
        after = self._int(query.get("after", ["0"])[0], "after")
        body = self._event_stream(job_id, follow, after_seq=after)
        return (200, [("Content-Type", "application/x-ndjson")], body)

    def _event_stream(self, job_id: int, follow: bool,
                      after_seq: int = 0) -> Iterator[bytes]:
        """Yield event lines; with ``follow``, tail until terminal.

        Yielding per line makes the WSGI server flush each chunk as it
        is produced (chunked transfer under HTTP/1.1, progressive body
        otherwise), which is what lets a client watch a running sweep.
        ``after_seq`` skips already-delivered lines so a client can
        resume a dropped stream without replaying from the start.
        """
        last_seq = after_seq
        waited = 0.0
        done_event = threading.Event()  # purely a sleep primitive
        while True:
            for seq, line in self.store.events_after(job_id, last_seq):
                last_seq = seq
                yield (line + "\n").encode("utf-8")
            if not follow:
                return
            job = self.queue.get(job_id)
            if job is None or job.state in _TERMINAL:
                # Drain whatever raced in between the read and the
                # state check, then stop.
                for seq, line in self.store.events_after(job_id, last_seq):
                    last_seq = seq
                    yield (line + "\n").encode("utf-8")
                return
            if waited >= self.follow_timeout:
                return
            done_event.wait(self.follow_poll_interval)
            waited += self.follow_poll_interval

    def _h_result(self, environ, query, deadline, job_id: int):
        job = self.queue.get(job_id)
        if job is None:
            raise _HTTPError(404, f"no job {job_id}")
        if job.state not in _TERMINAL:
            raise _HTTPError(404, f"job {job_id} is {job.state}; "
                                  f"results are available once done")
        cells = self.store.cell_rows(job_id)
        fmt = query.get("format", ["json"])[0]
        if fmt == "csv":
            results = []
            for cell in cells:
                deadline.check("result assembly")
                if cell["digest"] is None:
                    continue
                payload = self.store.get_result(cell["digest"])
                if payload is not None:
                    results.append(result_from_json(payload))
            return (200, [("Content-Type", "text/csv; charset=utf-8")],
                    [to_csv(results).encode("utf-8")])
        if fmt != "json":
            raise _HTTPError(400, f"unknown format {fmt!r}")
        out: List[Dict[str, Any]] = []
        for cell in cells:
            deadline.check("result assembly")
            entry: Dict[str, Any] = {
                "cell_index": cell["cell_index"],
                "label": cell["label"],
                "digest": cell["digest"],
                "cached": cell["cached"],
                "error": cell["error"],
                "result": None,
            }
            if cell["digest"] is not None:
                payload = self.store.get_result(cell["digest"])
                if payload is not None:
                    entry["result"] = json.loads(payload)
            out.append(entry)
        return _json_response(200, {
            "job": job.status_dict(),
            "cells": out,
        })

    def _h_result_by_digest(self, environ, query, deadline, digest: str):
        payload = self.store.get_result(digest)
        if payload is None:
            raise _HTTPError(404, f"no cached result for digest "
                                  f"{digest[:16]}...")
        return (200, [("Content-Type", "application/json")],
                [payload.encode("utf-8")])


# -- helpers ----------------------------------------------------------------


def _json_response(status: int, doc: Dict[str, Any],
                   extra_headers: Optional[List] = None):
    body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
    headers = [("Content-Type", "application/json"),
               ("Content-Length", str(len(body)))]
    if extra_headers:
        headers.extend(extra_headers)
    return (status, headers, [body])


def _read_body(environ: Dict[str, Any]) -> bytes:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except ValueError:
        length = 0
    if length > MAX_BODY_BYTES:
        raise _HTTPError(413, f"request body over {MAX_BODY_BYTES} bytes")
    if length <= 0:
        raise _HTTPError(400, "empty request body")
    return environ["wsgi.input"].read(length)


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One thread per request so event streaming can't starve polls."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Request handler with per-request stderr logging switched off."""

    def log_message(self, format: str, *args: Any) -> None:
        pass

    def get_stderr(self):
        # Quiet also covers mid-response tracebacks (e.g. a chaos
        # middleware aborting a connection on purpose): wsgiref's
        # error handler writes into a discarded buffer instead of the
        # process stderr.
        return StringIO()


def serve(app: ServiceApp, host: str = "127.0.0.1", port: int = 0,
          quiet: bool = False):
    """A ready-to-run threaded WSGI server bound to ``(host, port)``.

    ``port=0`` binds an ephemeral port (tests); read the actual one
    from ``server.server_address[1]``.  Call ``serve_forever()`` to
    block, ``shutdown()`` from another thread to stop.  ``quiet``
    suppresses the per-request access log on stderr.
    """
    return make_server(host, port, app, server_class=_ThreadingWSGIServer,
                       handler_class=_QuietHandler if quiet
                       else WSGIRequestHandler)
