"""Content-addressed cell cache keyed by ``ExperimentConfig.digest()``.

The determinism contract (every cell is a pure function of
``(ExperimentConfig, seed)``, with the seed part of the config) makes
result caching sound: equal digest ⇒ equal scenario ⇒ bit-identical
result.  :class:`CellCache` fronts the store's ``results`` table with
that contract plus hit/miss telemetry, turning a repeated sweep from
O(cells) simulation into O(new cells) — the workload shape the
companion EC2 studies imply (large near-identical configuration
sweeps).

Hits are served by losslessly deserializing the stored payload
(:mod:`repro.experiments.serialize`), so a cached result carries the
same makespan, cost, metrics snapshot, and Prometheus exposition as
the run that produced it.  Misses are *not* negative-cached: the
absence of a row simply means "simulate".

Counters — the ``sweep.cache.{hit,miss}`` pair, spelled in valid
Prometheus metric grammar: ``sweep_cache_hits_total`` /
``sweep_cache_misses_total``, labelled by app and storage system, and
``sweep_cache_stored_results`` (a gauge of distinct cells in the
store).  They register in whatever
:class:`~repro.telemetry.metrics.MetricsRegistry` the cache is handed
— the service wires its own registry through to the ``/metrics``
Prometheus exposition.
"""

from __future__ import annotations

from typing import Optional

from ..experiments.config import ExperimentConfig
from ..experiments.runner import ExperimentResult
from ..experiments.serialize import result_from_json, result_to_json
from ..telemetry.metrics import MetricsRegistry
from .store import SQLiteStore


class CellCache:
    """Store-backed result cache with the ``get``/``put`` sweep shape.

    Pass an instance as ``run_sweep(..., cache=...)``: the sweep looks
    every cell up before simulating and stores every fresh result.
    """

    def __init__(self, store: SQLiteStore,
                 metrics: Optional[MetricsRegistry] = None,
                 namespace: str = "") -> None:
        self.store = store
        self.namespace = namespace
        # Default to the store's registry so cache hit/miss counters,
        # the store's retry counters, and the breaker gauge all land in
        # the same /metrics exposition without explicit plumbing.
        self.metrics = metrics if metrics is not None else store.metrics
        self._hits = self.metrics.counter(
            "sweep_cache_hits_total",
            "sweep cells served from the content-addressed result store")
        self._misses = self.metrics.counter(
            "sweep_cache_misses_total",
            "sweep cells that had to be simulated")
        self._stored = self.metrics.gauge(
            "sweep_cache_stored_results",
            "distinct cells in the content-addressed result store")

    def key(self, config: ExperimentConfig) -> str:
        """The storage key for this scenario.

        ``config.digest()`` alone is only sound when every run of the
        config simulates the same workflow — a ``workflow_factory``
        override (e.g. the service's ``scale: "small"`` smoke jobs)
        changes the computation without changing the config, so scoped
        caches prefix the digest with their namespace to keep those
        result universes apart.
        """
        digest = config.digest()
        return f"{self.namespace}:{digest}" if self.namespace else digest

    def scoped(self, namespace: str) -> "CellCache":
        """A view of this cache keyed under ``namespace``.

        Shares the store and the telemetry instruments (the registry
        get-or-creates by name), so hit/miss counts aggregate across
        scopes while the cached results never mix.
        """
        if namespace == self.namespace:
            return self
        return CellCache(self.store, metrics=self.metrics,
                         namespace=namespace)

    def for_scale(self, scale: Optional[str]) -> "CellCache":
        """The cache view for a job's workflow scale.

        ``None``/``"paper"`` is the base (unprefixed) cache; any other
        scale — e.g. the down-scaled ``"small"`` smoke workflows —
        gets its own namespace, because it simulates a different
        workflow for the same config digest.
        """
        if scale in (None, "paper"):
            return self if self.namespace == "" \
                else CellCache(self.store, metrics=self.metrics)
        return self.scoped(str(scale))

    def get(self, config: ExperimentConfig) -> Optional[ExperimentResult]:
        """The cached result for this scenario, or None (counted)."""
        payload = self.store.get_result(self.key(config))
        if payload is None:
            self._misses.inc(app=config.app, storage=config.storage)
            return None
        self._hits.inc(app=config.app, storage=config.storage)
        return result_from_json(payload)

    def peek(self, config: ExperimentConfig) -> bool:
        """Whether a result is cached, without counting a lookup."""
        return self.store.has_result(self.key(config))

    def put(self, config: ExperimentConfig,
            result: ExperimentResult) -> bool:
        """Store one result under its scenario digest.

        Returns False when the digest was already present (idempotent:
        the racing writer's payload is byte-identical by determinism).
        """
        stored = self.store.put_result(
            self.key(config), config.label, result_to_json(result))
        self._stored.set(self.store.result_count())
        return stored

    @property
    def hits(self) -> float:
        """Total cache hits counted so far."""
        return self._hits.total()

    @property
    def misses(self) -> float:
        """Total cache misses counted so far."""
        return self._misses.total()

    def __len__(self) -> int:
        return self.store.result_count()
