"""Seeded fault injection for the *host-side* service stack.

This is the chaos-engineering counterpart to :mod:`repro.faults`: that
module injects failures *inside* the simulated world (task crashes,
storage errors as modelled events), while this one breaks the real
machinery running the service — the SQLite store, the HTTP surface,
and the worker thread itself.  The two never mix: chaos here may delay
or kill host threads, but it cannot reach simulation state, so every
cell that does complete is still bit-identical to a fault-free run.
That determinism is the test oracle — under any chaos schedule, every
submitted job must end ``done`` (with correct, cache-idempotent
results) or ``failed`` with a recorded reason; nothing may be lost,
double-counted, or corrupted.

Everything is driven by one :class:`ChaosSchedule`: per-channel
substreams of ``repro.simcore.rand.substream`` (the sanctioned seeded
RNG), so a given ``ChaosSpec(seed=...)`` replays the same fault
pattern per channel regardless of thread interleaving elsewhere.

Injection points, each *below* the recovery layer it exercises:

:class:`FlakySQLiteStore`
    Overrides the :meth:`SQLiteStore._db_execute` seam, so injected
    ``database is locked`` errors and stalls hit *under* the store's
    retry policy — exactly where real contention surfaces.
:class:`ChaosMiddleware`
    WSGI wrapper around :class:`~repro.service.api.ServiceApp`:
    delays, pre-app 503s (never after the handler ran, so a failed
    submit is always safely retryable), and mid-body connection drops
    on idempotent GETs — what the client's retry/resume paths exist
    for.
:class:`WorkerKiller`
    Raises :class:`WorkerKilled` (a ``BaseException``) from the
    worker's job/cell hooks, escaping ``run_job``'s ``except
    Exception`` like a real thread death — the supervisor's recovery
    path.

With no schedule attached (the production default — ``chaos=None``
everywhere) none of this code runs: the store seam is a direct call,
the middleware isn't in the WSGI chain, and the worker hooks are
skipped, so idle overhead is zero and behaviour is bit-identical to a
build without this module.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, Optional

from ..lint.lockwatch import guard, new_lock
from ..simcore.rand import substream
from .store import SQLiteStore

#: Channels a schedule draws from (one independent substream each).
CHANNELS = ("store.error", "store.delay", "http.error", "http.delay",
            "http.drop", "kill.job", "kill.cell")


@dataclass(frozen=True)
class ChaosSpec:
    """One reproducible chaos scenario: a seed plus per-fault rates.

    All rates are per-opportunity probabilities in ``[0, 1]``; a rate
    of 0 disables that channel.  The default spec injects nothing.
    """

    seed: int = 0
    #: P(a raw store statement raises ``database is locked``).
    store_error_rate: float = 0.0
    #: P(a raw store statement stalls for ``store_delay_seconds``).
    store_delay_rate: float = 0.0
    store_delay_seconds: float = 0.005
    #: P(a request is answered 503 *before* reaching the app).
    http_error_rate: float = 0.0
    #: P(a request stalls for ``http_delay_seconds`` before the app).
    http_delay_rate: float = 0.0
    http_delay_seconds: float = 0.01
    #: P(a GET response is cut mid-body after the app ran).
    http_drop_rate: float = 0.0
    #: P(the worker thread dies at job pickup).
    kill_job_rate: float = 0.0
    #: P(the worker thread dies after finishing a cell).
    kill_cell_rate: float = 0.0

    def enabled(self) -> bool:
        """Whether any channel can fire."""
        return any(rate > 0.0 for rate in (
            self.store_error_rate, self.store_delay_rate,
            self.http_error_rate, self.http_delay_rate,
            self.http_drop_rate, self.kill_job_rate,
            self.kill_cell_rate))


class ChaosSchedule:
    """Seeded per-channel coin flips, with injection accounting.

    Each channel draws from its own substream, so e.g. adding HTTP
    faults to a spec never changes *which* store statements fail.
    ``injected`` counts fires per channel — tests assert on it to
    prove the schedule actually exercised the paths under test.
    """

    def __init__(self, spec: ChaosSpec) -> None:
        self.spec = spec
        self._lock = new_lock("chaos.schedule")
        self._armed = True
        self._rngs = {channel: substream(spec.seed, "service.chaos", channel)
                      for channel in CHANNELS}
        # Mutated only inside _hit()/calm() under the schedule lock;
        # tests snapshot-read it freely (the published convention).
        self.injected: Dict[str, int] = guard(
            {channel: 0 for channel in CHANNELS},
            lock="chaos.schedule", name="chaos.injected")

    def _hit(self, channel: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        with self._lock:
            if not self._armed:
                return False
            hit = float(self._rngs[channel].random()) < rate
            if hit:
                self.injected[channel] += 1
            return hit

    @contextmanager
    def calm(self) -> Iterator[None]:
        """Suspend all injection inside the block.

        Used around oracle checks (``PRAGMA integrity_check``, final
        result fetches) so verification reads the real state instead
        of fighting the faults it is trying to measure.
        """
        with self._lock:
            self._armed = False
        try:
            yield
        finally:
            with self._lock:
                self._armed = True

    # -- per-layer decisions -------------------------------------------------

    def store_action(self) -> Optional[str]:
        """``"error"`` / ``"delay"`` / None for one raw statement."""
        if self._hit("store.error", self.spec.store_error_rate):
            return "error"
        if self._hit("store.delay", self.spec.store_delay_rate):
            return "delay"
        return None

    def http_action(self, method: str) -> Optional[str]:
        """``"error"`` / ``"delay"`` / ``"drop"`` / None per request.

        Drops only apply to GETs: cutting a POST response would leave
        the client unsure whether the job was enqueued, which is a
        semantics the API deliberately never exposes (errors are
        injected pre-app instead).
        """
        if self._hit("http.error", self.spec.http_error_rate):
            return "error"
        if self._hit("http.delay", self.spec.http_delay_rate):
            return "delay"
        if method == "GET" and self._hit("http.drop",
                                         self.spec.http_drop_rate):
            return "drop"
        return None

    def kill_now(self, point: str) -> bool:
        """Whether to kill the worker at ``"job"`` pickup or a ``"cell"``."""
        rate = (self.spec.kill_job_rate if point == "job"
                else self.spec.kill_cell_rate)
        return self._hit(f"kill.{point}", rate)

    def total_injected(self) -> int:
        """All fault injections so far, across channels."""
        with self._lock:
            return sum(self.injected.values())


class FlakySQLiteStore(SQLiteStore):
    """A store whose raw statements randomly stall or report contention.

    Faults land in the :meth:`_db_execute` seam — *below*
    ``execute``/``query``/``run_in_transaction`` and their
    :class:`~repro.service.resilience.HostRetryPolicy` — so they are
    indistinguishable from real ``database is locked`` contention.
    Construction and migration run clean (the chaos arms only after
    ``__init__`` returns), mirroring the deployment reality that a
    database that never opened is a different failure class.
    """

    def __init__(self, path: str = ":memory:",
                 schedule: Optional[ChaosSchedule] = None,
                 **kwargs: Any) -> None:
        self._chaos: Optional[ChaosSchedule] = None
        super().__init__(path, **kwargs)
        self._chaos = schedule

    def _db_execute(self, sql: str, params: Any = ()) -> sqlite3.Cursor:
        chaos = self._chaos
        if chaos is not None:
            action = chaos.store_action()
            if action == "delay":
                time.sleep(chaos.spec.store_delay_seconds)
            elif action == "error":
                raise sqlite3.OperationalError(
                    "database is locked (chaos)")
        return super()._db_execute(sql, params)


class ChaosDrop(Exception):
    """Raised mid-body to abort a WSGI response on purpose.

    By the time it fires the status line and a partial body are on the
    wire, so wsgiref can only close the socket — the client observes a
    truncated response (``IncompleteRead`` / connection reset),
    exactly the failure :meth:`ServiceClient.stream_events` resumes
    across.
    """


class ChaosMiddleware:
    """WSGI wrapper injecting delays, 503s, and connection drops.

    Ordering guarantees that keep the oracle sound:

    * Errors fire *before* the app — a 503'd submit enqueued nothing,
      so the client (or test harness) can retry it without risking a
      duplicate job.
    * Drops fire *after* the app on GETs only — the request's effects
      are committed; only the response is lost, which is what
      idempotent-GET retry is for.
    """

    def __init__(self, app: Any, schedule: ChaosSchedule) -> None:
        self.app = app
        self.schedule = schedule

    def __call__(self, environ: Dict[str, Any],
                 start_response: Any) -> Iterable[bytes]:
        action = self.schedule.http_action(
            environ.get("REQUEST_METHOD", "GET"))
        if action == "delay":
            time.sleep(self.schedule.spec.http_delay_seconds)
        elif action == "error":
            body = json.dumps(
                {"error": "injected fault (chaos): try again"}
            ).encode("utf-8")
            start_response("503 Service Unavailable", [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(body))),
                ("Retry-After", "1"),
            ])
            return [body]
        result = self.app(environ, start_response)
        if action == "drop":
            return self._truncated(result)
        return result

    @staticmethod
    def _truncated(result: Iterable[bytes]) -> Iterator[bytes]:
        """Yield half of the first chunk, then kill the connection."""
        iterator = iter(result)
        try:
            first = next(iterator, b"")
            if not first:
                # Nothing to truncate: an empty body can't be cut in a
                # client-visible way, so let it through untouched.
                return
            # Always at least 1 byte (headers must hit the wire so the
            # failure is a truncation, not a clean 500) and always
            # fewer than all of them.
            yield first[: (len(first) + 1) // 2]
            raise ChaosDrop("injected mid-body connection drop")
        finally:
            close = getattr(result, "close", None)
            if close is not None:
                close()


class WorkerKilled(BaseException):
    """A chaos kill of the worker thread.

    Deliberately a ``BaseException``: it must sail through
    ``run_job``'s ``except Exception`` exactly like a real thread
    death (``MemoryError``, interpreter teardown) would, so what the
    tests exercise is the supervisor's recovery path, not an ordinary
    error branch.
    """


class WorkerKiller:
    """The ``chaos=`` hook object for :class:`ServiceWorker`.

    ``on_job`` fires at job pickup (before any cell ran); ``on_cell``
    after each completed cell — both may raise :class:`WorkerKilled`.
    A no-op schedule makes both hooks free.
    """

    def __init__(self, schedule: ChaosSchedule) -> None:
        self.schedule = schedule

    def on_job(self, job: Any) -> None:
        if self.schedule.kill_now("job"):
            raise WorkerKilled(f"chaos kill at pickup of job {job.id}")

    def on_cell(self, job: Any, n_done: int) -> None:
        if self.schedule.kill_now("cell"):
            raise WorkerKilled(
                f"chaos kill in job {job.id} after cell {n_done}")


@dataclass
class ChaosHarness:
    """A fully wired service stack under one chaos schedule.

    Built by :func:`chaos_service`; ``stop()`` tears everything down
    in dependency order.  The HTTP server runs only when the harness
    was built with ``http=True``.
    """

    schedule: ChaosSchedule
    store: FlakySQLiteStore
    queue: Any
    cache: Any
    worker: Any
    app: Any
    server: Any = None
    base_url: str = ""
    _server_thread: Optional[threading.Thread] = field(
        default=None, repr=False)

    def client(self, **kwargs: Any) -> Any:
        """A :class:`ServiceClient` pointed at the running server."""
        from .client import ServiceClient
        if not self.base_url:
            raise RuntimeError("harness built with http=False")
        kwargs.setdefault("timeout", 10.0)
        return ServiceClient(self.base_url, **kwargs)

    def stop(self, timeout: float = 15.0) -> bool:
        """Shut down server + worker + store; True when fully drained."""
        if self.server is not None:
            self.server.shutdown()
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
            self.server.server_close()
            self.server = None
        drained = self.worker.stop(timeout=timeout)
        self.store.close()
        return drained


def chaos_service(spec: ChaosSpec, db_path: str = ":memory:",
                  http: bool = True,
                  lease_seconds: float = 2.0,
                  max_attempts: int = 8,
                  poll_interval: float = 0.02,
                  crash_dir: Optional[str] = None,
                  start_worker: bool = True) -> ChaosHarness:
    """Stand up the whole service with ``spec``'s faults armed.

    Used by the chaos property tests and ``scripts/chaos_smoke.py``.
    ``max_attempts`` defaults higher than production because kill
    rates in tests are far above anything a real deployment sees; the
    short lease keeps whole-process-death recovery fast enough for a
    test run.
    """
    from .api import ServiceApp, serve
    from .cache import CellCache
    from .queue import JobQueue
    from .worker import ServiceWorker

    schedule = ChaosSchedule(spec)
    store = FlakySQLiteStore(db_path, schedule=schedule)
    queue = JobQueue(store, max_attempts=max_attempts)
    cache = CellCache(store)
    worker = ServiceWorker(
        store, queue, cache, poll_interval=poll_interval,
        lease_seconds=lease_seconds, crash_dir=crash_dir,
        chaos=WorkerKiller(schedule))
    app = ServiceApp(store, queue, cache, request_deadline=10.0)
    harness = ChaosHarness(schedule=schedule, store=store, queue=queue,
                           cache=cache, worker=worker, app=app)
    if http:
        wrapped = ChaosMiddleware(app, schedule)
        server = serve(wrapped, host="127.0.0.1", port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever,
                                  name="chaos-http", daemon=True)
        thread.start()
        harness.server = server
        harness._server_thread = thread
        harness.base_url = f"http://127.0.0.1:{server.server_address[1]}"
    if start_worker:
        worker.start()
    return harness
