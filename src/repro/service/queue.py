"""Leased job queue over the SQLite store.

The queue implements the classic lease/ack protocol so a worker crash
can never lose a job:

* ``submit`` inserts a ``queued`` row.
* ``lease`` atomically claims the oldest ``queued`` job for one owner
  and marks it ``running`` with a lease deadline.
* ``complete`` / ``fail`` finish the job.
* A worker that dies mid-job simply stops heartbeating; once its lease
  expires, :meth:`JobQueue.release_expired` flips the job back to
  ``queued`` (attempt count preserved) and another worker picks it up.
  Jobs that keep dying are failed after :attr:`JobQueue.max_attempts`.

Determinism note: re-running a job is always safe — every cell is a
pure function of ``(ExperimentConfig, seed)`` and the result store is
content-addressed, so a retried job re-derives byte-identical rows.

The wall clock is injectable (``clock=``) so tests can expire leases
without sleeping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..observe.hostclock import wall_now
from .store import SQLiteStore

#: Legal job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed")

#: Legal job kinds: a single scenario, a config sweep, or a fault
#: sweep (a base scenario expanded over error rates / MTBF points).
JOB_KINDS = ("scenario", "sweep", "faultsweep")

#: Default lease duration, seconds.
DEFAULT_LEASE_SECONDS = 300.0


@dataclass
class JobRow:
    """One queue row, payload already parsed."""

    id: int
    kind: str
    state: str
    payload: Dict[str, Any]
    submitted_ts: float
    started_ts: Optional[float]
    finished_ts: Optional[float]
    lease_owner: Optional[str]
    lease_expires_ts: Optional[float]
    attempts: int
    error: Optional[str]
    n_cells: int
    n_done: int
    n_failed: int
    n_cache_hits: int

    def status_dict(self) -> Dict[str, Any]:
        """JSON-compatible status view (served by the API)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "attempts": self.attempts,
            "error": self.error,
            "n_cells": self.n_cells,
            "n_done": self.n_done,
            "n_failed": self.n_failed,
            "n_cache_hits": self.n_cache_hits,
        }


def _row_to_job(row: Any) -> JobRow:
    return JobRow(
        id=int(row["id"]),
        kind=row["kind"],
        state=row["state"],
        payload=json.loads(row["payload"]),
        submitted_ts=row["submitted_ts"],
        started_ts=row["started_ts"],
        finished_ts=row["finished_ts"],
        lease_owner=row["lease_owner"],
        lease_expires_ts=row["lease_expires_ts"],
        attempts=int(row["attempts"]),
        error=row["error"],
        n_cells=int(row["n_cells"]),
        n_done=int(row["n_done"]),
        n_failed=int(row["n_failed"]),
        n_cache_hits=int(row["n_cache_hits"]),
    )


_SELECT = ("SELECT id, kind, state, payload, submitted_ts, started_ts, "
           "finished_ts, lease_owner, lease_expires_ts, attempts, error, "
           "n_cells, n_done, n_failed, n_cache_hits FROM jobs ")


class JobQueue:
    """The lease/ack queue protocol over one :class:`SQLiteStore`."""

    def __init__(self, store: SQLiteStore,
                 clock: Callable[[], float] = wall_now,
                 max_attempts: int = 3) -> None:
        self.store = store
        self.clock = clock
        self.max_attempts = max_attempts

    # -- producer side ------------------------------------------------------

    def submit(self, kind: str, payload: Dict[str, Any],
               n_cells: int = 0) -> int:
        """Enqueue one job; returns its id."""
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r} "
                             f"(expected one of {JOB_KINDS})")
        cur = self.store.execute(
            "INSERT INTO jobs (kind, state, payload, submitted_ts, n_cells) "
            "VALUES (?, 'queued', ?, ?, ?)",
            (kind, json.dumps(payload, sort_keys=True), self.clock(),
             n_cells))
        return int(cur.lastrowid)

    # -- consumer side ------------------------------------------------------

    def lease(self, owner: str,
              lease_seconds: float = DEFAULT_LEASE_SECONDS
              ) -> Optional[JobRow]:
        """Atomically claim the oldest queued job, or None when idle.

        Expired leases are reclaimed first, so a single polling worker
        both recovers crashed jobs and picks up new ones.
        """
        self.release_expired()
        now = self.clock()

        def _claim(conn) -> Optional[int]:
            row = conn.execute(
                _SELECT + "WHERE state = 'queued' ORDER BY id LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET state = 'running', lease_owner = ?, "
                "lease_expires_ts = ?, started_ts = ?, "
                "attempts = attempts + 1 WHERE id = ? AND state = 'queued'",
                (owner, now + lease_seconds, now, int(row["id"])))
            return int(row["id"])

        job_id = self.store.run_in_transaction(_claim, op="queue.lease")
        return self.get(job_id) if job_id is not None else None

    def heartbeat(self, job_id: int, owner: str,
                  lease_seconds: float = DEFAULT_LEASE_SECONDS) -> bool:
        """Extend a held lease; False when the lease was lost."""
        cur = self.store.execute(
            "UPDATE jobs SET lease_expires_ts = ? "
            "WHERE id = ? AND state = 'running' AND lease_owner = ?",
            (self.clock() + lease_seconds, job_id, owner))
        return cur.rowcount > 0

    def complete(self, job_id: int, n_done: int = 0, n_failed: int = 0,
                 n_cache_hits: int = 0) -> None:
        """Mark a running job done and record its cell counts."""
        self.store.execute(
            "UPDATE jobs SET state = 'done', finished_ts = ?, "
            "lease_owner = NULL, lease_expires_ts = NULL, n_done = ?, "
            "n_failed = ?, n_cache_hits = ? "
            "WHERE id = ? AND state = 'running'",
            (self.clock(), n_done, n_failed, n_cache_hits, job_id))

    def fail(self, job_id: int, error: str) -> None:
        """Mark a running job failed with an error message."""
        self.store.execute(
            "UPDATE jobs SET state = 'failed', finished_ts = ?, "
            "lease_owner = NULL, lease_expires_ts = NULL, error = ? "
            "WHERE id = ? AND state = 'running'",
            (self.clock(), error, job_id))

    def requeue(self, job_id: int) -> bool:
        """Put a running job back in the queue, attempts preserved.

        Used by the worker supervisor when it *observes* its thread
        die mid-job: instead of waiting out the lease, the job goes
        straight back to ``queued`` so a healthy worker (or the
        restarted one) picks it up immediately.  Returns False when
        the job was not running (already recovered elsewhere).
        """
        cur = self.store.execute(
            "UPDATE jobs SET state = 'queued', lease_owner = NULL, "
            "lease_expires_ts = NULL WHERE id = ? AND state = 'running'",
            (job_id,))
        return cur.rowcount > 0

    def update_progress(self, job_id: int, n_cells: Optional[int] = None,
                        n_done: Optional[int] = None,
                        n_failed: Optional[int] = None,
                        n_cache_hits: Optional[int] = None) -> None:
        """Update the live cell counters of a running job."""
        sets, params = [], []
        for column, value in (("n_cells", n_cells), ("n_done", n_done),
                              ("n_failed", n_failed),
                              ("n_cache_hits", n_cache_hits)):
            if value is not None:
                sets.append(f"{column} = ?")
                params.append(value)
        if not sets:
            return
        params.append(job_id)
        self.store.execute(
            f"UPDATE jobs SET {', '.join(sets)} WHERE id = ?", params)

    def release_expired(self) -> int:
        """Re-queue every running job whose lease has expired.

        Jobs that have already burned :attr:`max_attempts` leases are
        failed instead of looping forever.  Returns how many jobs
        changed state.
        """
        now = self.clock()
        message = (f"worker lease expired {self.max_attempts} time(s); "
                   f"giving up")

        def _release(conn) -> int:
            failed = conn.execute(
                "UPDATE jobs SET state = 'failed', finished_ts = ?, "
                "lease_owner = NULL, lease_expires_ts = NULL, error = ? "
                "WHERE state = 'running' AND lease_expires_ts < ? "
                "AND attempts >= ?",
                (now, message, now, self.max_attempts)).rowcount
            requeued = conn.execute(
                "UPDATE jobs SET state = 'queued', lease_owner = NULL, "
                "lease_expires_ts = NULL "
                "WHERE state = 'running' AND lease_expires_ts < ?",
                (now,)).rowcount
            return failed + requeued

        return self.store.run_in_transaction(_release, op="queue.release")

    # -- introspection ------------------------------------------------------

    def get(self, job_id: int) -> Optional[JobRow]:
        """One job by id, or None."""
        rows = self.store.query(_SELECT + "WHERE id = ?", (job_id,))
        return _row_to_job(rows[0]) if rows else None

    def list_jobs(self, state: Optional[str] = None,
                  limit: int = 100) -> List[JobRow]:
        """Most-recent-first job listing, optionally by state."""
        if state is not None:
            if state not in JOB_STATES:
                raise ValueError(f"unknown job state {state!r}")
            rows = self.store.query(
                _SELECT + "WHERE state = ? ORDER BY id DESC LIMIT ?",
                (state, limit))
        else:
            rows = self.store.query(
                _SELECT + "ORDER BY id DESC LIMIT ?", (limit,))
        return [_row_to_job(r) for r in rows]

    def counts(self) -> Dict[str, int]:
        """``{state: n}`` over all jobs (absent states included as 0)."""
        out = {state: 0 for state in JOB_STATES}
        for row in self.store.query(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"):
            out[row["state"]] = int(row["n"])
        return out
