"""Perf-gate history: load and trend benchmarks/perf/history.jsonl.

``scripts/perf_gate.py`` appends one JSONL entry per run — timestamp,
scale, and the normalized figure for every microbenchmark — so the
repository accumulates a longitudinal record of kernel performance.
``repro-ec2 perf-trend`` renders that record as a per-benchmark trend
table via :func:`format_trend`.

Normalized figures (seconds scaled by the machine calibration factor)
are the comparable series; raw seconds are machine-dependent noise.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: Bump when the history entry layout changes.
HISTORY_SCHEMA_VERSION = 1


def load_history(path: str) -> List[Dict[str, Any]]:
    """Parsed history entries in file (chronological) order.

    Unparsable lines are skipped rather than fatal: the history file is
    append-only across many machines/branches and a torn write must not
    brick the trend report.
    """
    entries: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if isinstance(entry, dict) and "results" in entry:
                    entries.append(entry)
    except OSError:
        return []
    return entries


def trend_rows(entries: List[Dict[str, Any]],
               scale: str = "") -> List[Dict[str, Any]]:
    """Per-benchmark trend across entries (optionally one scale only).

    Each row: name, n (number of samples), first/last/best normalized
    figure, and delta_pct of last vs first (negative = got faster).
    """
    if scale:
        entries = [e for e in entries if e.get("scale") == scale]
    series: Dict[str, List[float]] = {}
    for entry in entries:
        for name, result in sorted(entry.get("results", {}).items()):
            value = result.get("normalized")
            if isinstance(value, (int, float)):
                series.setdefault(name, []).append(float(value))
    rows: List[Dict[str, Any]] = []
    for name in sorted(series):
        values = series[name]
        first, last = values[0], values[-1]
        delta = (last - first) / first * 100.0 if first else 0.0
        rows.append({"name": name, "n": len(values), "first": first,
                     "last": last, "best": min(values),
                     "delta_pct": delta})
    return rows


def format_trend(entries: List[Dict[str, Any]],
                 scale: str = "") -> str:
    """The ``repro-ec2 perf-trend`` table."""
    rows = trend_rows(entries, scale=scale)
    if not rows:
        return "no perf history entries" + (
            f" for scale {scale!r}" if scale else "") + "\n"
    header = (f"{'benchmark':<32} {'runs':>4} {'first':>10} "
              f"{'last':>10} {'best':>10} {'delta':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['name']:<32} {row['n']:>4} {row['first']:>10.4f} "
            f"{row['last']:>10.4f} {row['best']:>10.4f} "
            f"{row['delta_pct']:>+7.1f}%")
    return "\n".join(lines) + "\n"
