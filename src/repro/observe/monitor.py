"""Host-side sweep monitor: latency, occupancy, progress, event log.

:class:`SweepMonitor` is the single observer the sweep drivers
(``run_sweep``, ``fault_inflation_sweep``) notify on every lifecycle
transition.  From those notifications it derives the host-side view of
a sweep — wall-clock latency per cell, worker occupancy, queue depth,
throughput in cells/sec, and peak worker RSS — and fans it out to:

* a schema-versioned JSONL event log (``--events-out``), via an
  attached :class:`~repro.observe.events.EventLogWriter`;
* a live single-line console progress display (``--progress``);
* a final :meth:`summary` dict for reports and tests.

The monitor only ever *receives* host-side measurements; it never
touches simulation state, so attaching one cannot perturb the
deterministic telemetry hash-chain.  Clocks are injectable so tests can
drive it with synthetic time.
"""

from __future__ import annotations

import sys
from typing import IO, Any, Callable, Dict, List, Optional

from . import hostclock
from .events import EventLogWriter


def _fmt_rss(n_bytes: int) -> str:
    if n_bytes >= 1 << 30:
        return f"{n_bytes / (1 << 30):.1f}GiB"
    if n_bytes >= 1 << 20:
        return f"{n_bytes / (1 << 20):.0f}MiB"
    return f"{n_bytes / 1024:.0f}KiB"


class SweepMonitor:
    """Aggregates sweep lifecycle notifications into host telemetry.

    Parameters
    ----------
    events:
        Optional :class:`EventLogWriter`; every hook call becomes one
        JSONL event line.
    progress:
        When true, redraw a single ``\\r``-terminated console line on
        every transition (finalized with a newline at sweep end).
    stream:
        Where the progress line goes; defaults to stderr so stdout
        stays clean for piped table/CSV output.
    wall_clock / mono_clock:
        Injectable time sources (tests drive these synthetically).
    """

    def __init__(self, events: Optional[EventLogWriter] = None,
                 progress: bool = False,
                 stream: Optional[IO[str]] = None,
                 wall_clock: Callable[[], float] = hostclock.wall_now,
                 mono_clock: Callable[[], float] = hostclock.monotonic
                 ) -> None:
        self.events = events
        self.progress = progress
        self.stream = stream if stream is not None else sys.stderr
        self._wall = wall_clock
        self._mono = mono_clock
        self.n_cells = 0
        self.jobs = 1
        self.n_scheduled = 0
        self.n_started = 0
        self.n_finished = 0
        self.n_failed = 0
        self.n_retried = 0
        self.latencies: List[float] = []
        self.peak_rss = 0
        self.failures: List[Dict[str, Any]] = []
        self._t0: Optional[float] = None
        self._t_end: Optional[float] = None
        self._profile_stats: List[Dict[Any, Any]] = []

    # ------------------------------------------------------ lifecycle

    def sweep_started(self, n_cells: int, jobs: int) -> None:
        self.n_cells = n_cells
        self.jobs = jobs
        self._t0 = self._mono()
        if self.events:
            self.events.emit("sweep_started", n_cells=n_cells, jobs=jobs)
        self._redraw()

    def cell_scheduled(self, index: int, config: Any) -> None:
        self.n_scheduled += 1
        if self.events:
            self.events.emit("cell_scheduled", index=index,
                             label=config.label, digest=config.digest())

    def cell_started(self, index: int, config: Any) -> None:
        self.n_started += 1
        if self.events:
            self.events.emit("cell_started", index=index,
                             label=config.label, digest=config.digest())
        self._redraw()

    def cell_finished(self, index: int, config: Any,
                      wall_seconds: float, peak_rss: int = 0) -> None:
        self.n_finished += 1
        self.latencies.append(wall_seconds)
        self.peak_rss = max(self.peak_rss, peak_rss)
        if self.events:
            self.events.emit("cell_finished", index=index,
                             label=config.label, digest=config.digest(),
                             wall_seconds=wall_seconds,
                             peak_rss=peak_rss)
        self._redraw()

    def cell_failed(self, index: int, config: Any, error: str,
                    wall_seconds: Optional[float] = None,
                    peak_rss: int = 0,
                    bundle_path: Optional[str] = None) -> None:
        self.n_failed += 1
        if wall_seconds is not None:
            self.latencies.append(wall_seconds)
        self.peak_rss = max(self.peak_rss, peak_rss)
        self.failures.append({"index": index, "label": config.label,
                              "digest": config.digest(), "error": error,
                              "bundle": bundle_path})
        if self.events:
            extra: Dict[str, Any] = {}
            if wall_seconds is not None:
                extra["wall_seconds"] = wall_seconds
            if bundle_path is not None:
                extra["bundle"] = bundle_path
            self.events.emit("cell_failed", index=index,
                             label=config.label, digest=config.digest(),
                             error=error, **extra)
        self._redraw()

    def cell_retried(self, index: int, config: Any, attempt: int) -> None:
        self.n_retried += 1
        if self.events:
            self.events.emit("cell_retried", index=index,
                             label=config.label, digest=config.digest(),
                             attempt=attempt)
        self._redraw()

    def sweep_finished(self) -> Dict[str, Any]:
        self._t_end = self._mono()
        summary = self.summary()
        if self.events:
            self.events.emit("sweep_finished", n_cells=self.n_cells,
                             n_failed=self.n_failed,
                             wall_seconds=summary["wall_seconds"])
        if self.progress:
            self.stream.write("\r" + self.render_progress() + "\n")
            self.stream.flush()
        return summary

    # ---------------------------------------------------- derived views

    def elapsed(self) -> float:
        """Monotonic seconds since ``sweep_started`` (frozen at end)."""
        if self._t0 is None:
            return 0.0
        end = self._t_end if self._t_end is not None else self._mono()
        return max(0.0, end - self._t0)

    @property
    def n_done(self) -> int:
        return self.n_finished + self.n_failed

    @property
    def occupancy(self) -> int:
        """Cells currently executing (started but not yet done)."""
        return max(0, self.n_started - self.n_done)

    @property
    def queue_depth(self) -> int:
        """Cells scheduled on the pool but not yet started."""
        return max(0, self.n_scheduled - self.n_started)

    def cells_per_sec(self) -> float:
        elapsed = self.elapsed()
        return self.n_done / elapsed if elapsed > 0 else 0.0

    def add_profile_stats(self, stats: Dict[Any, Any]) -> None:
        """Collect one worker's pstats table for later merging."""
        self._profile_stats.append(stats)

    @property
    def profile_stats(self) -> List[Dict[Any, Any]]:
        return list(self._profile_stats)

    def render_progress(self) -> str:
        """The live console line, e.g.
        ``[sweep 12/20] ok=11 fail=1 run=4 queue=3 1.82 cells/s ...``"""
        parts = [f"[sweep {self.n_done}/{self.n_cells}]",
                 f"ok={self.n_finished}", f"fail={self.n_failed}"]
        if self.n_retried:
            parts.append(f"retry={self.n_retried}")
        parts.append(f"run={self.occupancy}")
        parts.append(f"queue={self.queue_depth}")
        rate = self.cells_per_sec()
        parts.append(f"{rate:.2f} cells/s")
        if rate > 0 and self.n_done < self.n_cells:
            parts.append(f"eta={((self.n_cells - self.n_done) / rate):.0f}s")
        if self.peak_rss:
            parts.append(f"rss={_fmt_rss(self.peak_rss)}")
        return " ".join(parts)

    def summary(self) -> Dict[str, Any]:
        """Final host-side telemetry of the sweep, as a plain dict."""
        lat = self.latencies
        return {
            "n_cells": self.n_cells,
            "jobs": self.jobs,
            "n_finished": self.n_finished,
            "n_failed": self.n_failed,
            "n_retried": self.n_retried,
            "wall_seconds": self.elapsed(),
            "cells_per_sec": self.cells_per_sec(),
            "latency_mean": sum(lat) / len(lat) if lat else 0.0,
            "latency_max": max(lat) if lat else 0.0,
            "peak_rss_bytes": self.peak_rss,
            "failures": list(self.failures),
        }

    def _redraw(self) -> None:
        if self.progress:
            self.stream.write("\r" + self.render_progress())
            self.stream.flush()
