"""Per-cell cProfile capture with cross-process merge.

``--profile cprofile`` wraps each sweep cell in a :mod:`cProfile`
profiler.  Profiler objects are not picklable, so workers ship the
plain ``pstats`` *table* (``pstats.Stats(pr).stats`` — a dict of tuples)
back in the envelope; :func:`merge_stats` folds any number of those
tables into one :class:`pstats.Stats` in the parent, and
:func:`hotspot_report` renders the top-N cumulative-time hotspots.

Profiling measures host CPU, never simulated time — it is diagnostic
only and has no effect on results or telemetry digests.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

#: CLI values accepted by ``--profile``.
PROFILE_MODES = ("off", "cprofile")


class _StatsCarrier:
    """Minimal object ``pstats.Stats`` accepts as a profile source.

    ``pstats.Stats(obj)`` wants either a filename, a Profile, or
    anything exposing ``create_stats()`` and a ``stats`` dict — this is
    the latter, carrying a table that crossed a process boundary.
    """

    def __init__(self, table: Dict[Any, Any]) -> None:
        self.stats = table

    def create_stats(self) -> None:
        pass


@contextmanager
def capture_profile(sink: List[Dict[Any, Any]]) -> Iterator[None]:
    """Profile the enclosed block, appending its pstats table to sink."""
    pr = cProfile.Profile()
    pr.enable()
    try:
        yield
    finally:
        pr.disable()
        sink.append(stats_table(pr))


def stats_table(profile: cProfile.Profile) -> Dict[Any, Any]:
    """The picklable pstats table of one finished profiler."""
    return pstats.Stats(profile).stats


def merge_stats(tables: Iterable[Dict[Any, Any]]
                ) -> Optional[pstats.Stats]:
    """Fold pstats tables from any number of workers into one Stats."""
    merged: Optional[pstats.Stats] = None
    for table in tables:
        carrier = _StatsCarrier(table)
        if merged is None:
            merged = pstats.Stats(carrier)
        else:
            merged.add(carrier)
    return merged


def hotspot_report(tables: Iterable[Dict[Any, Any]],
                   top: int = 15) -> str:
    """Top-``top`` cumulative-time hotspots across all merged tables."""
    merged = merge_stats(tables)
    if merged is None:
        return "no profile data captured\n"
    buf = io.StringIO()
    merged.stream = buf
    merged.sort_stats("cumulative").print_stats(top)
    return buf.getvalue()
