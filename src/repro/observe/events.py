"""Schema-versioned structured event log for sweep orchestration.

One JSONL line per sweep/cell lifecycle transition, written by the
:class:`~repro.observe.monitor.SweepMonitor` (``--events-out``).  The
log is the durable, auditable record of *how* a sweep executed on the
host — which cells ran where and when, how long each took, what died
and why — complementing the deterministic sim-time telemetry that
records what happened *inside* each cell.

Every line carries ``schema`` (the integer format version), ``seq`` (a
per-log monotonic counter), ``ts`` (host epoch seconds), and ``kind``.
Cell events additionally carry the cell ``index``, ``label``, and the
scenario ``digest``, so a log line is joinable back to the exact
configuration that produced it.

:func:`validate_event` / :func:`validate_event_log` are the schema
checks used by the tests and the CI observability smoke.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterator, List, Optional, Union

from .hostclock import wall_now

#: Bump when a field is added/renamed/retyped; consumers key on it.
EVENT_SCHEMA_VERSION = 1

#: Every legal ``kind`` value.
EVENT_KINDS = (
    "sweep_started",
    "cell_scheduled",
    "cell_started",
    "cell_finished",
    "cell_failed",
    "cell_retried",
    "sweep_finished",
)

#: Fields required on every event.
_COMMON_REQUIRED = ("schema", "seq", "ts", "kind")
#: Extra required fields per kind.
_KIND_REQUIRED: Dict[str, tuple] = {
    "sweep_started": ("n_cells", "jobs"),
    "cell_scheduled": ("index", "label", "digest"),
    "cell_started": ("index", "label", "digest"),
    "cell_finished": ("index", "label", "digest", "wall_seconds"),
    "cell_failed": ("index", "label", "digest", "error"),
    "cell_retried": ("index", "label", "digest", "attempt"),
    "sweep_finished": ("n_cells", "n_failed", "wall_seconds"),
}


class EventLogWriter:
    """Line-buffered JSONL writer for sweep lifecycle events.

    Accepts a path (opened/closed by the writer) or an already-open
    text file object (left open).  ``emit`` stamps schema/seq/ts and
    flushes per line, so a crashed sweep still leaves a parseable log.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self._seq = 0

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Write one event line; returns the emitted object."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        self._seq += 1
        event = {"schema": EVENT_SCHEMA_VERSION, "seq": self._seq,
                 "ts": wall_now(), "kind": kind}
        event.update(fields)
        problems = validate_event(event)
        if problems:
            raise ValueError(f"refusing to emit malformed {kind} event: "
                             f"{'; '.join(problems)}")
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        return event

    def close(self) -> None:
        """Close the underlying file if this writer opened it."""
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def validate_event(event: Dict[str, Any]) -> List[str]:
    """Schema problems with one parsed event (empty list = valid)."""
    problems: List[str] = []
    for key in _COMMON_REQUIRED:
        if key not in event:
            problems.append(f"missing required field {key!r}")
    if problems:
        return problems
    if event["schema"] != EVENT_SCHEMA_VERSION:
        problems.append(f"schema {event['schema']!r} != "
                        f"{EVENT_SCHEMA_VERSION}")
    kind = event["kind"]
    if kind not in EVENT_KINDS:
        problems.append(f"unknown kind {kind!r}")
        return problems
    if not isinstance(event["seq"], int) or event["seq"] < 1:
        problems.append(f"seq must be a positive integer, "
                        f"got {event['seq']!r}")
    if not isinstance(event["ts"], (int, float)):
        problems.append(f"ts must be a number, got {event['ts']!r}")
    for key in _KIND_REQUIRED[kind]:
        if key not in event:
            problems.append(f"{kind}: missing field {key!r}")
    if "index" in event and not isinstance(event.get("index"), int):
        problems.append(f"index must be an integer, "
                        f"got {event.get('index')!r}")
    if "digest" in event:
        digest = event["digest"]
        if not (isinstance(digest, str) and len(digest) >= 8):
            problems.append(f"digest must be a hex string, got {digest!r}")
    return problems


def read_events(path: str) -> Iterator[Dict[str, Any]]:
    """Parsed events of one log file, in file order."""
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def validate_event_log(path: str,
                       expect_kinds: Optional[List[str]] = None
                       ) -> List[str]:
    """Validate a whole log file; returns all problems found.

    Beyond per-event schema checks this verifies ``seq`` is a gapless
    1..N sequence and, when ``expect_kinds`` is given, that every
    listed kind occurs at least once.
    """
    problems: List[str] = []
    seen_kinds: List[str] = []
    expected_seq = 1
    try:
        for lineno, event in enumerate(read_events(path), start=1):
            for problem in validate_event(event):
                problems.append(f"line {lineno}: {problem}")
            seq = event.get("seq")
            if seq != expected_seq:
                problems.append(f"line {lineno}: seq {seq!r} != "
                                f"expected {expected_seq}")
            expected_seq += 1
            seen_kinds.append(event.get("kind"))
    except (OSError, ValueError) as exc:
        return [f"unreadable event log {path}: {exc}"]
    for kind in expect_kinds or []:
        if kind not in seen_kinds:
            problems.append(f"no {kind!r} event in log")
    return problems
