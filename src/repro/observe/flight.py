"""Failure flight recorder: bounded event ring + crash bundles.

Every sweep worker can keep a :class:`FlightRecorder` — a live
:class:`~repro.simcore.tracing.TraceCollector` whose subscriber folds
the kernel event stream into (a) a bounded ring buffer of the last N
records and (b) a partial metrics registry.  On cell failure the ring
and the partial metrics are exactly what a postmortem needs: the final
seconds of simulated activity before the crash, plus everything counted
up to that point — without retaining the full (potentially
multi-hundred-thousand-record) trace of a healthy run.

:func:`crash_bundle` assembles the durable artifact — scenario config
and digest, exception traceback, ring contents, partial metrics — and
:func:`write_crash_bundle` lays it out under ``--crash-dir`` as::

    <crash-dir>/cell-<index>-<digest8>/bundle.json

``repro-ec2 postmortem <crash-dir>`` summarizes bundles offline via
:func:`load_crash_bundles` / :func:`summarize_bundle`.
"""

from __future__ import annotations

import dataclasses
import json
import os
import traceback as _traceback
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..simcore.tracing import TraceCollector, TraceRecord
from ..telemetry.metrics import MetricsRegistry, install_trace_bridge
from .hostclock import wall_now

#: Bump when the bundle layout changes; consumers key on it.
BUNDLE_SCHEMA_VERSION = 1

#: Default ring capacity: enough to cover the last few scheduler
#: rounds of a paper-scale cell without bloating worker memory.
DEFAULT_RING_CAPACITY = 256


class FlightRecorder:
    """Ring buffer + partial metrics over a live trace collector.

    The recorder owns its collector; pass ``recorder.trace`` into
    :func:`~repro.experiments.run_experiment` so every kernel event
    flows through it.  Recording is passive — it subscribes like any
    other telemetry consumer and cannot perturb the simulation, so
    digests stay bit-identical with the recorder attached.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY,
                 trace: Optional[TraceCollector] = None) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.trace = trace if trace is not None else TraceCollector()
        self.ring: Deque[TraceRecord] = deque(maxlen=capacity)
        self.n_seen = 0
        self.metrics = MetricsRegistry()
        install_trace_bridge(self.metrics, self.trace)
        self.trace.subscribe(self._on_record)

    def _on_record(self, rec: TraceRecord) -> None:
        self.n_seen += 1
        self.ring.append(rec)

    def ring_rows(self) -> List[Dict[str, Any]]:
        """The ring contents as plain JSON-serializable rows."""
        return [{"time": rec.time, "category": rec.category,
                 "event": rec.event, "fields": dict(rec.fields)}
                for rec in self.ring]


def _config_dict(config: Any) -> Dict[str, Any]:
    """JSON-safe dict of an ExperimentConfig (nested dataclasses ok)."""
    if dataclasses.is_dataclass(config):
        return dataclasses.asdict(config)
    return dict(config)  # pragma: no cover - already a mapping


def crash_bundle(config: Any, index: int, error: BaseException,
                 recorder: Optional[FlightRecorder] = None
                 ) -> Dict[str, Any]:
    """Assemble the postmortem artifact for one failed cell."""
    bundle: Dict[str, Any] = {
        "schema": BUNDLE_SCHEMA_VERSION,
        "kind": "crash_bundle",
        "ts": wall_now(),
        "index": index,
        "label": config.label,
        "digest": config.digest(),
        "config": _config_dict(config),
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": "".join(_traceback.format_exception(
                type(error), error, error.__traceback__)),
        },
    }
    if recorder is not None:
        bundle["flight"] = {
            "capacity": recorder.capacity,
            "n_seen": recorder.n_seen,
            "events": recorder.ring_rows(),
        }
        bundle["metrics"] = recorder.metrics.snapshot()
    return bundle


def bundle_dirname(bundle: Dict[str, Any]) -> str:
    """Directory name of one bundle: ``cell-<index>-<digest8>``."""
    return f"cell-{bundle['index']}-{bundle['digest'][:8]}"


def write_crash_bundle(crash_dir: str, bundle: Dict[str, Any]) -> str:
    """Write ``bundle`` under ``crash_dir``; returns the bundle path."""
    target = os.path.join(crash_dir, bundle_dirname(bundle))
    os.makedirs(target, exist_ok=True)
    path = os.path.join(target, "bundle.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bundle, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_crash_bundles(crash_dir: str
                       ) -> List[Tuple[str, Dict[str, Any]]]:
    """All ``(path, bundle)`` pairs under ``crash_dir``, sorted by cell
    index then path."""
    out: List[Tuple[str, Dict[str, Any]]] = []
    if not os.path.isdir(crash_dir):
        return out
    for entry in sorted(os.listdir(crash_dir)):
        path = os.path.join(crash_dir, entry, "bundle.json")
        if os.path.isfile(path):
            with open(path, encoding="utf-8") as fh:
                out.append((path, json.load(fh)))
    out.sort(key=lambda pair: (pair[1].get("index", 0), pair[0]))
    return out


def validate_bundle(bundle: Dict[str, Any]) -> List[str]:
    """Schema problems with one crash bundle (empty list = valid)."""
    problems: List[str] = []
    for key in ("schema", "kind", "index", "label", "digest", "config",
                "error"):
        if key not in bundle:
            problems.append(f"missing field {key!r}")
    if problems:
        return problems
    if bundle["schema"] != BUNDLE_SCHEMA_VERSION:
        problems.append(f"schema {bundle['schema']!r} != "
                        f"{BUNDLE_SCHEMA_VERSION}")
    if bundle["kind"] != "crash_bundle":
        problems.append(f"kind {bundle['kind']!r} != 'crash_bundle'")
    error = bundle["error"]
    for key in ("type", "message", "traceback"):
        if key not in error:
            problems.append(f"error record missing {key!r}")
    flight = bundle.get("flight")
    if flight is not None:
        for key in ("capacity", "n_seen", "events"):
            if key not in flight:
                problems.append(f"flight record missing {key!r}")
    return problems


def summarize_bundle(bundle: Dict[str, Any], tail: int = 8,
                     top_metrics: int = 6) -> str:
    """Human-readable one-screen postmortem of a crash bundle."""
    error = bundle["error"]
    lines = [
        f"cell {bundle['index']} {bundle['label']} "
        f"(digest {bundle['digest'][:12]})",
        f"  {error['type']}: {error['message']}",
    ]
    last_frame = [ln for ln in error["traceback"].splitlines()
                  if ln.strip().startswith("File ")]
    if last_frame:
        lines.append(f"  at {last_frame[-1].strip()}")
    flight = bundle.get("flight")
    if flight:
        events = flight["events"]
        lines.append(f"  flight ring: last {len(events)} of "
                     f"{flight['n_seen']} kernel events "
                     f"(capacity {flight['capacity']})")
        for row in events[-tail:]:
            fields = ",".join(f"{k}={v}" for k, v in
                              sorted(row["fields"].items()))
            lines.append(f"    t={row['time']:<12g} "
                         f"{row['category']}/{row['event']} {fields}")
    metrics = bundle.get("metrics")
    if metrics:
        rows = []
        for name, inst in sorted(metrics.items()):
            if inst["kind"] != "counter":
                continue
            total = sum(entry["value"] for entry in inst["series"])
            if total:
                rows.append((total, name))
        rows.sort(reverse=True)
        if rows:
            lines.append("  partial metrics (top counters at crash):")
            for total, name in rows[:top_metrics]:
                lines.append(f"    {name:<28} {total:g}")
    return "\n".join(lines)
