"""Sanctioned host-side clock and process-resource probes.

Everything in the simulator proper is forbidden to read the host clock
(SIM001/SIM009): a run must be a pure function of ``(scenario, seed)``.
The *orchestration* layer, however, legitimately needs wall-clock
telemetry — cells/sec, per-cell latency, worker occupancy — which is
why this module exists and why ``repro/observe/`` is the one package
the lint rules exempt.  Nothing returned from here may ever flow into
simulation state, trace records, or the telemetry hash-chain; it feeds
only the host-side event log, the progress line, and crash bundles.
"""

from __future__ import annotations

import sys
import time


def wall_now() -> float:
    """Host epoch seconds (event-log timestamps, crash bundles)."""
    return time.time()


def monotonic() -> float:
    """Host monotonic seconds (latency and throughput measurement)."""
    return time.perf_counter()


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; Windows has
    no ``resource`` module at all, so this degrades to 0 there.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-posix
        return 0
    ru = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - mac only
        return int(ru)
    return int(ru) * 1024
