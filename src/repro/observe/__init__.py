"""Host-side observability for sweep orchestration.

This package is the **only** sanctioned home for wall-clock reads in
the repository (see lint rules SIM001/SIM009): the simulator itself
must stay a pure function of ``(scenario, seed)``, while the host-side
orchestration layer here measures how a sweep executes — per-cell
latency, occupancy, throughput, peak RSS — and records failures.

Nothing in this package may feed values back into simulation state or
the deterministic telemetry hash-chain; the observability-invariance
regression test pins that property.
"""

from .events import (EVENT_KINDS, EVENT_SCHEMA_VERSION, EventLogWriter,
                     read_events, validate_event, validate_event_log)
from .flight import (BUNDLE_SCHEMA_VERSION, DEFAULT_RING_CAPACITY,
                     FlightRecorder, bundle_dirname, crash_bundle,
                     load_crash_bundles, summarize_bundle,
                     validate_bundle, write_crash_bundle)
from .hostclock import monotonic, peak_rss_bytes, wall_now
from .monitor import SweepMonitor
from .perfhistory import (HISTORY_SCHEMA_VERSION, format_trend,
                          load_history, trend_rows)
from .profiles import (PROFILE_MODES, capture_profile, hotspot_report,
                       merge_stats, stats_table)

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "EventLogWriter",
    "read_events",
    "validate_event",
    "validate_event_log",
    "BUNDLE_SCHEMA_VERSION",
    "DEFAULT_RING_CAPACITY",
    "FlightRecorder",
    "bundle_dirname",
    "crash_bundle",
    "load_crash_bundles",
    "summarize_bundle",
    "validate_bundle",
    "write_crash_bundle",
    "monotonic",
    "peak_rss_bytes",
    "wall_now",
    "SweepMonitor",
    "HISTORY_SCHEMA_VERSION",
    "format_trend",
    "load_history",
    "trend_rows",
    "PROFILE_MODES",
    "capture_profile",
    "hotspot_report",
    "merge_stats",
    "stats_table",
]
