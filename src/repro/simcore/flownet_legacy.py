"""Legacy object-graph flow network (differential oracle).

This is the pre-vectorization max-min water-filler, kept verbatim for
one release behind ``REPRO_FLOWNET=legacy``.  The struct-of-arrays
kernel in :mod:`repro.simcore.flownet` must produce bit-identical
makespans, costs, and telemetry digests against this implementation;
the differential tests in ``tests/simcore/test_flownet_differential.py``
compare the two on every golden scenario and on randomized topologies.

Do not modify this file except to delete it when the escape hatch is
retired.  ``Link`` is shared with the new kernel (links are plain
capacity holders; all engine state lives on the network object).
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .events import Event, Timeout
from .flownet import Link

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

_TIME_EPS = 1e-9


class _Flow:
    __slots__ = ("links", "bytes_left", "rate", "event", "max_rate", "eps",
                 "gen", "_stamp", "_frozen")

    def __init__(self, links: Sequence[Link], nbytes: float, event: Event,
                 max_rate: Optional[float]) -> None:
        self.links = list(links)
        self.bytes_left = float(nbytes)
        self.rate = 0.0
        self.event = event
        self.max_rate = max_rate
        # Completion tolerance must scale with the transfer size:
        # float subtraction across many progress updates leaves a
        # relative residue (~1e-12 of the size), which for GB-scale
        # flows dwarfs any absolute epsilon.
        self.eps = max(1e-9, nbytes * 1e-9)
        # Projection generation: bumped whenever the rate changes, so
        # stale completion-heap entries can be discarded lazily.
        self.gen = 0
        # Traversal stamp and fill freeze flag (scratch, see Link).
        self._stamp = 0
        self._frozen = False


class LegacyFlowNetwork:
    """A collection of links carrying max-min fairly shared flows.

    Parameters
    ----------
    env:
        Simulation environment.
    completion_mode:
        ``"exact"`` (default) schedules wakeups from a fused
        advance/min-scan over live flows — wake times are
        bit-reproducible.  ``"projected"`` maintains a lazy-invalidation
        heap of projected finish times and only scans flows whose rates
        changed; timings can differ from exact mode in the last ulp.
    """

    def __init__(self, env: "Environment",
                 completion_mode: str = "exact") -> None:
        if completion_mode not in ("exact", "projected"):
            raise ValueError(
                f"completion_mode must be 'exact' or 'projected', "
                f"got {completion_mode!r}")
        self.env = env
        self.completion_mode = completion_mode
        self._flows: Dict[_Flow, None] = {}
        self._last_update = env.now
        # Wakeup invalidation by event identity (see FairShareChannel):
        # only the timeout of the latest reschedule is honoured.
        self._wake_event: object = None
        self._wake_cb = self._on_wake
        # Lazy-invalidation completion heap (projected mode only):
        # entries are (projected_finish_time, seq, gen, flow); an entry
        # is stale when the flow has finished or its gen moved on.
        self._heap: List[tuple] = []
        self._heap_seq = 0
        # Monotonic pass id handed to component scans and fills; a
        # link/flow whose ``_stamp`` differs from the current pass id
        # has not been visited by it (no per-call visited sets needed).
        self._stamp_seq = 0
        #: Total bytes delivered across all completed+running flows.
        self.total_bytes_moved = 0.0
        #: Total flows ever started.
        self.total_flows = 0

    # -- public API --------------------------------------------------------

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows."""
        return len(self._flows)

    def transfer(self, links: Sequence[Link], nbytes: float,
                 max_rate: Optional[float] = None) -> Event:
        """Start a flow of ``nbytes`` over ``links``.

        Parameters
        ----------
        links:
            The capacitated links the flow traverses (order irrelevant).
        nbytes:
            Payload size in bytes.
        max_rate:
            Optional per-flow rate ceiling (bytes/s) — models per-stream
            limits such as a single S3 connection's throughput.

        Returns an event that fires on delivery of the last byte.
        """
        if nbytes < 0 or not math.isfinite(nbytes):
            raise ValueError(f"nbytes must be finite and >= 0, got {nbytes}")
        if max_rate is not None and max_rate <= 0:
            raise ValueError(f"max_rate must be > 0, got {max_rate}")
        self.total_flows += 1
        done = Event(self.env)
        if nbytes == 0:
            done.succeed()
            return done
        self._advance()
        flow = _Flow(links, nbytes, done, max_rate)
        self._flows[flow] = None
        for link in flow.links:
            link._flows[flow] = None
        self._reallocate(self._component_of(flow))
        self._reschedule()
        return flow.event

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        now = self.env.now
        elapsed = now - self._last_update
        if elapsed > 0:
            total = self.total_bytes_moved
            for flow in self._flows:
                moved = flow.rate * elapsed
                left = flow.bytes_left
                flow.bytes_left = left - moved
                # Clamp the delivered-bytes counter to what the flow
                # actually had left: the final wake routinely lands a
                # hair past the true finish, and the raw product would
                # overshoot the payload size on every completion.
                if moved > left:
                    moved = left if left > 0.0 else 0.0
                total += moved
            self.total_bytes_moved = total
        self._last_update = now

    def _component_of(self, *seeds: _Flow) -> Dict[_Flow, None]:
        """Flows connected to ``seeds`` through shared links.

        Returns the affected *live* flows in ``self._flows`` insertion
        order, so the per-component fill iterates exactly as the global
        one would over that subset.  Seeds may be just-finished flows
        (used purely as traversal roots); they are never part of the
        result — a dead flow in the fill would inflate per-link flow
        counts and corrupt every share on its links.  Visited links
        and flows are marked with a fresh pass id (``_stamp_seq``)
        instead of set membership, so a scan allocates only the
        pending stack; the traversal order never leaks into the
        result, which keeps the kernel reproducible by construction.
        """
        sid = self._stamp_seq = self._stamp_seq + 1
        pending: List[Link] = []
        nseen = 0
        for flow in seeds:
            flow._stamp = sid
            nseen += 1
            for link in flow.links:
                if link._stamp != sid:
                    link._stamp = sid
                    pending.append(link)
        while pending:
            link = pending.pop()
            for flow in link._flows:
                if flow._stamp != sid:
                    flow._stamp = sid
                    nseen += 1
                    for nxt in flow.links:
                        if nxt._stamp != sid:
                            nxt._stamp = sid
                            pending.append(nxt)
        if nseen >= len(self._flows):
            # Whole network touched (the common star-topology case):
            # skip the membership filter.  The fill never mutates the
            # flow set, so handing it the live dict is safe.
            return self._flows
        return {f: None for f in self._flows if f._stamp == sid}

    def _reallocate(self, flows: Optional[Dict[_Flow, None]] = None) -> None:
        """Progressive filling to the max-min fair allocation.

        ``flows`` restricts the fill to one connected component (rates
        of flows outside it are left untouched); ``None`` refills the
        whole network.
        """
        flow_list = self._flows if flows is None else flows
        if not flow_list:
            return
        projected = self.completion_mode == "projected"
        inf = float("inf")

        if len(flow_list) == 1:
            # Singleton fill (no contention): rate is the tightest of
            # the link capacities and the per-flow cap — the exact
            # value one loop iteration of the general fill produces.
            flow = next(iter(flow_list))
            if projected:
                flow.gen += 1
            share = inf
            for link in flow.links:
                if link.capacity < share:
                    share = link.capacity
            cap = flow.max_rate
            if cap is not None and cap < share:
                flow.rate = cap
            elif share < inf:
                flow.rate = share
            else:
                flow.rate = cap or inf
            if projected:
                self._push_projection(flow)
            return

        # In-place progressive filling: the fill's scratch state lives
        # in scratch slots on the links and flows themselves (residual
        # capacity, unfrozen-flow count, frozen flag), claimed for this
        # pass by stamping with a fresh pass id.  The per-call flat
        # arrays of the obvious implementation disappear; the average
        # component here is a handful of flows over two or three links,
        # where the scaffolding costs more than the fill.  Iteration
        # order — and therefore every float operation — is unchanged:
        # flow order is ``self._flows`` insertion order, link order is
        # first-encounter order over the flows' links, and the freeze
        # scan walks ``link._flows``, whose order is the insertion-
        # order restriction of ``self._flows`` to that link.
        fid = self._stamp_seq = self._stamp_seq + 1
        links: List[Link] = []
        for flow in flow_list:
            flow.rate = 0.0
            flow._frozen = False
            if projected:
                flow.gen += 1
            for link in flow.links:
                if link._stamp != fid:
                    link._stamp = fid
                    link._residual = link.capacity
                    link._n = 0
                    links.append(link)
                link._n += 1
        remaining = len(flow_list)

        while remaining:
            # Fair share offered by each link still serving unfrozen flows.
            bottleneck_share = inf
            for link in links:
                n = link._n
                if n > 0:
                    share = link._residual / n
                    if share < bottleneck_share:
                        bottleneck_share = share
            # Rate-capped flows below the bottleneck share freeze at
            # their cap instead (they are their own bottleneck).
            capped_any = False
            for flow in flow_list:
                if not flow._frozen:
                    cap = flow.max_rate
                    if cap is not None and cap < bottleneck_share:
                        capped_any = True
                        flow._frozen = True
                        remaining -= 1
                        flow.rate = cap
                        for link in flow.links:
                            r = link._residual - cap
                            link._residual = r if r > 0.0 else 0.0
                            link._n -= 1
            if capped_any:
                continue
            if bottleneck_share == inf:
                # Flows with no links at all: unconstrained; should not
                # happen in practice but terminate rather than spin.
                for flow in flow_list:
                    if not flow._frozen:
                        flow._frozen = True
                        remaining -= 1
                        flow.rate = flow.max_rate or inf
                break
            # Freeze every unfrozen flow on a bottleneck link.  Flows
            # outside this fill's component can never appear on a
            # component link (shared links merge components), so the
            # ``link._flows`` walk stays within ``flow_list``.
            frozen_any = False
            tolerance = bottleneck_share * (1 + 1e-12)
            for link in links:
                n = link._n
                if n > 0 and link._residual / n <= tolerance:
                    for flow in link._flows:
                        if not flow._frozen:
                            flow._frozen = True
                            remaining -= 1
                            flow.rate = bottleneck_share
                            for lnk in flow.links:
                                r = lnk._residual - bottleneck_share
                                lnk._residual = r if r > 0.0 else 0.0
                                lnk._n -= 1
                            frozen_any = True
            if not frozen_any:  # pragma: no cover - numerical safety valve
                for flow in flow_list:
                    if not flow._frozen:
                        flow._frozen = True
                        remaining -= 1
                        flow.rate = bottleneck_share

        if projected:
            # Push fresh projections for every re-rated flow; the old
            # entries die lazily (their gen no longer matches).
            for flow in flow_list:
                self._push_projection(flow)

    def _push_projection(self, flow: _Flow) -> None:
        if flow.rate > 0.0 and flow in self._flows:
            seq = self._heap_seq + 1
            self._heap_seq = seq
            heappush(self._heap, (self.env.now + flow.bytes_left / flow.rate,
                                  seq, flow.gen, flow))

    def _reschedule(self) -> None:
        # Single fused pass: collect finished flows and, over the
        # survivors, the soonest completion — no second generator sweep.
        finished: List[_Flow] = []
        for flow in self._flows:
            if flow.bytes_left <= flow.eps:
                finished.append(flow)
        for flow in finished:
            self._flows.pop(flow, None)
            for link in flow.links:
                link._flows.pop(flow, None)
            flow.event.succeed()
        if finished:
            self._reallocate(self._component_of(*finished))
        if not self._flows:
            return
        if self.completion_mode == "projected":
            self._reschedule_projected()
            return
        next_in = -1.0
        for flow in self._flows:
            rate = flow.rate
            if rate > 0.0:
                remaining = flow.bytes_left / rate
                if next_in < 0.0 or remaining < next_in:
                    next_in = remaining
        if next_in < 0.0:  # pragma: no cover - all flows stalled
            return
        # Floor the delay so the clock always advances between wakeups
        # (a zero-elapsed wake would make no progress and spin).
        wake = Timeout(self.env, max(next_in, 1e-9))
        self._wake_event = wake
        wake.callbacks.append(self._wake_cb)

    def _reschedule_projected(self) -> None:
        """Wake at the earliest *valid* projected finish time.

        Heap entries carry the flow's generation at push time; any
        entry whose flow finished or was re-rated since is stale and is
        discarded on pop (lazy invalidation).
        """
        heap = self._heap
        flows = self._flows
        while heap:
            when, _seq, gen, flow = heap[0]
            if flow not in flows or gen != flow.gen:
                heappop(heap)
                continue
            wake = Timeout(self.env, max(when - self.env.now, 1e-9))
            self._wake_event = wake
            wake.callbacks.append(self._wake_cb)
            return

    def _on_wake(self, event: object) -> None:
        if event is not self._wake_event:
            return  # superseded by a newer reschedule
        self._advance()
        self._reschedule()
