"""Shared-resource primitives: Resource, PriorityResource, Container, Store.

These model the contended entities of the simulated cluster: CPU slots
(Resource), node memory (Container), and queues of work items (Store).
All follow the request/event idiom::

    req = resource.request()
    yield req
    try:
        ... hold the resource ...
    finally:
        resource.release(req)
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, List

from .errors import NotPending
from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment


class Request(Event):
    """A pending or granted claim on a :class:`Resource`."""

    __slots__ = ("resource", "amount")

    def __init__(self, env: "Environment", resource: "Resource", amount: int = 1) -> None:
        super().__init__(env)
        self.resource = resource
        self.amount = amount

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        if self.triggered:
            raise NotPending("request already granted; release() it instead")
        self.resource._withdraw(self)


class Resource:
    """A counted resource with FIFO granting (e.g. CPU slots).

    ``capacity`` units exist; each request claims ``amount`` of them
    until released.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: List[Request] = []

    # -- public API ----------------------------------------------------------

    @property
    def in_use(self) -> int:
        """Units currently claimed."""
        return self._in_use

    @property
    def available(self) -> int:
        """Units currently free."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting to be granted."""
        return len(self._waiters)

    def request(self, amount: int = 1) -> Request:
        """Claim ``amount`` units; the returned event fires when granted."""
        if amount <= 0 or amount > self.capacity:
            raise ValueError(
                f"amount {amount} out of range for capacity {self.capacity}"
            )
        req = Request(self.env, self, amount)
        self._waiters.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return the units held by ``request``."""
        if not request.triggered:
            raise NotPending("request was never granted; cancel() it instead")
        self._in_use -= request.amount
        if self._in_use < 0:
            raise AssertionError("resource released more than acquired")
        self._grant()

    # -- internals -------------------------------------------------------------

    def _withdraw(self, request: Request) -> None:
        self._waiters.remove(request)
        self._grant()

    def _grant(self) -> None:
        # FIFO: grant from the head while capacity allows.  A large
        # request at the head blocks smaller ones behind it (no
        # overtaking), which matches batch-scheduler semantics.
        while self._waiters:
            head = self._waiters[0]
            if self._in_use + head.amount > self.capacity:
                break
            self._waiters.pop(0)
            self._in_use += head.amount
            head.succeed()


class PriorityRequest(Request):
    """Request with a priority key (lower = served first)."""

    __slots__ = ("priority", "_order")

    def __init__(self, env: "Environment", resource: "PriorityResource",
                 amount: int = 1, priority: float = 0.0) -> None:
        super().__init__(env, resource, amount)
        self.priority = priority
        self._order = 0  # assigned by the resource for FIFO tie-break

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served by priority."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._counter = 0

    def request(self, amount: int = 1,  # type: ignore[override]
                priority: float = 0.0) -> PriorityRequest:
        if amount <= 0 or amount > self.capacity:
            raise ValueError(
                f"amount {amount} out of range for capacity {self.capacity}"
            )
        req = PriorityRequest(self.env, self, amount, priority)
        self._counter += 1
        req._order = self._counter
        heapq.heappush(self._waiters, req)  # type: ignore[arg-type]
        self._grant()
        return req

    def _withdraw(self, request: Request) -> None:
        self._waiters.remove(request)
        heapq.heapify(self._waiters)  # type: ignore[arg-type]
        self._grant()

    def _grant(self) -> None:
        while self._waiters:
            head = self._waiters[0]
            if self._in_use + head.amount > self.capacity:
                break
            heapq.heappop(self._waiters)  # type: ignore[arg-type]
            self._in_use += head.amount
            head.succeed()


class Container:
    """A homogeneous quantity (e.g. bytes of memory) with put/get.

    ``get`` blocks until the requested amount is available; ``put``
    blocks if it would exceed ``capacity`` (unbounded by default).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._getters: List[tuple] = []  # (amount, Event)
        self._putters: List[tuple] = []

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires when it fits under ``capacity``."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = Event(self.env)
        self._putters.append((amount, ev))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires when that much is available."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = Event(self.env)
        self._getters.append((amount, ev))
        self._settle()
        return ev

    def cancel_get(self, event: Event) -> None:
        """Withdraw an un-triggered getter.

        Needed when the process waiting on a :meth:`get` is interrupted
        (e.g. its node crashed): an abandoned getter would otherwise
        silently consume ``amount`` the moment it became available.
        """
        if event.triggered:
            raise NotPending("get already granted; put() the amount back")
        before = len(self._getters)
        self._getters = [g for g in self._getters if g[1] is not event]
        if len(self._getters) == before:
            raise ValueError("event is not a pending getter")
        self._settle()

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, ev = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.pop(0)
                    self._level += amount
                    ev.succeed()
                    progressed = True
            if self._getters:
                amount, ev = self._getters[0]
                if amount <= self._level:
                    self._getters.pop(0)
                    self._level -= amount
                    ev.succeed()
                    progressed = True


class Store:
    """A FIFO queue of arbitrary items with blocking get."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List[tuple] = []

    def put(self, item: Any) -> Event:
        """Append ``item``; fires when it fits under ``capacity``."""
        ev = Event(self.env)
        self._putters.append((item, ev))
        self._settle()
        return ev

    def get(self) -> Event:
        """Remove and return the oldest item; fires when one exists."""
        ev = Event(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def cancel_get(self, event: Event) -> None:
        """Withdraw an un-triggered getter.

        Needed when the waiting process is interrupted (a crashed
        node's idle Condor slot): an abandoned getter would otherwise
        swallow the next item put into the store.
        """
        if event.triggered:
            raise NotPending("get already granted; the item was consumed")
        self._getters.remove(event)
        self._settle()

    def _settle(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            item, ev = self._putters.pop(0)
            self.items.append(item)
            ev.succeed()
        while self._getters and self.items:
            ev = self._getters.pop(0)
            ev.succeed(self.items.pop(0))
            # A successful get may unblock a putter.
            while self._putters and len(self.items) < self.capacity:
                item, pev = self._putters.pop(0)
                self.items.append(item)
                pev.succeed()
