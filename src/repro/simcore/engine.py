"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

from heapq import heappop as _heappop
from heapq import heappush as _heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from .errors import SimulationDeadlock
from .events import AllOf, AnyOf, Event, Process, Timeout

#: Default priority for newly queued events.  Lower sorts earlier at the
#: same timestamp; interrupts use priority 0 so they pre-empt same-time
#: ordinary events.
NORMAL_PRIORITY = 1


class Environment:
    """Holds simulation state and drives event processing.

    Typical use::

        env = Environment()

        def producer(env, store):
            while True:
                yield env.timeout(1.0)
                yield store.put("item")

        env.process(producer(env, store))
        env.run(until=100.0)

    Time is a float in arbitrary units; this project uses seconds
    throughout.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        # Heap entries: (time, priority, sequence, event)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        # End-of-timestamp flush hooks (see :meth:`defer`): callbacks
        # that run once the current timestamp's event cascade has fully
        # drained, before the clock moves to the next event time.
        self._flush_pending: List[Callable[[], None]] = []

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between resumptions)."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Spawn a process from a generator; returns the Process event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing once all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing once any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling (internal API used by events) ---------------------------

    def _queue_event(self, event: Event, delay: float = 0.0,
                     priority: int = NORMAL_PRIORITY) -> None:
        seq = self._seq + 1
        self._seq = seq
        _heappush(self._queue, (self._now + delay, priority, seq, event))

    # -- end-of-timestamp flush hooks ---------------------------------------

    def defer(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` once the current timestamp's cascade has drained.

        Same-timestamp event cascades (a wave of transfers all starting
        at ``now``) would otherwise trigger one full reallocation per
        event.  A kernel that batches instead marks itself dirty, defers
        one flush callback here, and the run loop invokes it exactly
        once — after every event queued at the current simulation time
        has been processed and before the clock advances.  Flushes run
        in *last*-registration order: re-deferring an already-pending
        callback moves it to the back, so flush order follows each
        kernel's final touch within the cascade — the relative order
        in which the eager kernels allocated their wake timeouts, which
        keeps same-time event tie-breaks bit-identical.  A flush may
        defer further callbacks; they drain in the same pass.
        """
        pending = self._flush_pending
        if pending:
            try:
                pending.remove(fn)
            except ValueError:
                pass
        pending.append(fn)

    def _run_deferred(self) -> None:
        pending = self._flush_pending
        while pending:
            batch = pending[:]
            del pending[:]
            for fn in batch:
                fn()

    # -- run loop ------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if self._flush_pending and (
                not self._queue or self._queue[0][0] > self._now):
            self._run_deferred()
        if not self._queue:
            raise SimulationDeadlock("no scheduled events")
        when, _prio, _seq, event = _heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody waited on: surface the error loudly
            # rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until that simulation time;
        * an :class:`Event` — run until that event is processed, and
          return its value (re-raising its exception if it failed).
        """
        # The three loops below inline :meth:`step` (heap pop, clock
        # bump, callback drain) with the hot names bound locally; at
        # ~10^6 events per cell the method/attribute dispatch of a
        # `while ...: self.step()` loop is a measurable fraction of
        # total runtime.  Semantics are identical to calling ``step``.
        # Each loop also honours the end-of-timestamp flush hooks: when
        # callbacks are pending and the next queued event lies strictly
        # beyond ``now`` (or the queue is empty), the deferred flushes
        # run before the clock is allowed to advance.
        queue = self._queue
        pop = _heappop
        flush = self._flush_pending

        if until is None:
            while True:
                if flush and (not queue or queue[0][0] > self._now):
                    self._run_deferred()
                if not queue:
                    return None
                when, _prio, _seq, event = pop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value

        if isinstance(until, Event):
            sentinel = until
            finished: List[Event] = []

            if sentinel.callbacks is None:
                # Already processed.
                if not sentinel._ok:
                    raise sentinel._value
                return sentinel._value
            sentinel.callbacks.append(finished.append)
            while not finished:
                if flush and (not queue or queue[0][0] > self._now):
                    self._run_deferred()
                if not queue:
                    raise SimulationDeadlock(
                        f"event {sentinel!r} will never fire: queue is empty"
                    )
                when, _prio, _seq, event = pop(queue)
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if not sentinel._ok:
                sentinel._defused = True
                raise sentinel._value
            return sentinel._value

        # Numeric deadline.
        deadline = float(until)
        if deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        while True:
            if flush and (not queue or queue[0][0] > self._now):
                self._run_deferred()
            if not queue or queue[0][0] > deadline:
                break
            when, _prio, _seq, event = pop(queue)
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        self._now = deadline
        return None
