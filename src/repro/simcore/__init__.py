"""Discrete-event simulation kernel (SimPy-like, built from scratch).

Public surface:

* :class:`Environment` — clock + event loop;
* :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AllOf`,
  :class:`AnyOf` — waitables;
* :class:`Resource`, :class:`PriorityResource`, :class:`Container`,
  :class:`Store` — contended entities;
* :class:`FairShareChannel` — processor-sharing device model (disks);
* :class:`Link`, :class:`FlowNetwork` — max-min fair network model;
* :class:`TraceCollector` — structured run traces;
* :func:`substream` — deterministic named random streams.
"""

from .engine import Environment
from .errors import (
    EventAlreadyTriggered,
    EventNotTriggered,
    Interrupt,
    NotPending,
    SimulationDeadlock,
    SimulationError,
)
from .events import AllOf, AnyOf, Event, Process, Timeout
from .flownet import FlowNetwork, Link
from .pipes import FairShareChannel
from .rand import jittered, substream
from .resources import Container, PriorityResource, Request, Resource, Store
from .tracing import NULL_COLLECTOR, TraceCollector, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "EventNotTriggered",
    "FairShareChannel",
    "FlowNetwork",
    "Interrupt",
    "Link",
    "NULL_COLLECTOR",
    "NotPending",
    "PriorityResource",
    "Process",
    "Request",
    "Resource",
    "SimulationDeadlock",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceCollector",
    "TraceRecord",
    "jittered",
    "substream",
]
