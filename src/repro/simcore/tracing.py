"""Lightweight structured tracing for simulation runs.

Every subsystem (scheduler, storage, disks, billing) emits
:class:`TraceRecord` rows into a shared :class:`TraceCollector`.  The
profiler (`repro.profiling.wfprof`), the span builder
(`repro.telemetry.spans`), and the experiment result tables are built
entirely from these traces, mirroring how the paper derives Table I
from ptrace-based task profiling.

Records are indexed by ``(category, event)`` as they arrive, so the
query helpers (:meth:`TraceCollector.select`, ``count``, ``sum_field``)
cost O(matching records), not O(all records) — trace-heavy runs issue
thousands of queries and must not go quadratic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped observation.

    Attributes
    ----------
    time:
        Simulation time of the observation (seconds).
    category:
        Coarse stream name, e.g. ``"task"``, ``"storage"``, ``"disk"``.
    event:
        Event name within the category, e.g. ``"start"``, ``"read"``.
    fields:
        Free-form payload (task id, bytes, node name, ...).
    """

    time: float
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Field accessor with default."""
        return self.fields.get(key, default)


class TraceCollector:
    """Accumulates trace records and answers simple queries.

    Collection can be disabled wholesale (``enabled=False``) for large
    benchmark sweeps where only aggregate counters are needed.  A
    disabled collector is inert end to end: ``emit`` drops records and
    ``subscribe`` is a no-op, so the shared :data:`NULL_COLLECTOR`
    cannot accumulate state across runs.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        # (category, event) -> records, and category -> records.  Lists
        # share the TraceRecord objects with ``records``; only the list
        # overhead is duplicated.
        self._by_cat_event: Dict[Tuple[str, str], List[TraceRecord]] = {}
        self._by_category: Dict[str, List[TraceRecord]] = {}
        self._next_id = 0

    def next_id(self) -> int:
        """A fresh id, unique within this collector (1, 2, 3, ...).

        Used for span ids: scoping the counter to the collector keeps a
        run's trace byte-identical no matter how many runs preceded it
        in the same interpreter.
        """
        self._next_id += 1
        return self._next_id

    def emit(self, time: float, category: str, event: str, **fields: Any) -> None:
        """Record an observation (no-op when disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time, category, event, fields)
        self.records.append(rec)
        key = (category, event)
        bucket = self._by_cat_event.get(key)
        if bucket is None:
            bucket = self._by_cat_event[key] = []
        bucket.append(rec)
        cat_bucket = self._by_category.get(category)
        if cat_bucket is None:
            cat_bucket = self._by_category[category] = []
        cat_bucket.append(rec)
        for sub in self._subscribers:
            sub(rec)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every subsequent record.

        On a disabled collector this is a no-op: nothing will ever be
        emitted, and retaining callbacks on the module-global
        :data:`NULL_COLLECTOR` would leak them across runs.
        """
        if not self.enabled:
            return
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    @property
    def n_subscribers(self) -> int:
        """Number of registered callbacks."""
        return len(self._subscribers)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def _candidates(self, category: Optional[str],
                    event: Optional[str]) -> List[TraceRecord]:
        """The smallest pre-indexed record list covering a query."""
        if category is not None:
            if event is not None:
                return self._by_cat_event.get((category, event), [])
            return self._by_category.get(category, [])
        # Event-only queries are rare and have no dedicated index.
        if event is not None:
            return [r for r in self.records if r.event == event]
        return self.records

    def select(self, category: Optional[str] = None,
               event: Optional[str] = None,
               **field_filters: Any) -> List[TraceRecord]:
        """Records matching the given category/event/field values."""
        base = self._candidates(category, event)
        if not field_filters:
            return list(base)
        return [rec for rec in base
                if all(rec.fields.get(k) == v
                       for k, v in field_filters.items())]

    def count(self, category: Optional[str] = None,
              event: Optional[str] = None, **field_filters: Any) -> int:
        """Number of matching records."""
        base = self._candidates(category, event)
        if not field_filters:
            return len(base)
        return sum(1 for rec in base
                   if all(rec.fields.get(k) == v
                          for k, v in field_filters.items()))

    def sum_field(self, key: str, category: Optional[str] = None,
                  event: Optional[str] = None, **field_filters: Any) -> float:
        """Sum of a numeric field over matching records."""
        base = self._candidates(category, event)
        if field_filters:
            base = [rec for rec in base
                    if all(rec.fields.get(k) == v
                           for k, v in field_filters.items())]
        return float(sum(rec.fields.get(key, 0.0) for rec in base))

    def clear(self) -> None:
        """Drop all collected records (subscribers stay registered)."""
        self.records.clear()
        self._by_cat_event.clear()
        self._by_category.clear()
        self._next_id = 0

    def reset(self) -> None:
        """Drop records *and* subscribers — a fully fresh collector."""
        self.clear()
        self._subscribers.clear()


#: A collector that drops everything — handy default for benchmarks.
#: It is shared module-wide, and safe to share because a disabled
#: collector refuses both records and subscriptions.
NULL_COLLECTOR = TraceCollector(enabled=False)
