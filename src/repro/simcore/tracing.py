"""Lightweight structured tracing for simulation runs.

Every subsystem (scheduler, storage, disks, billing) emits
:class:`TraceRecord` rows into a shared :class:`TraceCollector`.  The
profiler (`repro.profiling.wfprof`), the span builder
(`repro.telemetry.spans`), and the experiment result tables are built
entirely from these traces, mirroring how the paper derives Table I
from ptrace-based task profiling.

Records are indexed by ``(category, event)`` as they arrive, so the
query helpers (:meth:`TraceCollector.select`, ``count``, ``sum_field``)
cost O(matching records), not O(all records) — trace-heavy runs issue
thousands of queries and must not go quadratic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class TraceRecord:
    """One timestamped observation.

    A plain ``__slots__`` class rather than a dataclass: trace-heavy
    runs construct one record per traced event (hundreds of thousands
    per cell), and the frozen-dataclass ``__init__`` costs several
    times a direct slot assignment.  Records are immutable by
    convention — nothing in the codebase mutates one after ``emit``.

    Attributes
    ----------
    time:
        Simulation time of the observation (seconds).
    category:
        Coarse stream name, e.g. ``"task"``, ``"storage"``, ``"disk"``.
    event:
        Event name within the category, e.g. ``"start"``, ``"read"``.
    fields:
        Free-form payload (task id, bytes, node name, ...).
    """

    __slots__ = ("time", "category", "event", "fields")

    def __init__(self, time: float, category: str, event: str,
                 fields: Optional[Dict[str, Any]] = None) -> None:
        self.time = time
        self.category = category
        self.event = event
        self.fields = {} if fields is None else fields

    def get(self, key: str, default: Any = None) -> Any:
        """Field accessor with default."""
        return self.fields.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        # Field-wise identity compare (what the frozen dataclass
        # generated); bit-equality on time is the point here, not a
        # sim-time tolerance check.
        return (self.time == other.time  # lint: ignore[SIM004]
                and self.category == other.category
                and self.event == other.event and self.fields == other.fields)

    def __repr__(self) -> str:
        return (f"TraceRecord(time={self.time!r}, category={self.category!r}, "
                f"event={self.event!r}, fields={self.fields!r})")


class TraceCollector:
    """Accumulates trace records and answers simple queries.

    Collection can be disabled wholesale (``enabled=False``) for large
    benchmark sweeps where only aggregate counters are needed.  A
    disabled collector is inert end to end: ``emit`` drops records and
    ``subscribe`` is a no-op, so the shared :data:`NULL_COLLECTOR`
    cannot accumulate state across runs.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        # (category, event) -> records.  Lists share the TraceRecord
        # objects with ``records``; only the list overhead is
        # duplicated.
        self._by_cat_event: Dict[Tuple[str, str], List[TraceRecord]] = {}
        # category -> records, built lazily on the first category-only
        # query (then kept fresh by ``emit``): most runs never issue
        # one until the post-run analysis, and skipping the second
        # index append keeps ``emit`` lean.
        self._by_category: Optional[Dict[str, List[TraceRecord]]] = None
        self._next_id = 0

    def next_id(self) -> int:
        """A fresh id, unique within this collector (1, 2, 3, ...).

        Used for span ids: scoping the counter to the collector keeps a
        run's trace byte-identical no matter how many runs preceded it
        in the same interpreter.
        """
        self._next_id += 1
        return self._next_id

    def emit(self, time: float, category: str, event: str, **fields: Any) -> None:
        """Record an observation (no-op when disabled)."""
        if not self.enabled:
            return
        # Direct slot fill via __new__: one C call instead of a Python
        # __init__ frame, on the hottest constructor in the simulator.
        rec = TraceRecord.__new__(TraceRecord)
        rec.time = time
        rec.category = category
        rec.event = event
        rec.fields = fields
        self.records.append(rec)
        key = (category, event)
        bucket = self._by_cat_event.get(key)
        if bucket is None:
            bucket = self._by_cat_event[key] = []
        bucket.append(rec)
        by_cat = self._by_category
        if by_cat is not None:
            cat_bucket = by_cat.get(category)
            if cat_bucket is None:
                cat_bucket = by_cat[category] = []
            cat_bucket.append(rec)
        for sub in self._subscribers:
            sub(rec)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every subsequent record.

        On a disabled collector this is a no-op: nothing will ever be
        emitted, and retaining callbacks on the module-global
        :data:`NULL_COLLECTOR` would leak them across runs.
        """
        if not self.enabled:
            return
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    @property
    def n_subscribers(self) -> int:
        """Number of registered callbacks."""
        return len(self._subscribers)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def _candidates(self, category: Optional[str],
                    event: Optional[str]) -> List[TraceRecord]:
        """The smallest pre-indexed record list covering a query."""
        if category is not None:
            if event is not None:
                return self._by_cat_event.get((category, event), [])
            by_cat = self._by_category
            if by_cat is None:
                by_cat = self._by_category = {}
                for rec in self.records:
                    by_cat.setdefault(rec.category, []).append(rec)
            return by_cat.get(category, [])
        # Event-only queries are rare and have no dedicated index.
        if event is not None:
            return [r for r in self.records if r.event == event]
        return self.records

    def select(self, category: Optional[str] = None,
               event: Optional[str] = None,
               **field_filters: Any) -> List[TraceRecord]:
        """Records matching the given category/event/field values."""
        base = self._candidates(category, event)
        if not field_filters:
            return list(base)
        return [rec for rec in base
                if all(rec.fields.get(k) == v
                       for k, v in field_filters.items())]

    def count(self, category: Optional[str] = None,
              event: Optional[str] = None, **field_filters: Any) -> int:
        """Number of matching records."""
        base = self._candidates(category, event)
        if not field_filters:
            return len(base)
        return sum(1 for rec in base
                   if all(rec.fields.get(k) == v
                          for k, v in field_filters.items()))

    def sum_field(self, key: str, category: Optional[str] = None,
                  event: Optional[str] = None, **field_filters: Any) -> float:
        """Sum of a numeric field over matching records."""
        base = self._candidates(category, event)
        if field_filters:
            base = [rec for rec in base
                    if all(rec.fields.get(k) == v
                           for k, v in field_filters.items())]
        return float(sum(rec.fields.get(key, 0.0) for rec in base))

    def clear(self) -> None:
        """Drop all collected records (subscribers stay registered)."""
        self.records.clear()
        self._by_cat_event.clear()
        self._by_category = None
        self._next_id = 0

    def reset(self) -> None:
        """Drop records *and* subscribers — a fully fresh collector."""
        self.clear()
        self._subscribers.clear()


#: A collector that drops everything — handy default for benchmarks.
#: It is shared module-wide, and safe to share because a disabled
#: collector refuses both records and subscriptions.
NULL_COLLECTOR = TraceCollector(enabled=False)
