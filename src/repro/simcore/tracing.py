"""Lightweight structured tracing for simulation runs.

Every subsystem (scheduler, storage, disks, billing) emits
:class:`TraceRecord` rows into a shared :class:`TraceCollector`.  The
profiler (`repro.profiling.wfprof`) and the experiment result tables are
built entirely from these traces, mirroring how the paper derives
Table I from ptrace-based task profiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped observation.

    Attributes
    ----------
    time:
        Simulation time of the observation (seconds).
    category:
        Coarse stream name, e.g. ``"task"``, ``"storage"``, ``"disk"``.
    event:
        Event name within the category, e.g. ``"start"``, ``"read"``.
    fields:
        Free-form payload (task id, bytes, node name, ...).
    """

    time: float
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Field accessor with default."""
        return self.fields.get(key, default)


class TraceCollector:
    """Accumulates trace records and answers simple queries.

    Collection can be disabled wholesale (``enabled=False``) for large
    benchmark sweeps where only aggregate counters are needed.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, category: str, event: str, **fields: Any) -> None:
        """Record an observation (no-op when disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time, category, event, fields)
        self.records.append(rec)
        for sub in self._subscribers:
            sub(rec)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every subsequent record."""
        self._subscribers.append(callback)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def select(self, category: Optional[str] = None,
               event: Optional[str] = None,
               **field_filters: Any) -> List[TraceRecord]:
        """Records matching the given category/event/field values."""
        out = []
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            if any(rec.fields.get(k) != v for k, v in field_filters.items()):
                continue
            out.append(rec)
        return out

    def count(self, category: Optional[str] = None,
              event: Optional[str] = None, **field_filters: Any) -> int:
        """Number of matching records."""
        return len(self.select(category, event, **field_filters))

    def sum_field(self, key: str, category: Optional[str] = None,
                  event: Optional[str] = None, **field_filters: Any) -> float:
        """Sum of a numeric field over matching records."""
        return float(sum(rec.fields.get(key, 0.0)
                         for rec in self.select(category, event, **field_filters)))

    def clear(self) -> None:
        """Drop all collected records (subscribers stay)."""
        self.records.clear()


#: A collector that drops everything — handy default for benchmarks.
NULL_COLLECTOR = TraceCollector(enabled=False)
