"""Exception types for the discrete-event simulation kernel.

The kernel deliberately keeps its exception hierarchy small: one base
class so callers can catch "anything the simulator raised on purpose",
plus a handful of specific conditions that calling code commonly wants
to distinguish (interrupts, cancelled waits, misuse of the API).
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulation kernel."""


class EventAlreadyTriggered(SimulationError):
    """An event was triggered (succeed/fail) more than once."""


class EventNotTriggered(SimulationError):
    """The value of an event was read before the event fired."""


class StopProcess(SimulationError):
    """Internal signal used to terminate a process early.

    Raised inside a process generator by :meth:`Process.interrupt` with
    ``kill=True``.  User code normally never sees this.
    """


class Interrupt(SimulationError):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class SimulationDeadlock(SimulationError):
    """`run(until=...)` could not reach its target because no events remain."""


class NotPending(SimulationError):
    """An operation (e.g. cancel) required a pending request, but the
    request had already been granted or withdrawn."""
