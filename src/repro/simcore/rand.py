"""Deterministic random-stream helpers.

Every stochastic element of an experiment draws from a named substream
derived from a single experiment seed, so that (a) runs are exactly
reproducible and (b) changing one component's draws does not perturb
another's (counter-based stream splitting).
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np


def substream(seed: int, *names: object) -> np.random.Generator:
    """A generator for the substream identified by ``names`` under ``seed``.

    The same ``(seed, names)`` pair always yields the same stream, and
    distinct names yield statistically independent streams (SHA-256 of
    the label seeds a PCG64).
    """
    label = ":".join(str(n) for n in names)
    digest = hashlib.sha256(f"{seed}|{label}".encode()).digest()
    # 128 bits of entropy is ample for PCG64 seeding.
    state = int.from_bytes(digest[:16], "little")
    return np.random.default_rng(state)


def jittered(rng: Optional[np.random.Generator], value: float,
             rel_sigma: float = 0.0) -> float:
    """``value`` perturbed by a truncated-Gaussian relative jitter.

    With ``rng=None`` or ``rel_sigma=0`` the value is returned exactly —
    the deterministic default used by the paper-reproduction benches.
    The perturbation is truncated at ±3 sigma and floored at 10% of the
    nominal value so task times can never go non-positive.
    """
    if rng is None or rel_sigma <= 0.0:
        return value
    factor = 1.0 + float(np.clip(rng.normal(0.0, rel_sigma), -3 * rel_sigma, 3 * rel_sigma))
    return max(value * factor, value * 0.1)
