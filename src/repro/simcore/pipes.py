"""Processor-sharing channels.

A :class:`FairShareChannel` models a device (disk array, bus) whose
bandwidth is divided equally among all in-flight operations — the
egalitarian processor-sharing (PS) queue.  Each operation brings
``work`` seconds of *dedicated* service time (bytes / bandwidth-when-
alone); with *n* concurrent operations each progresses at rate ``1/n``.

This representation neatly handles devices with operation-dependent
bandwidth (e.g. the ephemeral-disk first-write penalty): an op that
would run at ``b`` MB/s alone on a device is submitted with
``work = bytes / b``; contention then scales all ops uniformly.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict

from .events import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

#: Completions within this many seconds of "now" are considered due;
#: guards against float round-off re-scheduling zero-length waits.
_TIME_EPS = 1e-9


class _ChannelJob:
    __slots__ = ("work_left", "event")

    def __init__(self, work: float, event: Event) -> None:
        self.work_left = work
        self.event = event


class FairShareChannel:
    """Egalitarian processor-sharing service channel.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Diagnostic label.

    Notes
    -----
    Total *throughput* is fixed at one dedicated-second of service per
    simulated second, shared equally.  Op-specific bandwidths are folded
    into the submitted ``work``, so a channel does not itself carry a
    bytes-per-second capacity.
    """

    def __init__(self, env: "Environment", name: str = "channel",
                 contention_beta: float = 0.0,
                 contention_gamma: float = 1.0,
                 min_efficiency: float = 0.0) -> None:
        if contention_beta < 0:
            raise ValueError("contention_beta must be >= 0")
        if contention_gamma < 1.0:
            raise ValueError("contention_gamma must be >= 1")
        if not 0.0 <= min_efficiency <= 1.0:
            raise ValueError("min_efficiency must be in [0, 1]")
        self.env = env
        self.name = name
        #: Seek/interference penalty: with *n* concurrent ops the
        #: channel's total service rate is ``1 / (1 + beta*(n-1))``,
        #: floored at ``min_efficiency``.  ``beta=0`` is ideal
        #: processor sharing (network links); rotating media typically
        #: fit ``beta ~ 0.1-0.2`` with a floor from command queueing.
        #: ``gamma > 1`` makes the dropoff superlinear — a device that
        #: tolerates a few streams but collapses under many (an RPC
        #: service thrashing its thread pool).
        self.contention_beta = contention_beta
        self.contention_gamma = contention_gamma
        self.min_efficiency = min_efficiency
        # The service rate is a pure function of the population size
        # and the (immutable) contention constants; memoizing it spares
        # a float pow() on every advance/reschedule of the hot path.
        self._rate_cache: Dict[int, float] = {}
        self._jobs: Dict[int, _ChannelJob] = {}
        self._next_id = 0
        self._last_update = env.now
        # Wakeup invalidation by event identity: `_wake_event` is the
        # timeout of the *latest* reschedule, and the single persistent
        # callback ignores any older timeout that still fires.  This
        # replaces a per-reschedule token lambda (one closure allocation
        # per population change) with a plain identity check.
        self._wake_event: object = None
        self._wake_cb = self._on_wake
        # Batched same-timestamp cascades (mirrors FlowNetwork): a
        # population change marks the channel dirty and defers one
        # min-scan/reschedule to the environment's end-of-timestamp
        # hook instead of rescanning per submit.  Completions stay
        # eager (the first touch of a timestamp advances and pops due
        # jobs), so event ordering is unchanged.
        self._dirty = False
        self._flush_cb_bound = self._flush_cb
        #: Cumulative dedicated-service seconds completed (utilisation metric).
        self.total_work_done = 0.0
        #: Total operations submitted.
        self.total_ops = 0

    # -- public API --------------------------------------------------------

    @property
    def active_ops(self) -> int:
        """Number of operations currently in service."""
        return len(self._jobs)

    def submit(self, work: float) -> Event:
        """Submit an operation needing ``work`` dedicated seconds.

        Returns an event that fires when the operation completes under
        processor sharing.
        """
        if work < 0 or not math.isfinite(work):
            raise ValueError(f"work must be finite and >= 0, got {work}")
        self.total_ops += 1
        done = Event(self.env)
        if work == 0:
            done.succeed()
            return done
        self._advance()
        self._next_id += 1
        if work <= _TIME_EPS:
            # Sub-epsilon job: the eager kernel popped it from the very
            # next reschedule pass; complete it within this cascade.
            done.succeed()
        else:
            self._jobs[self._next_id] = _ChannelJob(work, done)
        self._mark_dirty()
        return done

    def current_work_done(self) -> float:
        """``total_work_done`` projected to the current instant.

        The bookkeeping in :meth:`_advance` is lazy (it runs on submit
        and wakeup only), so ``total_work_done`` can lag ``env.now``
        while jobs are in flight; samplers reading utilization between
        events need the projected value or rates appear to burst >1.
        """
        n = len(self._jobs)
        if n == 0:
            return self.total_work_done
        elapsed = max(0.0, self.env.now - self._last_update)
        return self.total_work_done + elapsed * self._service_rate(n)

    def estimated_finish(self, work: float) -> float:
        """Crude finish-time estimate if ``work`` were submitted now.

        Assumes the current population stays constant — used only by
        advisory schedulers, never by the channel itself.
        """
        return self.env.now + work * (len(self._jobs) + 1)

    # -- internals -----------------------------------------------------------

    def _service_rate(self, n: int) -> float:
        """Total service rate with ``n`` concurrent operations."""
        rate = self._rate_cache.get(n)
        if rate is None:
            penalty = self.contention_beta * (n - 1) ** self.contention_gamma
            rate = max(1.0 / (1.0 + penalty), self.min_efficiency)
            self._rate_cache[n] = rate
        return rate

    def _advance(self) -> None:
        """Progress all jobs to the current time; pop due completions.

        The first touch of each timestamp does the real work (advance
        is lazy); jobs whose remaining work crosses the epsilon are
        completed immediately, in ``_jobs`` insertion order — exactly
        when and how the eager kernel's fused reschedule popped them —
        so the event-sequence order is unchanged by batching.
        """
        now = self.env.now
        n = len(self._jobs)
        if n:
            elapsed = now - self._last_update
            if elapsed > 0:
                total_rate = self._service_rate(n)
                done_work = elapsed * total_rate / n
                finished = None
                for jid, job in self._jobs.items():
                    left = job.work_left - done_work
                    job.work_left = left
                    if left <= _TIME_EPS:
                        if finished is None:
                            finished = [jid]
                        else:
                            finished.append(jid)
                self.total_work_done += elapsed * total_rate
                if finished:
                    jobs = self._jobs
                    for jid in finished:
                        jobs.pop(jid).event.succeed()
        self._last_update = now

    def _mark_dirty(self) -> None:
        # Every touch re-defers (moving the callback to the back of the
        # flush list), so flush order tracks the *last* touch — see
        # Environment.defer.
        self._dirty = True
        self.env.defer(self._flush_cb_bound)

    def _flush_cb(self) -> None:
        if self._dirty:
            self._flush()

    def _flush(self) -> None:
        """Schedule the wakeup for the soonest completion.

        Runs once per dirtied timestamp from the end-of-timestamp hook:
        one min-scan per batch of same-timestamp submits, where the
        eager kernel scanned per submit.
        """
        self._dirty = False
        jobs = self._jobs
        if not jobs:
            return
        min_left = -1.0
        for job in jobs.values():
            left = job.work_left
            if min_left < 0.0 or left < min_left:
                min_left = left
        n = len(jobs)
        # Floor the delay so the clock always advances between wakeups.
        delay = max(min_left * n / self._service_rate(n), 1e-9)
        wake = Timeout(self.env, delay)
        self._wake_event = wake
        wake.callbacks.append(self._wake_cb)

    def _on_wake(self, event: object) -> None:
        if event is not self._wake_event:
            return  # population changed since this wakeup was scheduled
        self._advance()
        self._mark_dirty()
