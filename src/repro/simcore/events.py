"""Core event primitives for the discrete-event simulation kernel.

The design follows the classic generator-coroutine style (as popularised
by SimPy, which is not available in this offline environment): a
*process* is a Python generator that ``yield``\\ s :class:`Event` objects;
the :class:`~repro.simcore.engine.Environment` resumes the generator when
the yielded event fires.

Events move through three states:

``pending``
    created, not yet scheduled to fire;
``triggered``
    scheduled on the event queue with a value (ok) or an exception (not
    ok);
``processed``
    callbacks have run; waiting processes have been resumed.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from .errors import EventAlreadyTriggered, EventNotTriggered, Interrupt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Environment

# Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A happening at a point in simulated time that others can wait on.

    Processes wait on events by ``yield``\\ ing them.  Any callable can
    also be attached through :attr:`callbacks`; callbacks run, in
    registration order, at the moment the environment processes the
    event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event once it is processed.  Set
        #: to ``None`` afterwards, which doubles as the "processed" flag.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        # A failed event whose exception is never retrieved should crash
        # the simulation; "defusing" it (by waiting on it) suppresses that.
        self._defused = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is queued for processing."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise EventNotTriggered(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception instance if it failed)."""
        if self._value is _PENDING:
            raise EventNotTriggered(f"{self!r} has not been triggered")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined ``env._queue_event(self)`` (normal priority, zero
        # delay): succeed() fires for every completed operation in a
        # run, and the extra frame is pure dispatch overhead.
        env = self.env
        seq = env._seq + 1
        env._seq = seq
        _heappush(env._queue, (env._now, 1, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will have ``exception`` thrown
        into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._queue_event(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (triggered) event onto this one.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(event._value)

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ — timeouts are the single most
        # constructed object in a run (every wakeup, every latency),
        # and the super() dispatch costs more than the body.
        self.env = env
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        # Inlined ``env._queue_event(self, delay=delay)`` — same
        # rationale as the inlined init above, one level deeper.
        seq = env._seq + 1
        env._seq = seq
        _heappush(env._queue, (env._now + delay, 1, seq, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Process(Event):
    """A running process; also an event that fires when the process ends.

    The wrapped generator yields :class:`Event` objects.  When a yielded
    event succeeds, the generator is resumed with the event's value;
    when it fails, the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, env: "Environment", generator, name: Optional[str] = None) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        # Inlined Event.__init__ (see Timeout): processes are spawned
        # per job attempt and per storage RPC, so the super() dispatch
        # shows up in profiles.
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if the
        #: process is scheduled to resume or has finished).
        self._waiting_on: Optional[Event] = None
        # Kick-start: resume the generator at the current simulation time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._queue_event(init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        Only valid while the process is alive.  The process may catch
        the interrupt and continue, or let it propagate and die.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._waiting_on is not None:
            # Detach from the event we were waiting on.
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
            self._waiting_on = None
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume)
        self.env._queue_event(interrupt_ev, priority=0)

    # -- internal ----------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        self._waiting_on = None
        # Localise the generator methods: this function runs once per
        # event in the simulation, and the repeated attribute loads are
        # measurable at that rate.
        gen = self._generator
        send = gen.send
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    event._defused = True
                    target = gen.throw(event._value)
            except StopIteration as exc:
                env._active_process = None
                self.succeed(exc.value)
                return
            except BaseException as exc:
                env._active_process = None
                self.fail(exc)
                return

            if not isinstance(target, Event):
                env._active_process = None
                err = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                # Propagate as a failure of the process itself.
                try:
                    self._generator.throw(err)
                except StopIteration as exc:
                    self.succeed(exc.value)
                except BaseException as exc:
                    self.fail(exc)
                return

            if target.callbacks is not None:
                # Not yet processed: register and suspend.
                target.callbacks.append(self._resume)
                self._waiting_on = target
                env._active_process = None
                return
            # Already processed: loop and feed its value immediately.
            event = target

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'dead'}>"


class Condition(Event):
    """Base for composite events over a set of sub-events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._remaining = len(self.events)
        # One fused pass: validate, then register or evaluate.  The
        # S3 client builds an AllOf per remote read/write, so condition
        # construction is on the storage hot path.
        check = self._check
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("cannot mix events from different environments")
            if ev.callbacks is None:
                # Already processed; evaluate immediately.
                check(ev)
            else:
                ev.callbacks.append(check)
        if not self.events and not self.triggered:
            # Vacuously satisfied.
            self.succeed(self._collect())

    def _collect(self) -> dict:
        """Values of all triggered-and-ok sub-events, keyed by event."""
        return {ev: ev._value for ev in self.events
                if ev.triggered and ev._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _sub_ok(self, event: Event) -> bool:
        if not event._ok:
            if not self.triggered:
                event._defused = True
                self.fail(event._value)
            else:
                event._defused = True
            return False
        return True


class AllOf(Condition):
    """Fires when *all* sub-events have fired (fails fast on failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not self._sub_ok(event):
            return
        self._remaining -= 1
        if self._remaining <= 0 and not self.triggered:
            if all(ev.triggered for ev in self.events):
                self.succeed(self._collect())


class AnyOf(Condition):
    """Fires when *any* sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        events = list(events)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        super().__init__(env, events)

    def _check(self, event: Event) -> None:
        if not self._sub_ok(event):
            return
        if not self.triggered:
            self.succeed(self._collect())
