"""Max-min fair flow network (struct-of-arrays kernel).

Models a set of capacitated links (NIC transmit/receive sides, a shared
service endpoint, a core switch) carrying concurrent byte flows.  Each
flow traverses an ordered set of links; whenever the flow population
changes, bandwidth is reallocated by progressive filling (water-filling)
to the max-min fair allocation, the textbook model of TCP-like fair
sharing on a star topology.

This is the substrate used for all network transfers in the EC2
simulation: NFS client/server traffic, GlusterFS peer reads, PVFS
stripe traffic, and S3 GET/PUT payloads.

Performance notes (see ``docs/performance.md``):

* Flow state lives in preallocated, growable numpy arrays packed in
  insertion order (remaining bytes, rate, completion epsilon, rate cap,
  projection generation), with a stable-id indirection so a ``_Flow``
  handle survives compaction when earlier flows complete.  Byte
  advancement, completion detection, and the wake min-scan are single
  vectorized passes over the packed arrays; below ``VEC_SCAN_MIN`` live
  flows they fall back to scalar loops over ``.tolist()`` snapshots
  with the *same* arithmetic, so both paths are bit-identical.
* Same-timestamp event cascades are batched: a transfer (or wake) marks
  the network dirty and defers one flush to the environment's
  end-of-timestamp hook (:meth:`Environment.defer`).  Progressive
  filling is stateless — the fill is a pure function of the final flow
  population — so eliding the intermediate fills of a cascade and
  running one fill over the union component yields bitwise the same
  rates the legacy per-event kernel computed.  Completions stay eager
  (flows finish, in insertion order, at the first touch of a
  timestamp), so the event-sequence order of ``succeed()`` calls — and
  with it the telemetry hash-chain — is unchanged.  External readers
  (the utilization sampler's ``flow.rate``) trigger a lazy flush, so
  mid-cascade observations match the legacy kernel exactly.
* Reallocation stays *incremental*: only the connected component of
  links reachable from the dirty flows is refilled.  Components at or
  above ``VEC_FILL_MIN`` flows use vectorized rounds (masked
  min-reductions for the bottleneck share, grouped saturation updates
  replayed as per-link sequential clamped subtractions); smaller
  components run the scalar fill.  Both orderings replicate the legacy
  float-operation sequence, so rates are bit-identical either way.
* ``REPRO_FLOWNET=legacy`` in the environment selects the frozen
  pre-vectorization kernel (:mod:`repro.simcore.flownet_legacy`) — the
  differential oracle for one release.
* The default completion scheduler (``completion_mode="exact"``) keeps
  the classic advance-then-min-scan; ``completion_mode="projected"``
  switches to a lazy-invalidation completion heap keyed by projected
  finish time — fewer scans on large flow populations, at the price of
  last-ulp timing differences.
"""

from __future__ import annotations

import math
import os
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .events import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

_TIME_EPS = 1e-9
_INF = float("inf")

#: Initial per-network array capacity (rows); doubled on demand.
_INITIAL_ROWS = 64


def _kernel_choice() -> str:
    """Which flow-network kernel to construct (``soa`` or ``legacy``).

    Read per construction, not at import, so tests can flip the
    environment variable between networks in one process.
    """
    choice = os.environ.get("REPRO_FLOWNET", "soa").strip().lower() or "soa"
    if choice not in ("soa", "legacy"):
        raise ValueError(
            f"REPRO_FLOWNET must be 'soa' or 'legacy', got {choice!r}")
    return choice


class Link:
    """A capacitated, unidirectional link (bytes per second)."""

    __slots__ = ("name", "capacity", "_flows", "_stamp", "_residual", "_n")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0 or not math.isfinite(capacity):
            raise ValueError(f"capacity must be finite and > 0, got {capacity}")
        self.name = name
        self.capacity = float(capacity)
        # Insertion-ordered (dict keys) so allocation arithmetic is
        # bit-reproducible across processes.
        self._flows: Dict["_Flow", None] = {}
        # Scratch state for traversal/fill passes: ``_stamp`` marks
        # which pass last touched this link (see FlowNetwork._stamp_seq)
        # so passes need no per-call visited dicts; ``_residual`` and
        # ``_n`` are only meaningful while a fill is running (the
        # vectorized fill reuses ``_n`` as the link's local index).
        self._stamp = 0
        self._residual = 0.0
        self._n = 0

    @property
    def active_flows(self) -> int:
        """Number of flows currently routed over this link."""
        return len(self._flows)

    def __repr__(self) -> str:
        return f"<Link {self.name} cap={self.capacity:.3g}B/s flows={len(self._flows)}>"


class _Flow:
    """Handle onto one row of the network's packed arrays.

    The mutable per-flow state (remaining bytes, rate, generation) lives
    in :class:`FlowNetwork`'s arrays, reached through the stable id
    ``fid``; the handle itself only carries the immutable description
    plus scratch slots for traversal/fill passes.  Reading ``rate``
    flushes a pending batched reallocation first, so samplers observing
    mid-cascade see exactly what the legacy eager kernel produced.
    """

    __slots__ = ("net", "fid", "links", "event", "max_rate", "eps",
                 "_stamp", "_frozen", "_srate", "_dead_rate", "_dead_bytes")

    def __init__(self, net: "FlowNetwork", links: Sequence[Link],
                 event: Event, max_rate: Optional[float], eps: float) -> None:
        self.net = net
        self.fid = -1  # assigned on registration
        self.links = list(links)
        self.event = event
        self.max_rate = max_rate
        self.eps = eps
        # Traversal stamp and fill scratch (see FlowNetwork._stamp_seq).
        self._stamp = 0
        self._frozen = False
        self._srate = 0.0
        # Final values stashed at completion so late readers (telemetry
        # holding a handle) keep seeing the last live state.
        self._dead_rate = 0.0
        self._dead_bytes = 0.0

    @property
    def bytes_left(self) -> float:
        net = self.net
        pos = net._pos_of_id[self.fid]
        if pos < 0:
            return self._dead_bytes
        return float(net._f_bytes[pos])

    @property
    def rate(self) -> float:
        net = self.net
        if net._dirty:
            net._flush()
        pos = net._pos_of_id[self.fid]
        if pos < 0:
            return self._dead_rate
        return float(net._f_rate[pos])

    @property
    def gen(self) -> int:
        net = self.net
        pos = net._pos_of_id[self.fid]
        if pos < 0:
            return -1
        return int(net._f_gen[pos])


class _FlowTable(dict):
    """Live-flow registry.

    A plain insertion-ordered dict, except that clearing it (tests
    simulating teardown do) also drops the packed array state, so the
    registry and the arrays can never disagree about the population.
    """

    __slots__ = ("net",)

    def clear(self) -> None:  # type: ignore[override]
        net = getattr(self, "net", None)
        if net is not None:
            net._drop_all_flows()
        dict.clear(self)


class FlowNetwork:
    """A collection of links carrying max-min fairly shared flows.

    Parameters
    ----------
    env:
        Simulation environment.
    completion_mode:
        ``"exact"`` (default) schedules wakeups from a fused
        advance/min-scan over live flows — wake times are
        bit-reproducible.  ``"projected"`` maintains a lazy-invalidation
        heap of projected finish times and only scans flows whose rates
        changed; timings can differ from exact mode in the last ulp.

    Setting ``REPRO_FLOWNET=legacy`` in the process environment makes
    this constructor return the frozen object-graph kernel instead (the
    differential oracle; see :mod:`repro.simcore.flownet_legacy`).
    """

    #: Component size at which the vectorized fill replaces the scalar
    #: one, and live-flow population at which vectorized advance /
    #: completion / min-scan passes replace the scalar loops.  Both
    #: paths are bit-identical; the thresholds are pure speed knobs
    #: (and test hooks: differential tests pin them to 0 to force the
    #: vector paths onto tiny populations).
    VEC_FILL_MIN = 32
    VEC_SCAN_MIN = 16

    def __new__(cls, env: "Environment" = None,  # type: ignore[assignment]
                completion_mode: str = "exact"):
        if cls is FlowNetwork and _kernel_choice() == "legacy":
            from .flownet_legacy import LegacyFlowNetwork
            return LegacyFlowNetwork(env, completion_mode)
        return super().__new__(cls)

    def __init__(self, env: "Environment",
                 completion_mode: str = "exact") -> None:
        if completion_mode not in ("exact", "projected"):
            raise ValueError(
                f"completion_mode must be 'exact' or 'projected', "
                f"got {completion_mode!r}")
        self.env = env
        self.completion_mode = completion_mode
        self._flows: _FlowTable = _FlowTable()
        self._flows.net = self
        self._last_update = env.now
        # Wakeup invalidation by event identity (see FairShareChannel):
        # only the timeout of the latest reschedule is honoured.
        self._wake_event: object = None
        self._wake_cb = self._on_wake
        # Lazy-invalidation completion heap (projected mode only):
        # entries are (projected_finish_time, seq, gen, flow); an entry
        # is stale when the flow has finished or its gen moved on.
        self._heap: List[tuple] = []
        self._heap_seq = 0
        # Monotonic pass id handed to component scans and fills; a
        # link/flow whose ``_stamp`` differs from the current pass id
        # has not been visited by it (no per-call visited sets needed).
        self._stamp_seq = 0
        #: Total bytes delivered across all completed+running flows.
        self.total_bytes_moved = 0.0
        #: Total flows ever started.
        self.total_flows = 0
        # -- struct-of-arrays state -----------------------------------
        # Rows are packed in insertion order; ``_handles`` is the
        # parallel Python list of _Flow handles.  ``_id_at_pos`` /
        # ``_pos_of_id`` is the stable-id indirection that survives
        # compaction (position -1 marks a completed flow).
        rows = _INITIAL_ROWS
        self._f_bytes = np.zeros(rows, dtype=np.float64)
        self._f_rate = np.zeros(rows, dtype=np.float64)
        self._f_eps = np.zeros(rows, dtype=np.float64)
        self._f_cap = np.zeros(rows, dtype=np.float64)
        self._f_gen = np.zeros(rows, dtype=np.int64)
        self._id_at_pos = np.zeros(rows, dtype=np.int64)
        self._pos_of_id = np.full(rows, -1, dtype=np.int64)
        self._handles: List[_Flow] = []
        self._n = 0
        self._next_fid = 0
        # -- batched-cascade state ------------------------------------
        # ``_dirty`` marks a pending reallocation/reschedule;
        # ``_dirty_seeds`` are the flows whose arrival or completion
        # dirtied it (traversal roots for the component refill).  The
        # flush runs from the environment's end-of-timestamp hook, or
        # lazily when a rate is read mid-cascade.
        self._dirty = False
        self._dirty_seeds: List[_Flow] = []
        self._flush_cb_bound = self._flush_cb

    # -- public API --------------------------------------------------------

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows."""
        return len(self._flows)

    def transfer(self, links: Sequence[Link], nbytes: float,
                 max_rate: Optional[float] = None) -> Event:
        """Start a flow of ``nbytes`` over ``links``.

        Parameters
        ----------
        links:
            The capacitated links the flow traverses (order irrelevant).
        nbytes:
            Payload size in bytes.
        max_rate:
            Optional per-flow rate ceiling (bytes/s) — models per-stream
            limits such as a single S3 connection's throughput.

        Returns an event that fires on delivery of the last byte.
        """
        if nbytes < 0 or not math.isfinite(nbytes):
            raise ValueError(f"nbytes must be finite and >= 0, got {nbytes}")
        if max_rate is not None and max_rate <= 0:
            raise ValueError(f"max_rate must be > 0, got {max_rate}")
        self.total_flows += 1
        done = Event(self.env)
        if nbytes == 0:
            done.succeed()
            return done
        self._sync()
        nbytes = float(nbytes)
        # Completion tolerance must scale with the transfer size:
        # float subtraction across many progress updates leaves a
        # relative residue (~1e-12 of the size), which for GB-scale
        # flows dwarfs any absolute epsilon.
        eps = max(1e-9, nbytes * 1e-9)
        flow = _Flow(self, links, done, max_rate, eps)
        pos = self._append(flow, nbytes, eps, max_rate)
        self._flows[flow] = None
        for link in flow.links:
            link._flows[flow] = None
        if nbytes <= eps:
            # Sub-epsilon payload: completes within this same cascade
            # (the legacy kernel pops it from the reschedule right
            # after the fill; final rates are as if it never joined).
            self._complete([pos])
        else:
            self._mark_dirty(flow)
        return done

    # -- struct-of-arrays plumbing ------------------------------------------

    def _append(self, flow: _Flow, nbytes: float, eps: float,
                max_rate: Optional[float]) -> int:
        n = self._n
        if n == len(self._f_bytes):
            self._grow_rows()
        fid = self._next_fid
        self._next_fid = fid + 1
        if fid == len(self._pos_of_id):
            old = self._pos_of_id
            grown = np.full(len(old) * 2, -1, dtype=np.int64)
            grown[:len(old)] = old
            self._pos_of_id = grown
        flow.fid = fid
        self._f_bytes[n] = nbytes
        self._f_rate[n] = 0.0
        self._f_eps[n] = eps
        self._f_cap[n] = _INF if max_rate is None else max_rate
        self._f_gen[n] = 0
        self._id_at_pos[n] = fid
        self._pos_of_id[fid] = n
        self._handles.append(flow)
        self._n = n + 1
        return n

    def _grow_rows(self) -> None:
        rows = len(self._f_bytes) * 2
        for name in ("_f_bytes", "_f_rate", "_f_eps", "_f_cap"):
            old = getattr(self, name)
            grown = np.zeros(rows, dtype=np.float64)
            grown[:len(old)] = old
            setattr(self, name, grown)
        for name in ("_f_gen", "_id_at_pos"):
            old = getattr(self, name)
            grown = np.zeros(rows, dtype=np.int64)
            grown[:len(old)] = old
            setattr(self, name, grown)

    def _drop_all_flows(self) -> None:
        """Forget every flow (``net._flows.clear()`` hook, tests only)."""
        fr = self._f_rate
        fb = self._f_bytes
        pos_of = self._pos_of_id
        for i, h in enumerate(self._handles):
            h._dead_rate = float(fr[i])
            h._dead_bytes = float(fb[i])
            pos_of[h.fid] = -1
        del self._handles[:]
        self._n = 0
        del self._dirty_seeds[:]

    # -- batched-cascade plumbing -------------------------------------------

    def _mark_dirty(self, seed: Optional[_Flow]) -> None:
        # Every touch re-defers (moving the callback to the back of the
        # flush list), so flush order tracks the *last* touch — see
        # Environment.defer.
        self._dirty = True
        if seed is not None:
            self._dirty_seeds.append(seed)
        self.env.defer(self._flush_cb_bound)

    def _flush_cb(self) -> None:
        if self._dirty:
            self._flush()

    def _flush(self) -> None:
        """Refill dirty components and reschedule the wake.

        Runs once per dirtied timestamp — from the end-of-timestamp
        hook, or earlier if a rate is read mid-cascade (in which case
        the hook's later invocation is a no-op).
        """
        self._dirty = False
        seeds = self._dirty_seeds
        self._dirty_seeds = []
        if self._n and seeds:
            positions, handles = self._component(seeds)
            self._fill(positions, handles)
        if not self._n:
            return
        if self.completion_mode == "projected":
            self._reschedule_projected()
        else:
            self._reschedule_exact()

    # -- internals -----------------------------------------------------------

    def _sync(self) -> None:
        """Advance all flows to ``now`` and complete the finished ones.

        The first touch of each timestamp does the real work; later
        same-timestamp calls see ``elapsed == 0`` and return.  Byte
        accounting uses a strictly sequential accumulation
        (``np.add.accumulate``) in insertion order, so the vector path
        reproduces the scalar (and legacy) float sums bit-for-bit.
        """
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0:
            return
        n = self._n
        if not n:
            return
        fb = self._f_bytes
        fr = self._f_rate
        if n >= self.VEC_SCAN_MIN:
            lefts = fb[:n].copy()
            moved = fr[:n] * elapsed
            np.subtract(lefts, moved, out=fb[:n])
            # Clamp the delivered-bytes counter to what each flow
            # actually had left (the final wake routinely lands a hair
            # past the true finish), then accumulate sequentially.
            acc = np.empty(n + 1, dtype=np.float64)
            acc[0] = self.total_bytes_moved
            np.minimum(moved, np.maximum(lefts, 0.0), out=acc[1:])
            self.total_bytes_moved = float(np.add.accumulate(acc)[-1])
            hits = np.nonzero(fb[:n] <= self._f_eps[:n])[0]
            finished = hits.tolist() if hits.size else None
        else:
            rates = fr[:n].tolist()
            lefts_l = fb[:n].tolist()
            eps_l = self._f_eps[:n].tolist()
            total = self.total_bytes_moved
            finished = None
            for i in range(n):
                left = lefts_l[i]
                moved = rates[i] * elapsed
                new_left = left - moved
                lefts_l[i] = new_left
                if moved > left:
                    moved = left if left > 0.0 else 0.0
                total += moved
                if new_left <= eps_l[i]:
                    if finished is None:
                        finished = [i]
                    else:
                        finished.append(i)
            fb[:n] = lefts_l
            self.total_bytes_moved = total
        if finished:
            self._complete(finished)

    def _complete(self, positions: List[int]) -> None:
        """Finish the flows at ``positions`` (ascending insertion order).

        Pops them from the registry and their links, compacts the
        packed arrays, fires their events in insertion order (the order
        the legacy kernel fired them), and seeds the deferred refill
        with the dead flows as traversal roots.
        """
        handles = self._handles
        pos_of = self._pos_of_id
        fb = self._f_bytes
        fr = self._f_rate
        done = [handles[p] for p in positions]
        for h, p in zip(done, positions):
            h._dead_rate = float(fr[p])
            h._dead_bytes = float(fb[p])
            pos_of[h.fid] = -1
        n = self._n
        k = len(positions)
        nn = n - k
        arrays = (self._f_bytes, self._f_rate, self._f_eps, self._f_cap,
                  self._f_gen, self._id_at_pos)
        if nn == 0:
            del handles[:]
        elif k == 1:
            p = positions[0]
            for arr in arrays:
                arr[p:nn] = arr[p + 1:n]
            del handles[p]
            if p < nn:
                pos_of[self._id_at_pos[p:nn]] = np.arange(p, nn)
        else:
            keep = np.ones(n, dtype=bool)
            keep[positions] = False
            for arr in arrays:
                arr[:nn] = arr[:n][keep]
            for p in reversed(positions):
                del handles[p]
            p0 = positions[0]
            if p0 < nn:
                pos_of[self._id_at_pos[p0:nn]] = np.arange(p0, nn)
        self._n = nn
        flows = self._flows
        for h in done:
            del flows[h]
            for link in h.links:
                link._flows.pop(h, None)
            h.event.succeed()
            self._mark_dirty(h)

    def _component(self, seeds: Sequence[_Flow]
                   ) -> Tuple[Optional[List[int]], List[_Flow]]:
        """Live flows connected to ``seeds`` through shared links.

        Returns ``(positions, handles)`` in insertion (packed) order;
        ``positions is None`` means the whole network was touched (the
        common star-topology case), letting fills skip the gather.
        Seeds may be just-finished flows (traversal roots only).
        Visited links and flows are stamp-marked with a fresh pass id,
        so the scan allocates only the pending stack and the traversal
        order never leaks into the result.
        """
        sid = self._stamp_seq = self._stamp_seq + 1
        pending: List[Link] = []
        nseen = 0
        for h in seeds:
            if h._stamp != sid:
                h._stamp = sid
                nseen += 1
                for link in h.links:
                    if link._stamp != sid:
                        link._stamp = sid
                        pending.append(link)
        while pending:
            link = pending.pop()
            for h in link._flows:
                if h._stamp != sid:
                    h._stamp = sid
                    nseen += 1
                    for nxt in h.links:
                        if nxt._stamp != sid:
                            nxt._stamp = sid
                            pending.append(nxt)
        if nseen >= len(self._flows):
            return None, self._handles
        positions: List[int] = []
        members: List[_Flow] = []
        for i, h in enumerate(self._handles):
            if h._stamp == sid:
                positions.append(i)
                members.append(h)
        return positions, members

    # -- progressive filling --------------------------------------------------

    def _fill(self, positions: Optional[List[int]],
              handles: List[_Flow]) -> None:
        """Progressive filling to the max-min fair allocation.

        ``positions is None`` refills the whole network; otherwise the
        fill is restricted to one connected component (rates of flows
        outside it are left untouched).
        """
        count = len(handles)
        if count == 0:
            return
        projected = self.completion_mode == "projected"
        if count == 1:
            # Singleton fill (no contention): rate is the tightest of
            # the link capacities and the per-flow cap — the exact
            # value one loop iteration of the general fill produces.
            h = handles[0]
            pos = 0 if positions is None else positions[0]
            share = _INF
            for link in h.links:
                if link.capacity < share:
                    share = link.capacity
            cap = h.max_rate
            if cap is not None and cap < share:
                rate = cap
            elif share < _INF:
                rate = share
            else:
                rate = cap or _INF
            self._f_rate[pos] = rate
            if projected:
                self._f_gen[pos] += 1
                self._push_projection(h, pos)
            return
        if count < self.VEC_FILL_MIN:
            rates = self._fill_scalar(handles)
        else:
            rates = self._fill_vector(handles, positions)
        if positions is None:
            self._f_rate[:count] = rates
            if projected:
                self._f_gen[:count] += 1
                for i, h in enumerate(handles):
                    self._push_projection(h, i)
        else:
            idx = np.asarray(positions, dtype=np.int64)
            self._f_rate[idx] = rates
            if projected:
                self._f_gen[idx] += 1
                for pos, h in zip(positions, handles):
                    self._push_projection(h, pos)

    def _fill_scalar(self, flow_list: List[_Flow]) -> List[float]:
        """In-place progressive filling over the flow handles.

        This is the legacy kernel's fill verbatim (scratch state on the
        links/handles, claimed by stamping with a fresh pass id), with
        rates collected into scratch slots and scatter-written by the
        caller.  Iteration order — and therefore every float operation
        — matches the legacy kernel: flow order is insertion order,
        link order is first-encounter order over the flows' links, and
        the freeze scan walks ``link._flows``.
        """
        fid = self._stamp_seq = self._stamp_seq + 1
        links: List[Link] = []
        for h in flow_list:
            h._srate = 0.0
            h._frozen = False
            for link in h.links:
                if link._stamp != fid:
                    link._stamp = fid
                    link._residual = link.capacity
                    link._n = 0
                    links.append(link)
                link._n += 1
        remaining = len(flow_list)

        while remaining:
            # Fair share offered by each link still serving unfrozen flows.
            bottleneck_share = _INF
            for link in links:
                n = link._n
                if n > 0:
                    share = link._residual / n
                    if share < bottleneck_share:
                        bottleneck_share = share
            # Rate-capped flows below the bottleneck share freeze at
            # their cap instead (they are their own bottleneck).
            capped_any = False
            for h in flow_list:
                if not h._frozen:
                    cap = h.max_rate
                    if cap is not None and cap < bottleneck_share:
                        capped_any = True
                        h._frozen = True
                        remaining -= 1
                        h._srate = cap
                        for link in h.links:
                            r = link._residual - cap
                            link._residual = r if r > 0.0 else 0.0
                            link._n -= 1
            if capped_any:
                continue
            if bottleneck_share == _INF:
                # Flows with no links at all: unconstrained; should not
                # happen in practice but terminate rather than spin.
                for h in flow_list:
                    if not h._frozen:
                        h._frozen = True
                        remaining -= 1
                        h._srate = h.max_rate or _INF
                break
            # Freeze every unfrozen flow on a bottleneck link.  Flows
            # outside this fill's component can never appear on a
            # component link (shared links merge components), so the
            # ``link._flows`` walk stays within ``flow_list``.
            frozen_any = False
            tolerance = bottleneck_share * (1 + 1e-12)
            for link in links:
                n = link._n
                if n > 0 and link._residual / n <= tolerance:
                    for h in link._flows:
                        if not h._frozen:
                            h._frozen = True
                            remaining -= 1
                            h._srate = bottleneck_share
                            for lnk in h.links:
                                r = lnk._residual - bottleneck_share
                                lnk._residual = r if r > 0.0 else 0.0
                                lnk._n -= 1
                            frozen_any = True
            if not frozen_any:  # pragma: no cover - numerical safety valve
                for h in flow_list:
                    if not h._frozen:
                        h._frozen = True
                        remaining -= 1
                        h._srate = bottleneck_share
        return [h._srate for h in flow_list]

    def _fill_vector(self, handles: List[_Flow],
                     positions: Optional[List[int]]) -> np.ndarray:
        """Vectorized progressive filling over a large component.

        Bit-identical to :meth:`_fill_scalar` by construction: the
        bottleneck share is an order-independent masked min-reduction;
        cap freezes replay the scalar per-flow updates in insertion
        order; and saturation freezes subtract the share from each
        touched link the same number of times, sequentially, that the
        scalar flow-by-flow walk would (links whose unfrozen count
        drops to zero are skipped — their residuals are never read
        again within this fill).
        """
        nf = len(handles)
        fid = self._stamp_seq = self._stamp_seq + 1
        link_objs: List[Link] = []
        flow_links: List[List[int]] = []
        flat: List[int] = []
        for h in handles:
            h._frozen = False
            idxs: List[int] = []
            for link in h.links:
                if link._stamp != fid:
                    link._stamp = fid
                    link._n = len(link_objs)  # local index (scratch reuse)
                    link_objs.append(link)
                idxs.append(link._n)
            flow_links.append(idxs)
            flat.extend(idxs)
        nl = len(link_objs)
        res = np.array([link.capacity for link in link_objs],
                       dtype=np.float64)
        cnt = np.bincount(np.asarray(flat, dtype=np.int64), minlength=nl)
        if positions is None:
            caps = self._f_cap[:nf].copy()
        else:
            caps = self._f_cap[np.asarray(positions, dtype=np.int64)]
        rates = np.zeros(nf, dtype=np.float64)
        frozen = np.zeros(nf, dtype=bool)
        findex = {h: i for i, h in enumerate(handles)}
        remaining = nf

        while remaining:
            active = cnt > 0
            if active.any():
                bottleneck_share = float((res[active] / cnt[active]).min())
            else:
                bottleneck_share = _INF
            capm = (caps < bottleneck_share) & ~frozen
            if capm.any():
                for i in np.nonzero(capm)[0].tolist():
                    cap = float(caps[i])
                    frozen[i] = True
                    remaining -= 1
                    rates[i] = cap
                    for li in flow_links[i]:
                        r = float(res[li]) - cap
                        res[li] = r if r > 0.0 else 0.0
                        cnt[li] -= 1
                continue
            if bottleneck_share == _INF:
                idle = ~frozen
                rates[idle] = np.where(np.isinf(caps[idle]), _INF,
                                       caps[idle])
                break
            frozen_any = False
            tolerance = bottleneck_share * (1 + 1e-12)
            for li in range(nl):
                c = int(cnt[li])
                if c > 0 and float(res[li]) / c <= tolerance:
                    group: List[int] = []
                    for h in link_objs[li]._flows:
                        i = findex[h]
                        if not frozen[i]:
                            group.append(i)
                    if not group:  # pragma: no cover - duplicate-link path
                        continue
                    garr = np.asarray(group, dtype=np.int64)
                    frozen[garr] = True
                    rates[garr] = bottleneck_share
                    remaining -= len(group)
                    touched: List[int] = []
                    for i in group:
                        touched.extend(flow_links[i])
                    kcounts = np.bincount(
                        np.asarray(touched, dtype=np.int64), minlength=nl)
                    cnt -= kcounts
                    # Replay the sequential clamped subtractions: link j
                    # loses the share k_j times, exactly as the scalar
                    # flow walk subtracts it.  Links left with no
                    # unfrozen flows are skipped — nothing reads their
                    # residuals again within this fill.
                    upd = np.nonzero((kcounts > 0) & (cnt > 0))[0]
                    if upd.size:
                        kk = kcounts[upd]
                        while upd.size:
                            res[upd] = np.maximum(
                                res[upd] - bottleneck_share, 0.0)
                            kk = kk - 1
                            live = kk > 0
                            if not live.all():
                                upd = upd[live]
                                kk = kk[live]
                    frozen_any = True
            if not frozen_any:  # pragma: no cover - numerical safety valve
                rates[~frozen] = bottleneck_share
                break
        return rates

    # -- completion scheduling ------------------------------------------------

    def _push_projection(self, flow: _Flow, pos: int) -> None:
        rate = float(self._f_rate[pos])
        if rate > 0.0 and flow in self._flows:
            seq = self._heap_seq + 1
            self._heap_seq = seq
            heappush(self._heap,
                     (self.env.now + float(self._f_bytes[pos]) / rate,
                      seq, int(self._f_gen[pos]), flow))

    def _reschedule_exact(self) -> None:
        n = self._n
        if n >= self.VEC_SCAN_MIN:
            fr = self._f_rate[:n]
            mask = fr > 0.0
            if mask.all():
                rem = self._f_bytes[:n] / fr
            elif mask.any():
                rem = self._f_bytes[:n][mask] / fr[mask]
            else:  # pragma: no cover - all flows stalled
                return
            next_in = float(rem.min())
        else:
            rates = self._f_rate[:n].tolist()
            lefts = self._f_bytes[:n].tolist()
            next_in = -1.0
            for i in range(n):
                rate = rates[i]
                if rate > 0.0:
                    remaining = lefts[i] / rate
                    if next_in < 0.0 or remaining < next_in:
                        next_in = remaining
            if next_in < 0.0:  # pragma: no cover - all flows stalled
                return
        # Floor the delay so the clock always advances between wakeups
        # (a zero-elapsed wake would make no progress and spin).
        wake = Timeout(self.env, max(next_in, 1e-9))
        self._wake_event = wake
        wake.callbacks.append(self._wake_cb)

    def _reschedule_projected(self) -> None:
        """Wake at the earliest *valid* projected finish time.

        Heap entries carry the flow's generation at push time; any
        entry whose flow finished or was re-rated since is stale and is
        discarded on pop (lazy invalidation).  A flow completed earlier
        in this same-timestamp batch has position -1, so its entries
        can never fire a wake.  ``max(.., 1e-9)`` clamps float drift of
        surviving projections at the batch boundary (a projection made
        at an earlier timestamp can lag ``now`` by an ulp).
        """
        heap = self._heap
        pos_of = self._pos_of_id
        gens = self._f_gen
        while heap:
            when, _seq, gen, flow = heap[0]
            pos = pos_of[flow.fid]
            if pos < 0 or gen != gens[pos]:
                heappop(heap)
                continue
            wake = Timeout(self.env, max(when - self.env.now, 1e-9))
            self._wake_event = wake
            wake.callbacks.append(self._wake_cb)
            return

    def _on_wake(self, event: object) -> None:
        if event is not self._wake_event:
            return  # superseded by a newer reschedule
        self._sync()
        # Always refresh the wake (the legacy kernel rescheduled on
        # every valid wake); completions seeded their own refill above.
        self._mark_dirty(None)
