"""Max-min fair flow network.

Models a set of capacitated links (NIC transmit/receive sides, a shared
service endpoint, a core switch) carrying concurrent byte flows.  Each
flow traverses an ordered set of links; whenever the flow population
changes, bandwidth is reallocated by progressive filling (water-filling)
to the max-min fair allocation, the textbook model of TCP-like fair
sharing on a star topology.

This is the substrate used for all network transfers in the EC2
simulation: NFS client/server traffic, GlusterFS peer reads, PVFS
stripe traffic, and S3 GET/PUT payloads.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Optional, Sequence

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

_TIME_EPS = 1e-9


class Link:
    """A capacitated, unidirectional link (bytes per second)."""

    __slots__ = ("name", "capacity", "_flows")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0 or not math.isfinite(capacity):
            raise ValueError(f"capacity must be finite and > 0, got {capacity}")
        self.name = name
        self.capacity = float(capacity)
        # Insertion-ordered (dict keys) so allocation arithmetic is
        # bit-reproducible across processes.
        self._flows: Dict["_Flow", None] = {}

    @property
    def active_flows(self) -> int:
        """Number of flows currently routed over this link."""
        return len(self._flows)

    def __repr__(self) -> str:
        return f"<Link {self.name} cap={self.capacity:.3g}B/s flows={len(self._flows)}>"


class _Flow:
    __slots__ = ("links", "bytes_left", "rate", "event", "max_rate", "eps")

    def __init__(self, links: Sequence[Link], nbytes: float, event: Event,
                 max_rate: Optional[float]) -> None:
        self.links = list(links)
        self.bytes_left = float(nbytes)
        self.rate = 0.0
        self.event = event
        self.max_rate = max_rate
        # Completion tolerance must scale with the transfer size:
        # float subtraction across many progress updates leaves a
        # relative residue (~1e-12 of the size), which for GB-scale
        # flows dwarfs any absolute epsilon.
        self.eps = max(1e-9, nbytes * 1e-9)


class FlowNetwork:
    """A collection of links carrying max-min fairly shared flows."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._flows: Dict[_Flow, None] = {}
        self._last_update = env.now
        self._wake_token = 0
        #: Total bytes delivered across all completed+running flows.
        self.total_bytes_moved = 0.0
        #: Total flows ever started.
        self.total_flows = 0

    # -- public API --------------------------------------------------------

    @property
    def active_flows(self) -> int:
        """Number of in-flight flows."""
        return len(self._flows)

    def transfer(self, links: Sequence[Link], nbytes: float,
                 max_rate: Optional[float] = None) -> Event:
        """Start a flow of ``nbytes`` over ``links``.

        Parameters
        ----------
        links:
            The capacitated links the flow traverses (order irrelevant).
        nbytes:
            Payload size in bytes.
        max_rate:
            Optional per-flow rate ceiling (bytes/s) — models per-stream
            limits such as a single S3 connection's throughput.

        Returns an event that fires on delivery of the last byte.
        """
        if nbytes < 0 or not math.isfinite(nbytes):
            raise ValueError(f"nbytes must be finite and >= 0, got {nbytes}")
        if max_rate is not None and max_rate <= 0:
            raise ValueError(f"max_rate must be > 0, got {max_rate}")
        self.total_flows += 1
        done = Event(self.env)
        if nbytes == 0:
            done.succeed()
            return done
        self._advance()
        flow = _Flow(links, nbytes, done, max_rate)
        self._flows[flow] = None
        for link in flow.links:
            link._flows[flow] = None
        self._reallocate()
        self._reschedule()
        return flow.event

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        now = self.env.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                moved = flow.rate * elapsed
                flow.bytes_left -= moved
                self.total_bytes_moved += moved
        self._last_update = now

    def _reallocate(self) -> None:
        """Progressive filling to the max-min fair allocation."""
        unfrozen: Dict[_Flow, None] = dict.fromkeys(self._flows)
        if not unfrozen:
            return
        residual: Dict[Link, float] = {}
        link_unfrozen: Dict[Link, int] = {}
        links: Dict[Link, None] = {}
        for flow in unfrozen:
            flow.rate = 0.0
            for link in flow.links:
                links[link] = None
                residual.setdefault(link, link.capacity)
                link_unfrozen[link] = link_unfrozen.get(link, 0) + 1

        while unfrozen:
            # Fair share offered by each link still serving unfrozen flows.
            bottleneck_share = float("inf")
            for link in links:
                n = link_unfrozen.get(link, 0)
                if n > 0:
                    share = residual[link] / n
                    if share < bottleneck_share:
                        bottleneck_share = share
            # Rate-capped flows below the bottleneck share freeze at
            # their cap instead (they are their own bottleneck).
            capped = [f for f in unfrozen
                      if f.max_rate is not None and f.max_rate < bottleneck_share]
            if capped:
                for flow in capped:
                    self._freeze(flow, flow.max_rate, unfrozen,
                                 residual, link_unfrozen)
                continue
            if not math.isfinite(bottleneck_share):
                # Flows with no links at all: unconstrained; should not
                # happen in practice but terminate rather than spin.
                for flow in list(unfrozen):
                    self._freeze(flow, flow.max_rate or float("inf"),
                                 unfrozen, residual, link_unfrozen)
                break
            # Freeze every unfrozen flow on a bottleneck link.
            frozen_any = False
            for link in list(links):
                n = link_unfrozen.get(link, 0)
                if n > 0 and residual[link] / n <= bottleneck_share * (1 + 1e-12):
                    for flow in [f for f in link._flows if f in unfrozen]:
                        self._freeze(flow, bottleneck_share, unfrozen,
                                     residual, link_unfrozen)
                        frozen_any = True
            if not frozen_any:  # pragma: no cover - numerical safety valve
                for flow in list(unfrozen):
                    self._freeze(flow, bottleneck_share, unfrozen,
                                 residual, link_unfrozen)

    @staticmethod
    def _freeze(flow: _Flow, rate: float, unfrozen: Dict["_Flow", None],
                residual: Dict[Link, float], link_unfrozen: Dict[Link, int]) -> None:
        flow.rate = rate
        unfrozen.pop(flow, None)
        for link in flow.links:
            residual[link] = max(0.0, residual[link] - rate)
            link_unfrozen[link] -= 1

    def _reschedule(self) -> None:
        finished = [f for f in self._flows if f.bytes_left <= f.eps]
        for flow in finished:
            self._flows.pop(flow, None)
            for link in flow.links:
                link._flows.pop(flow, None)
            flow.event.succeed()
        if finished:
            self._reallocate()
        if not self._flows:
            return
        next_in = min(
            (f.bytes_left / f.rate) for f in self._flows if f.rate > 0
        ) if any(f.rate > 0 for f in self._flows) else None
        if next_in is None:  # pragma: no cover - all flows stalled
            return
        self._wake_token += 1
        token = self._wake_token
        # Floor the delay so the clock always advances between wakeups
        # (a zero-elapsed wake would make no progress and spin).
        wake = self.env.timeout(max(next_in, 1e-9))
        wake.callbacks.append(lambda _ev, t=token: self._on_wake(t))

    def _on_wake(self, token: int) -> None:
        if token != self._wake_token:
            return
        self._advance()
        self._reschedule()
