"""Workflow profiling (the wfprof analog behind the paper's Table I)."""

from .wfprof import (
    ApplicationProfile,
    TransformationProfile,
    format_table1,
    profile_records,
)

__all__ = [
    "ApplicationProfile",
    "TransformationProfile",
    "format_table1",
    "profile_records",
]
