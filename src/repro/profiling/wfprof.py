"""wfprof: workflow profiling (the paper's Table I).

The paper determines each application's resource usage with a ptrace-
based profiler (http://pegasus.isi.edu/wfprof) that measures I/O, CPU
usage, and peak memory of every task, then summarises each application
as High/Medium/Low in three categories:

============  =====  ========  =====
Application   I/O    Memory    CPU
============  =====  ========  =====
Montage       High   Low       Low
Broadband     Medium High      Medium
Epigenome     Low    Medium    High
============  =====  ========  =====

Our analog profiles a simulated execution: every
:class:`~repro.workflow.executor.JobRecord` already carries the task's
compute seconds, time in storage operations, bytes moved, and peak
memory, so the profile is a pure aggregation.  Ratings use fixed
thresholds on the same quantities the paper describes (fraction of
busy time waiting on I/O vs computing; CPU-time-weighted peak memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence

from ..workflow.executor import JobRecord

GB = 1_000_000_000.0

# Rating thresholds.  Calibrated so that the three paper applications,
# profiled on the single-node reference configuration, land on the
# paper's Table I cells; see tests/profiling/test_wfprof.py.
IO_HIGH = 0.60       # fraction of busy time in storage operations
IO_LOW = 0.18
CPU_HIGH = 0.85      # fraction of busy time computing
CPU_LOW = 0.35
MEM_HIGH = 1.0 * GB  # CPU-time-weighted mean of task peak memory
MEM_LOW = 0.4 * GB


@dataclass
class TransformationProfile:
    """Aggregated measurements for one executable (e.g. ``mDiffFit``)."""

    transformation: str
    count: int = 0
    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    peak_memory: float = 0.0

    @property
    def mean_runtime(self) -> float:
        """Mean wall-clock busy time per task."""
        return (self.cpu_seconds + self.io_seconds) / self.count \
            if self.count else 0.0


@dataclass
class ApplicationProfile:
    """The whole application's resource-usage summary (one Table I row)."""

    name: str
    n_tasks: int
    cpu_seconds: float
    io_seconds: float
    bytes_read: float
    bytes_written: float
    weighted_memory: float
    transformations: Dict[str, TransformationProfile] = field(default_factory=dict)

    @property
    def busy_seconds(self) -> float:
        """Total task-busy time (compute + storage waits)."""
        return self.cpu_seconds + self.io_seconds

    @property
    def io_fraction(self) -> float:
        """Fraction of busy time spent in storage operations."""
        return self.io_seconds / self.busy_seconds if self.busy_seconds else 0.0

    @property
    def cpu_fraction(self) -> float:
        """Fraction of busy time spent computing."""
        return self.cpu_seconds / self.busy_seconds if self.busy_seconds else 0.0

    # -- ratings ------------------------------------------------------------

    @property
    def io_rating(self) -> str:
        """Table I I/O column."""
        if self.io_fraction >= IO_HIGH:
            return "High"
        return "Low" if self.io_fraction < IO_LOW else "Medium"

    @property
    def cpu_rating(self) -> str:
        """Table I CPU column."""
        if self.cpu_fraction >= CPU_HIGH:
            return "High"
        return "Low" if self.cpu_fraction < CPU_LOW else "Medium"

    @property
    def memory_rating(self) -> str:
        """Table I Memory column."""
        if self.weighted_memory >= MEM_HIGH:
            return "High"
        return "Low" if self.weighted_memory < MEM_LOW else "Medium"

    def ratings(self) -> Dict[str, str]:
        """The Table I cells for this application."""
        return {
            "I/O": self.io_rating,
            "Memory": self.memory_rating,
            "CPU": self.cpu_rating,
        }


def profile_records(name: str,
                    records: Sequence[JobRecord]) -> ApplicationProfile:
    """Aggregate job records into an application profile."""
    transformations: Dict[str, TransformationProfile] = {}
    cpu = io = rd = wr = 0.0
    mem_weighted = 0.0
    weight = 0.0
    for r in records:
        tp = transformations.get(r.transformation)
        if tp is None:
            tp = transformations[r.transformation] = TransformationProfile(
                r.transformation)
        tp.count += 1
        tp.cpu_seconds += r.cpu_seconds
        tp.io_seconds += r.io_seconds
        tp.bytes_read += r.bytes_read
        tp.bytes_written += r.bytes_written
        tp.peak_memory = max(tp.peak_memory, r.memory_bytes)
        cpu += r.cpu_seconds
        io += r.io_seconds
        rd += r.bytes_read
        wr += r.bytes_written
        # Memory weighted by busy time: long-running fat tasks define
        # the application's memory character.
        w = r.cpu_seconds + r.io_seconds
        mem_weighted += r.memory_bytes * w
        weight += w
    return ApplicationProfile(
        name=name,
        n_tasks=len(records),
        cpu_seconds=cpu,
        io_seconds=io,
        bytes_read=rd,
        bytes_written=wr,
        weighted_memory=mem_weighted / weight if weight else 0.0,
        transformations=transformations,
    )


def format_table1(profiles: Iterable[ApplicationProfile]) -> str:
    """Render Table I ("Application resource usage comparison")."""
    lines = [
        "TABLE I — APPLICATION RESOURCE USAGE COMPARISON",
        f"{'Application':<14}{'I/O':<10}{'Memory':<10}{'CPU':<10}",
    ]
    for p in profiles:
        r = p.ratings()
        lines.append(
            f"{p.name:<14}{r['I/O']:<10}{r['Memory']:<10}{r['CPU']:<10}")
    return "\n".join(lines)
