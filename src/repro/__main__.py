"""``python -m repro`` — same as the ``repro-ec2`` console script."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
