"""Workflow management: DAGs, planning, release, and scheduling.

The Pegasus/DAGMan/Condor stack of the paper, rebuilt for the
simulation:

* :class:`Workflow` / :class:`Task` — abstract workflow description;
* :class:`PegasusMapper` — abstract → executable planning (file
  resolution, S3 job wrapping);
* :class:`DAGMan` — dependency-ordered job release;
* :class:`CondorPool` — locality-blind FIFO slots (the paper's
  scheduler); :class:`LocalityAwarePool` — the data-aware ablation;
* :class:`PegasusWMS` — the submit-host facade returning
  :class:`WorkflowRun` records.
"""

from .clustering import cluster_horizontal
from .condor import CondorPool, LocalityAwarePool
from .dag import Task, Workflow, WorkflowValidationError
from .dagman import DAGMan, WorkflowFailedError
from .executor import JobRecord, JobTooLargeError, TaskFailedError, execute_job
from .failures import FailureInjector
from .mapper import ExecutableJob, ExecutablePlan, PegasusMapper
from .wms import PegasusWMS, WorkflowRun

__all__ = [
    "CondorPool",
    "cluster_horizontal",
    "DAGMan",
    "ExecutableJob",
    "ExecutablePlan",
    "JobRecord",
    "JobTooLargeError",
    "LocalityAwarePool",
    "PegasusMapper",
    "FailureInjector",
    "PegasusWMS",
    "TaskFailedError",
    "WorkflowFailedError",
    "Task",
    "Workflow",
    "WorkflowRun",
    "WorkflowValidationError",
    "execute_job",
]
