"""Abstract workflow DAGs.

A workflow is a set of tasks linked by data-flow dependencies: each
task reads input files and produces output files, and a task may start
only when every one of its input files is available (pre-staged
workflow input, or produced by an earlier task).  This mirrors the
Pegasus abstract-workflow (DAX) model the paper plans with.

Dependencies are *derived from the files*: if task B reads a file task
A writes, B depends on A.  Explicit control-flow edges can be added for
the rare tasks ordered without a data exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..storage.files import FileMetadata


class WorkflowValidationError(ValueError):
    """The workflow graph violates a structural requirement."""


@dataclass
class Task:
    """One computational step of a workflow.

    Attributes
    ----------
    id:
        Unique task id within the workflow.
    transformation:
        The executable's logical name (e.g. ``"mProjectPP"``); used by
        the profiler to aggregate per-transformation statistics.
    cpu_seconds:
        Pure computation time on one core (exclusive of all I/O).
    memory_bytes:
        Peak resident memory; the executor claims this from the node's
        memory container for the task's duration (this is what makes
        Broadband memory-limited).
    inputs / outputs:
        Logical file names read / written.
    """

    id: str
    transformation: str
    cpu_seconds: float
    memory_bytes: float = 0.0
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cpu_seconds < 0:
            raise ValueError(f"task {self.id}: cpu_seconds must be >= 0")
        if self.memory_bytes < 0:
            raise ValueError(f"task {self.id}: memory_bytes must be >= 0")


class Workflow:
    """An abstract (resource-independent) workflow."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.tasks: Dict[str, Task] = {}
        self.files: Dict[str, FileMetadata] = {}
        #: Names of pre-staged workflow inputs (no producer task).
        self.input_files: Set[str] = set()
        #: Temporary files: excluded from output accounting even when
        #: no task consumes them (the paper reports Montage's output
        #: "excluding temporary data").
        self.temp_files: Set[str] = set()
        #: Files that are final products even though some task also
        #: consumes them (e.g. Epigenome's merged map).
        self.final_files: Set[str] = set()
        #: Extra control-flow-only edges (parent_id, child_id).
        self.control_edges: Set[Tuple[str, str]] = set()
        self._producer: Dict[str, str] = {}
        # Set by freeze(): the graph is immutable and pre-validated,
        # with the parent map computed once (see freeze()).
        self._frozen = False
        self._cached_parents: Optional[Dict[str, Set[str]]] = None

    # -- construction ---------------------------------------------------------

    def add_file(self, name: str, size: float,
                 is_input: bool = False,
                 temporary: bool = False,
                 final: bool = False) -> FileMetadata:
        """Declare a logical file; inputs are pre-staged data.

        ``temporary`` excludes an unconsumed product from the output
        accounting; ``final`` forces a consumed product into it.
        """
        self._check_mutable()
        if is_input and (temporary or final):
            raise WorkflowValidationError(
                f"file {name!r}: inputs cannot be temporary or final")
        meta = FileMetadata(name, size)
        existing = self.files.get(name)
        if existing is not None and existing != meta:
            raise WorkflowValidationError(
                f"file {name!r} redefined with a different size")
        self.files[name] = meta
        if is_input:
            self.input_files.add(name)
        if temporary:
            self.temp_files.add(name)
        if final:
            self.final_files.add(name)
        return meta

    def add_task(self, task: Task) -> Task:
        """Add a task; its files must have been declared already."""
        self._check_mutable()
        if task.id in self.tasks:
            raise WorkflowValidationError(f"duplicate task id {task.id!r}")
        for name in list(task.inputs) + list(task.outputs):
            if name not in self.files:
                raise WorkflowValidationError(
                    f"task {task.id}: undeclared file {name!r}")
        for name in task.outputs:
            owner = self._producer.get(name)
            if owner is not None:
                raise WorkflowValidationError(
                    f"file {name!r} produced by both {owner!r} and {task.id!r}")
            if name in self.input_files:
                raise WorkflowValidationError(
                    f"task {task.id} writes workflow input {name!r}")
            self._producer[name] = task.id
        self.tasks[task.id] = task
        return task

    def add_control_edge(self, parent_id: str, child_id: str) -> None:
        """Order two tasks without a data dependency."""
        self._check_mutable()
        for tid in (parent_id, child_id):
            if tid not in self.tasks:
                raise WorkflowValidationError(f"unknown task {tid!r}")
        self.control_edges.add((parent_id, child_id))

    # -- freezing ----------------------------------------------------------------

    def _check_mutable(self) -> None:
        if self._frozen:
            raise WorkflowValidationError(
                f"workflow {self.name!r} is frozen; instantiate a fresh "
                f"copy to modify it")

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has sealed the graph."""
        return self._frozen

    def freeze(self) -> "Workflow":
        """Seal the graph: validate once, precompute the parent map.

        A frozen workflow rejects further ``add_*`` calls, so it can be
        safely shared across many experiment runs (nothing in the
        execution path mutates a workflow — planning state lives in the
        plan, file state in the storage namespace).  :meth:`validate`
        and :meth:`parents` become O(1)-ish lookups, which is what
        makes cached app templates cheap to re-instantiate.
        Idempotent; returns ``self`` for chaining.
        """
        if self._frozen:
            return self
        self.validate()
        self._cached_parents = {tid: self.parents(tid) for tid in self.tasks}
        self._frozen = True
        return self

    # -- structure ----------------------------------------------------------------

    def producer_of(self, file_name: str) -> Optional[str]:
        """The task producing ``file_name`` (None for workflow inputs)."""
        return self._producer.get(file_name)

    def parents(self, task_id: str) -> Set[str]:
        """Ids of tasks that must finish before ``task_id`` can start."""
        cached = self._cached_parents
        if cached is not None:
            # Return a copy: callers (the mapper) hand these sets to
            # planning structures that must not alias template state.
            return set(cached[task_id])
        task = self.tasks[task_id]
        parents = {
            self._producer[f] for f in task.inputs if f in self._producer
        }
        # Iteration order cannot escape: the results land in a set.
        parents.update(
            p for p, c in self.control_edges if c == task_id  # lint: ignore[SIM003]
        )
        parents.discard(task_id)
        return parents

    def children(self, task_id: str) -> Set[str]:
        """Ids of tasks that depend on ``task_id``."""
        outs = set(self.tasks[task_id].outputs)
        kids = {
            t.id for t in self.tasks.values()
            if t.id != task_id and outs.intersection(t.inputs)
        }
        # Iteration order cannot escape: the results land in a set.
        kids.update(
            c for p, c in self.control_edges if p == task_id  # lint: ignore[SIM003]
        )
        return kids

    def validate(self) -> None:
        """Check structural soundness; raises on problems.

        * every non-input file has a producer or is a declared input;
        * the dependency graph is acyclic;
        * every task's inputs are reachable.

        A frozen workflow was validated when it was sealed and cannot
        have changed since, so re-validation is skipped.
        """
        if self._frozen:
            return
        for task in self.tasks.values():
            for name in task.inputs:
                if name not in self.input_files and name not in self._producer:
                    raise WorkflowValidationError(
                        f"task {task.id}: input {name!r} has no producer and "
                        f"is not a workflow input")
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[str]:
        """Task ids in a valid execution order (Kahn's algorithm)."""
        indeg = {tid: 0 for tid in self.tasks}
        children: Dict[str, List[str]] = {tid: [] for tid in self.tasks}
        for tid in self.tasks:
            for parent in self.parents(tid):
                indeg[tid] += 1
                children[parent].append(tid)
        ready = sorted(tid for tid, d in indeg.items() if d == 0)
        order: List[str] = []
        while ready:
            tid = ready.pop()
            order.append(tid)
            for child in children[tid]:
                indeg[child] -= 1
                if indeg[child] == 0:
                    ready.append(child)
        if len(order) != len(self.tasks):
            raise WorkflowValidationError(
                f"workflow {self.name!r} contains a dependency cycle")
        return order

    def levels(self) -> Dict[str, int]:
        """Each task's depth (longest path from any root)."""
        level: Dict[str, int] = {}
        for tid in self.topological_order():
            ps = self.parents(tid)
            level[tid] = 1 + max((level[p] for p in ps), default=-1)
        return level

    # -- summary stats ---------------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return len(self.tasks)

    @property
    def n_files(self) -> int:
        """Number of logical files (inputs + intermediates + outputs)."""
        return len(self.files)

    def input_bytes(self) -> float:
        """Total pre-staged input data.

        Summed in sorted name order: float addition is not associative,
        so summing in set hash order would let the last ulp of this
        figure vary with ``PYTHONHASHSEED``.
        """
        return sum(self.files[n].size for n in sorted(self.input_files))

    def output_bytes(self) -> float:
        """Total bytes of workflow products.

        A file counts when it is marked ``final``, or when it is
        terminal (never consumed by any task) and neither a workflow
        input nor marked ``temporary``.
        """
        consumed: Set[str] = set()
        for t in self.tasks.values():
            consumed.update(t.inputs)
        return sum(
            meta.size for name, meta in self.files.items()
            if name in self.final_files
            or (name not in consumed
                and name not in self.input_files
                and name not in self.temp_files)
        )

    def intermediate_bytes(self) -> float:
        """Bytes of files both produced and consumed inside the workflow."""
        consumed: Set[str] = set()
        for t in self.tasks.values():
            consumed.update(t.inputs)
        return sum(
            meta.size for name, meta in self.files.items()
            if name in consumed and name in self._producer
        )

    def total_cpu_seconds(self) -> float:
        """Sum of task compute times."""
        return sum(t.cpu_seconds for t in self.tasks.values())

    def describe(self) -> str:
        """One-line summary used by the CLI and examples."""
        return (f"{self.name}: {self.n_tasks} tasks, {self.n_files} files, "
                f"{self.input_bytes() / 1e9:.1f} GB in, "
                f"{self.output_bytes() / 1e9:.1f} GB out")

    def __repr__(self) -> str:
        return f"<Workflow {self.describe()}>"
