"""Per-job execution on a worker node.

A job's lifetime on its slot is the sequential pipeline the paper's
task wrappers produce:

1. claim peak memory from the node (this gates Broadband's >1 GB
   tasks: a 7 GB c1.xlarge can hold only a few at once);
2. read every input through the storage system (for S3, this is the
   caching client's GET + the program's local read);
3. compute for ``cpu_seconds``;
4. write every output through the storage system (for S3: local write
   + PUT).

The write-once namespace brackets every transfer, so any scheduling or
storage bug that would corrupt the data-flow fails the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from ..faults.spec import StorageUnavailableError
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from ..storage.files import FileState
from ..telemetry.spans import SpanBuilder

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance
    from ..simcore.engine import Environment
    from ..storage.base import StorageSystem
    from .mapper import ExecutableJob


class JobTooLargeError(RuntimeError):
    """A task's memory demand exceeds the node's physical memory."""


class TaskFailedError(RuntimeError):
    """A task attempt crashed (transient failure injected by the
    failure model).  DAGMan decides whether to retry."""


@dataclass
class JobRecord:
    """Observed execution of one job (feeds the profiler and results)."""

    task_id: str
    transformation: str
    node: str
    submit_time: float
    start_time: float = 0.0
    end_time: float = 0.0
    read_seconds: float = 0.0
    cpu_seconds: float = 0.0
    write_seconds: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    memory_bytes: float = 0.0
    #: Which attempt this record describes (1 = first try).
    attempt: int = 1
    #: True when this attempt crashed before producing its outputs.
    failed: bool = False
    #: True when the attempt died because its node crashed (the job is
    #: resubmitted without consuming a DAGMan retry).
    evicted: bool = False

    @property
    def duration(self) -> float:
        """Wall-clock runtime on the slot."""
        return self.end_time - self.start_time

    @property
    def io_seconds(self) -> float:
        """Time spent in storage operations."""
        return self.read_seconds + self.write_seconds

    @property
    def queue_delay(self) -> float:
        """Time between submission and slot start."""
        return self.start_time - self.submit_time


def execute_job(env: "Environment", job: "ExecutableJob",
                node: "VMInstance", storage: "StorageSystem",
                record: JobRecord,
                cpu_jitter_factor: float = 1.0,
                fail_this_attempt: bool = False,
                trace: TraceCollector = NULL_COLLECTOR,
                parent_span: Optional[int] = None) -> Generator:
    """Run one job on ``node`` (the caller holds the CPU slot).

    With ``fail_this_attempt`` the task crashes at the end of its
    compute phase — after consuming resources, before producing any
    output — modelling the transient failures DAGMan retries.

    ``parent_span`` links this job's span subtree under the enclosing
    workflow span (each job gets its own :class:`SpanBuilder`, so
    concurrently executing jobs cannot corrupt each other's nesting).
    """
    task = job.task
    ns = storage.namespace
    spans = SpanBuilder(trace, env, root_parent=parent_span)

    if task.memory_bytes > node.memory.capacity:
        raise JobTooLargeError(
            f"task {task.id} needs {task.memory_bytes / 1e9:.1f} GB but "
            f"{node.name} has {node.memory.capacity / 1e9:.1f} GB")

    # 1. memory gate ------------------------------------------------------
    if task.memory_bytes > 0:
        yield node.memory.get(task.memory_bytes)
    record.start_time = env.now
    record.memory_bytes = task.memory_bytes
    trace.emit(env.now, "task", "start", task=task.id, node=node.name,
               transformation=task.transformation)
    job_span = spans.begin("job", task.id, node=node.name,
                           transformation=task.transformation,
                           attempt=record.attempt)
    try:
        try:
            # 2. stage/read inputs ----------------------------------------
            t0 = env.now
            # Phase spans use explicit begin/end: three context-manager
            # entries per job attempt add up at 10^5 attempts per run.
            phase = spans.begin("phase", "read", node=node.name, task=task.id)
            try:
                for meta in job.inputs:
                    ns.begin_read(meta.name)
                    try:
                        yield from storage.span_read(node, meta, spans)
                    finally:
                        ns.end_read(meta.name)
                    record.bytes_read += meta.size
            finally:
                spans.end(phase)
            record.read_seconds = env.now - t0

            # 3. compute ----------------------------------------------------
            t0 = env.now
            phase = spans.begin("phase", "compute", node=node.name,
                                task=task.id)
            try:
                cpu = task.cpu_seconds * cpu_jitter_factor
                if cpu > 0:
                    yield env.timeout(cpu)
            finally:
                spans.end(phase)
            record.cpu_seconds = env.now - t0
            if fail_this_attempt:
                record.failed = True
                trace.emit(env.now, "task", "failed", task=task.id,
                           node=node.name, attempt=record.attempt)
                raise TaskFailedError(
                    f"task {task.id} crashed (attempt {record.attempt})")

            # 4. write outputs ------------------------------------------------
            t0 = env.now
            phase = spans.begin("phase", "write", node=node.name,
                                task=task.id)
            try:
                for meta in job.outputs:
                    if record.attempt > 1 \
                            and ns.state(meta.name) is FileState.AVAILABLE:
                        # A previous attempt of this job finished this
                        # output before dying (e.g. node crash between
                        # two writes); write-once forbids redoing it.
                        continue
                    ns.begin_write(meta.name)
                    try:
                        yield from storage.span_write(node, meta, spans)
                    except BaseException:
                        # Crashed mid-write (eviction, storage giveup):
                        # nothing was published, so the retry may
                        # produce the file afresh.
                        ns.abort_write(meta.name)
                        raise
                    ns.end_write(meta.name)
                    record.bytes_written += meta.size
            finally:
                spans.end(phase)
            record.write_seconds = env.now - t0
        except StorageUnavailableError as exc:
            # Storage retries are exhausted; surface as an ordinary
            # task failure so DAGMan's retry/rescue machinery decides.
            record.failed = True
            trace.emit(env.now, "task", "failed", task=task.id,
                       node=node.name, attempt=record.attempt,
                       reason="storage_unavailable")
            raise TaskFailedError(
                f"task {task.id} lost its storage: {exc}") from exc
    finally:
        if task.memory_bytes > 0:
            node.memory.put(task.memory_bytes)
        record.end_time = env.now
        spans.end(job_span, failed=record.failed)
        trace.emit(env.now, "task", "end", task=task.id, node=node.name,
                   transformation=task.transformation,
                   duration=record.end_time - record.start_time)
