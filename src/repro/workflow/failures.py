"""Transient-failure injection.

Real EC2 runs see occasional task crashes (flaky nodes, storage
hiccups, OOM kills); Condor/DAGMan masks them with retries.  The paper
reports completed runs, so failure injection is off by default — it
exists so the test suite can prove the retry machinery keeps workflows
correct (write-once discipline included) under fault load, and so
users can study makespan inflation vs failure rate.

Failures are deterministic per ``(seed, task, attempt)``: re-running an
experiment reproduces the exact same crash pattern.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..simcore.rand import substream


class FailureInjector:
    """Decides which task attempts crash.

    Parameters
    ----------
    rate:
        Per-attempt crash probability in [0, 1).
    seed:
        Experiment seed; draws come from a named substream so failure
        patterns never perturb other random components.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._seed = seed
        self.injected = 0
        self._decisions: Dict[Tuple[str, int], bool] = {}

    def should_fail(self, task_id: str, attempt: int) -> bool:
        """Whether this attempt of ``task_id`` crashes.

        The decision is a pure function of ``(seed, task, attempt)``
        and is memoized, so :attr:`injected` counts each injected crash
        exactly once no matter how often the same attempt is queried.
        """
        if self.rate <= 0.0:
            return False
        key = (task_id, attempt)
        cached = self._decisions.get(key)
        if cached is None:
            rng = substream(self._seed, "failure", task_id, attempt)
            cached = bool(rng.random() < self.rate)
            self._decisions[key] = cached
            if cached:
                self.injected += 1
        return cached


#: Injector that never fails anything (the default).
NO_FAILURES = FailureInjector(0.0)
