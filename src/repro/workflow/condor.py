"""Condor-style job scheduling.

The paper runs a Condor pool: the schedd on the submit host queues
ready jobs; each worker advertises one slot per core; matchmaking is
FIFO and — crucially for the S3 cache and GlusterFS NUFA results —
**locality-blind**: "The scheduler ... does not consider data locality
or parent-child affinity when scheduling jobs, and does not have
access to information about the contents of each node's cache"
(§IV.A).

:class:`CondorPool` implements that baseline as slot processes pulling
from a shared idle queue.  :class:`LocalityAwarePool` is the paper's
hypothesised improvement ("a more data-aware scheduler could
potentially improve workflow performance"), used by the scheduler
ablation bench: a slot prefers queued jobs whose input bytes are
already cached/owned on its node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from ..simcore.errors import Interrupt
from ..simcore.events import Event, Process
from ..simcore.resources import Store
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from .executor import JobRecord, TaskFailedError, execute_job
from .failures import NO_FAILURES, FailureInjector

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance
    from ..simcore.engine import Environment
    from ..storage.base import StorageSystem
    from .mapper import ExecutableJob

#: Signature of the completion callback DAGMan registers.
CompletionCallback = Callable[["ExecutableJob", JobRecord], None]


class _Slot:
    """Live state of one Condor slot (needed for crash recovery)."""

    __slots__ = ("node", "index", "proc", "pending_get", "job",
                 "submit_time", "record")

    def __init__(self, node: "VMInstance", index: int) -> None:
        self.node = node
        self.index = index
        #: The slot's driver process (interrupted when the node dies).
        self.proc: Optional[Process] = None
        #: Outstanding queue-get event while the slot idles.
        self.pending_get: Optional[Event] = None
        #: Job currently dispatched/running on this slot.
        self.job: Optional["ExecutableJob"] = None
        self.submit_time: float = 0.0
        self.record: Optional[JobRecord] = None


class CondorPool:
    """FIFO, locality-blind slot pool (the paper's configuration)."""

    #: Matchmaking + job-start overhead per dispatch (schedd
    #: negotiation cycle, shadow/starter startup).
    DISPATCH_LATENCY = 0.05

    def __init__(self, env: "Environment", workers: List["VMInstance"],
                 storage: "StorageSystem",
                 cpu_jitter: Optional[Callable[[str], float]] = None,
                 failure_injector: Optional[FailureInjector] = None,
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        self.env = env
        self.workers = list(workers)
        self.storage = storage
        self.trace = trace
        self._queue = Store(env)
        self._on_complete: Optional[CompletionCallback] = None
        self._on_failure: Optional[CompletionCallback] = None
        self._cpu_jitter = cpu_jitter or (lambda task_id: 1.0)
        self._failures = failure_injector or NO_FAILURES
        self._attempts: Dict[str, int] = {}
        self.records: List[JobRecord] = []
        self._started = False
        self._slots: List[_Slot] = []
        self._dead_nodes: Set[str] = set()
        #: Jobs interrupted by node death and requeued (an eviction is
        #: not the job's fault, so it does not burn a DAGMan retry).
        self.evictions = 0
        #: Span id of the enclosing workflow span (set by the WMS) so
        #: job spans nest under it in the telemetry tree.
        self.span_parent: Optional[int] = None

    # -- schedd interface ------------------------------------------------------

    def submit(self, job: "ExecutableJob") -> None:
        """Queue a ready job (called by DAGMan)."""
        self.trace.emit(self.env.now, "schedd", "submit", task=job.id)
        self._queue.put((job, self.env.now))

    def set_completion_callback(self, cb: CompletionCallback) -> None:
        """Register DAGMan's completion hook."""
        self._on_complete = cb

    def set_failure_callback(self, cb: CompletionCallback) -> None:
        """Register DAGMan's failed-attempt hook (retry decisions)."""
        self._on_failure = cb

    @property
    def queue_depth(self) -> int:
        """Idle jobs waiting for a slot."""
        return len(self._queue.items)

    # -- slots ---------------------------------------------------------------------

    def start(self) -> None:
        """Spawn one slot process per worker core (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.workers:
            for index in range(node.itype.cores):
                slot = _Slot(node, index)
                slot.proc = self.env.process(
                    self._slot_loop(slot),
                    name=f"slot:{node.name}/{index}")
                self._slots.append(slot)

    def _slot_loop(self, slot: "_Slot"):
        node = slot.node
        try:
            while True:
                job, submit_time = yield from self._next_job(node, slot)
                if node.name in self._dead_nodes:
                    # Crash raced the dequeue: hand the job back.
                    self._queue.put((job, submit_time))
                    return
                slot.job, slot.submit_time = job, submit_time
                yield self.env.timeout(self.DISPATCH_LATENCY)
                attempt = self._attempts.get(job.id, 0) + 1
                self._attempts[job.id] = attempt
                record = JobRecord(
                    task_id=job.id,
                    transformation=job.task.transformation,
                    node=node.name,
                    submit_time=submit_time,
                    attempt=attempt,
                )
                slot.record = record
                node.busy_slots += 1
                try:
                    yield from execute_job(
                        self.env, job, node, self.storage, record,
                        cpu_jitter_factor=self._cpu_jitter(job.id),
                        fail_this_attempt=self._failures.should_fail(
                            job.id, attempt),
                        trace=self.trace,
                        parent_span=self.span_parent)
                except TaskFailedError:
                    self.records.append(record)
                    slot.job = slot.record = None
                    if self._on_failure is not None:
                        self._on_failure(job, record)
                    continue
                finally:
                    node.busy_slots -= 1
                self.records.append(record)
                slot.job = slot.record = None
                if self._on_complete is not None:
                    self._on_complete(job, record)
        except Interrupt:
            self._on_slot_killed(slot)

    def _next_job(self, node: "VMInstance", slot: Optional["_Slot"] = None):
        """Take the next job for a slot on ``node`` (FIFO baseline)."""
        get_ev = self._queue.get()
        if slot is not None:
            slot.pending_get = get_ev
        item = yield get_ev
        if slot is not None:
            slot.pending_get = None
        return item

    # -- fault handling ------------------------------------------------------

    def kill_node(self, node: "VMInstance") -> None:
        """Drain all slots of a crashed node, evicting running jobs.

        Running jobs are marked failed-by-eviction and requeued for the
        surviving nodes; idle slots have their queue claims withdrawn
        so no job is ever lost into a dead slot.
        """
        if node.name in self._dead_nodes:
            return
        self._dead_nodes.add(node.name)
        self.trace.emit(self.env.now, "fault", "node_crash",
                        node=node.name, busy_slots=node.busy_slots)
        for slot in self._slots:
            if slot.node is not node:
                continue
            pg = slot.pending_get
            if pg is not None:
                if pg.triggered:
                    # The item was already popped for this slot but the
                    # interrupt will detach its resumer: requeue it.
                    self._queue.put(pg.value)
                else:
                    self._queue.cancel_get(pg)
                slot.pending_get = None
            if slot.proc is not None and slot.proc.is_alive:
                slot.proc.interrupt(f"node {node.name} crashed")

    def _on_slot_killed(self, slot: "_Slot") -> None:
        """Interrupt handler: account for the evicted job, if any."""
        job, record = slot.job, slot.record
        slot.job = slot.record = slot.pending_get = None
        if job is None:
            return  # the slot was idle
        self.evictions += 1
        if record is not None:
            record.failed = True
            record.evicted = True
            if record.end_time == 0.0:
                # Killed before the executor's bookkeeping ran.
                record.end_time = self.env.now
            self.records.append(record)
        self.trace.emit(self.env.now, "fault", "job_evicted",
                        task=job.id, node=slot.node.name)
        # Resubmit directly: eviction is the machine's fault, not the
        # job's, so it does not count against DAGMan's retry budget.
        self._queue.put((job, self.env.now))


class LocalityAwarePool(CondorPool):
    """Data-aware matchmaking: prefer jobs with local input bytes.

    When a slot frees, it scans the idle queue and picks the job with
    the largest fraction of input bytes already resident on its node
    (S3 cache contents, GlusterFS replica ownership); FIFO otherwise.
    This is the scheduler the paper suggests would raise S3 cache hit
    rates (§IV.A) — quantified by ``benchmarks/bench_scheduler_ablation``.
    """

    def _next_job(self, node: "VMInstance", slot: Optional["_Slot"] = None):
        get_ev = self._queue.get()
        if slot is not None:
            slot.pending_get = get_ev
        item = yield get_ev
        if slot is not None:
            slot.pending_get = None
        # The Store hands us the FIFO head; look for a better match
        # among the still-queued items and swap if one exists.
        best = item
        best_score = self._local_score(node, item[0])
        if self._queue.items:
            for idx, other in enumerate(self._queue.items):
                score = self._local_score(node, other[0])
                if score > best_score:
                    best, best_score = other, score
            if best is not item:
                self._queue.items.remove(best)
                # Put the FIFO head back at the front for the next slot.
                self._queue.items.insert(0, item)
        return best

    def _local_score(self, node: "VMInstance", job: "ExecutableJob") -> float:
        total = job.input_bytes()
        if total <= 0:
            return 0.0
        local = 0.0
        cached_on = getattr(self.storage, "cached_on", None)
        owner_of = getattr(self.storage, "owner_of", None)
        for meta in job.inputs:
            if cached_on is not None and meta.name in cached_on(node):
                local += meta.size
            elif owner_of is not None:
                try:
                    if owner_of(meta.name) is node:
                        local += meta.size
                except KeyError:
                    pass
        return local / total
