"""Condor-style job scheduling.

The paper runs a Condor pool: the schedd on the submit host queues
ready jobs; each worker advertises one slot per core; matchmaking is
FIFO and — crucially for the S3 cache and GlusterFS NUFA results —
**locality-blind**: "The scheduler ... does not consider data locality
or parent-child affinity when scheduling jobs, and does not have
access to information about the contents of each node's cache"
(§IV.A).

:class:`CondorPool` implements that baseline as slot processes pulling
from a shared idle queue.  :class:`LocalityAwarePool` is the paper's
hypothesised improvement ("a more data-aware scheduler could
potentially improve workflow performance"), used by the scheduler
ablation bench: a slot prefers queued jobs whose input bytes are
already cached/owned on its node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..simcore.resources import Store
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from .executor import JobRecord, TaskFailedError, execute_job
from .failures import NO_FAILURES, FailureInjector

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance
    from ..simcore.engine import Environment
    from ..storage.base import StorageSystem
    from .mapper import ExecutableJob

#: Signature of the completion callback DAGMan registers.
CompletionCallback = Callable[["ExecutableJob", JobRecord], None]


class CondorPool:
    """FIFO, locality-blind slot pool (the paper's configuration)."""

    #: Matchmaking + job-start overhead per dispatch (schedd
    #: negotiation cycle, shadow/starter startup).
    DISPATCH_LATENCY = 0.05

    def __init__(self, env: "Environment", workers: List["VMInstance"],
                 storage: "StorageSystem",
                 cpu_jitter: Optional[Callable[[str], float]] = None,
                 failure_injector: Optional[FailureInjector] = None,
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        self.env = env
        self.workers = list(workers)
        self.storage = storage
        self.trace = trace
        self._queue = Store(env)
        self._on_complete: Optional[CompletionCallback] = None
        self._on_failure: Optional[CompletionCallback] = None
        self._cpu_jitter = cpu_jitter or (lambda task_id: 1.0)
        self._failures = failure_injector or NO_FAILURES
        self._attempts: Dict[str, int] = {}
        self.records: List[JobRecord] = []
        self._started = False
        #: Span id of the enclosing workflow span (set by the WMS) so
        #: job spans nest under it in the telemetry tree.
        self.span_parent: Optional[int] = None

    # -- schedd interface ------------------------------------------------------

    def submit(self, job: "ExecutableJob") -> None:
        """Queue a ready job (called by DAGMan)."""
        self.trace.emit(self.env.now, "schedd", "submit", task=job.id)
        self._queue.put((job, self.env.now))

    def set_completion_callback(self, cb: CompletionCallback) -> None:
        """Register DAGMan's completion hook."""
        self._on_complete = cb

    def set_failure_callback(self, cb: CompletionCallback) -> None:
        """Register DAGMan's failed-attempt hook (retry decisions)."""
        self._on_failure = cb

    @property
    def queue_depth(self) -> int:
        """Idle jobs waiting for a slot."""
        return len(self._queue.items)

    # -- slots ---------------------------------------------------------------------

    def start(self) -> None:
        """Spawn one slot process per worker core (idempotent)."""
        if self._started:
            return
        self._started = True
        for node in self.workers:
            for slot in range(node.itype.cores):
                self.env.process(self._slot_loop(node, slot),
                                 name=f"slot:{node.name}/{slot}")

    def _slot_loop(self, node: "VMInstance", slot: int):
        while True:
            job, submit_time = yield from self._next_job(node)
            yield self.env.timeout(self.DISPATCH_LATENCY)
            attempt = self._attempts.get(job.id, 0) + 1
            self._attempts[job.id] = attempt
            record = JobRecord(
                task_id=job.id,
                transformation=job.task.transformation,
                node=node.name,
                submit_time=submit_time,
                attempt=attempt,
            )
            node.busy_slots += 1
            try:
                yield from execute_job(
                    self.env, job, node, self.storage, record,
                    cpu_jitter_factor=self._cpu_jitter(job.id),
                    fail_this_attempt=self._failures.should_fail(
                        job.id, attempt),
                    trace=self.trace,
                    parent_span=self.span_parent)
            except TaskFailedError:
                self.records.append(record)
                if self._on_failure is not None:
                    self._on_failure(job, record)
                continue
            finally:
                node.busy_slots -= 1
            self.records.append(record)
            if self._on_complete is not None:
                self._on_complete(job, record)

    def _next_job(self, node: "VMInstance"):
        """Take the next job for a slot on ``node`` (FIFO baseline)."""
        item = yield self._queue.get()
        return item


class LocalityAwarePool(CondorPool):
    """Data-aware matchmaking: prefer jobs with local input bytes.

    When a slot frees, it scans the idle queue and picks the job with
    the largest fraction of input bytes already resident on its node
    (S3 cache contents, GlusterFS replica ownership); FIFO otherwise.
    This is the scheduler the paper suggests would raise S3 cache hit
    rates (§IV.A) — quantified by ``benchmarks/bench_scheduler_ablation``.
    """

    def _next_job(self, node: "VMInstance"):
        item = yield self._queue.get()
        # The Store hands us the FIFO head; look for a better match
        # among the still-queued items and swap if one exists.
        best = item
        best_score = self._local_score(node, item[0])
        if self._queue.items:
            for idx, other in enumerate(self._queue.items):
                score = self._local_score(node, other[0])
                if score > best_score:
                    best, best_score = other, score
            if best is not item:
                self._queue.items.remove(best)
                # Put the FIFO head back at the front for the next slot.
                self._queue.items.insert(0, item)
        return best

    def _local_score(self, node: "VMInstance", job: "ExecutableJob") -> float:
        total = job.input_bytes()
        if total <= 0:
            return 0.0
        local = 0.0
        cached_on = getattr(self.storage, "cached_on", None)
        owner_of = getattr(self.storage, "owner_of", None)
        for meta in job.inputs:
            if cached_on is not None and meta.name in cached_on(node):
                local += meta.size
            elif owner_of is not None:
                try:
                    if owner_of(meta.name) is node:
                        local += meta.size
                except KeyError:
                    pass
        return local / total
