"""Horizontal task clustering (Pegasus-style).

Pegasus can merge many short tasks of the same transformation into one
scheduled job to amortise scheduling and data-access overheads.  The
paper ran *unclustered* workflows (each of Montage's 10,429 tasks was
its own Condor job); clustering is the standard mitigation for exactly
the per-file and per-job overheads that hurt S3 and PVFS in Fig. 2 —
so this module lets the repository ask the obvious follow-up: *how
much of the storage-system gap would clustering have closed?*
(`benchmarks/bench_clustering_ablation.py`).

:func:`cluster_horizontal` rewrites a workflow, merging up to
``factor`` same-transformation, same-level tasks into one task whose
compute time is the sum, whose memory is the max, and whose file sets
are the unions.  Dependency structure is preserved (a clustered task
depends on everything any member depended on), so the result is a
valid workflow over the *same* logical files.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from .dag import Task, Workflow


def cluster_horizontal(workflow: Workflow,
                       factor: int,
                       transformations: Optional[Sequence[str]] = None,
                       name_suffix: str = "clustered") -> Workflow:
    """A copy of ``workflow`` with same-level tasks merged.

    Parameters
    ----------
    workflow:
        The source workflow (unmodified).
    factor:
        Maximum tasks merged into one cluster (``1`` returns an
        equivalent workflow).
    transformations:
        Only cluster these executables (default: all).  Singleton
        stages (e.g. ``mBgModel``) are unaffected either way.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    wanted = set(transformations) if transformations is not None else None

    levels = workflow.levels()
    groups: Dict[tuple, List[Task]] = defaultdict(list)
    singles: List[Task] = []
    for task in workflow.tasks.values():
        if wanted is not None and task.transformation not in wanted:
            singles.append(task)
        else:
            groups[(task.transformation, levels[task.id])].append(task)

    out = Workflow(f"{workflow.name}-{name_suffix}x{factor}")
    for name, meta in workflow.files.items():
        out.add_file(
            name, meta.size,
            is_input=name in workflow.input_files,
            temporary=name in workflow.temp_files,
            final=name in workflow.final_files,
        )

    def add_merged(members: List[Task], index: int) -> None:
        if len(members) == 1:
            out.add_task(Task(
                members[0].id, members[0].transformation,
                members[0].cpu_seconds, members[0].memory_bytes,
                list(members[0].inputs), list(members[0].outputs)))
            return
        inputs: List[str] = []
        outputs: List[str] = []
        seen_in, seen_out = set(), set()
        for t in members:
            for f in t.inputs:
                if f not in seen_in:
                    seen_in.add(f)
                    inputs.append(f)
            for f in t.outputs:
                if f not in seen_out:
                    seen_out.add(f)
                    outputs.append(f)
        # Files produced and consumed inside the cluster stay as plain
        # reads/writes (the cluster still materialises them), but they
        # must not appear as cluster inputs (self-dependency).
        inputs = [f for f in inputs if f not in seen_out]
        out.add_task(Task(
            f"{members[0].transformation}_cluster_{index}",
            members[0].transformation,
            sum(t.cpu_seconds for t in members),
            max(t.memory_bytes for t in members),
            inputs, outputs))

    cluster_index = 0
    for (_transformation, _level), members in sorted(
            groups.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        members.sort(key=lambda t: t.id)
        for i in range(0, len(members), factor):
            add_merged(members[i:i + factor], cluster_index)
            cluster_index += 1
    for task in singles:
        out.add_task(Task(task.id, task.transformation, task.cpu_seconds,
                          task.memory_bytes, list(task.inputs),
                          list(task.outputs)))
    out.validate()
    return out
