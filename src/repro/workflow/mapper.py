"""The Pegasus mapper: abstract workflow → executable plan.

Pegasus turns a resource-independent workflow description into a
concrete plan for the target site.  For this study the interesting
planning decisions are:

* resolving every logical file against the deployed storage system
  (inputs pre-staged, outputs declared — the paper stages input data
  before the clock starts and does not transfer outputs back);
* wrapping jobs with S3 GET/PUT steps when the storage system has no
  POSIX interface (§IV.A: "The workflow management system was modified
  to wrap each job with the necessary GET and PUT operations");
* precomputing the dependency adjacency so DAGMan's release loop is
  O(edges) over the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..storage.base import StorageSystem
from ..storage.files import FileMetadata
from .dag import Task, Workflow


@dataclass
class ExecutableJob:
    """A planned job: a task with resolved file metadata."""

    task: Task
    inputs: List[FileMetadata]
    outputs: List[FileMetadata]
    #: True when the job is wrapped with object-store GET/PUT steps.
    s3_wrapped: bool = False

    @property
    def id(self) -> str:
        """The underlying task id."""
        return self.task.id

    def input_bytes(self) -> float:
        """Total bytes this job reads."""
        return sum(m.size for m in self.inputs)

    def output_bytes(self) -> float:
        """Total bytes this job writes."""
        return sum(m.size for m in self.outputs)


@dataclass
class ExecutablePlan:
    """The mapper's output: jobs plus precomputed dependency structure."""

    workflow: Workflow
    storage: StorageSystem
    jobs: Dict[str, ExecutableJob]
    parents: Dict[str, Set[str]]
    children: Dict[str, Set[str]]

    @property
    def n_jobs(self) -> int:
        """Number of planned jobs."""
        return len(self.jobs)

    def roots(self) -> List[str]:
        """Jobs with no unfinished prerequisites at the start."""
        return [jid for jid, ps in self.parents.items() if not ps]


class PegasusMapper:
    """Plans abstract workflows onto a deployed storage system."""

    def plan(self, workflow: Workflow, storage: StorageSystem) -> ExecutablePlan:
        """Produce an executable plan.

        Validates the workflow, registers every file with the storage
        system (staging inputs, declaring outputs), and wraps jobs for
        object stores.
        """
        workflow.validate()
        storage._require_deployed()

        # File registration: inputs are pre-staged (the paper excludes
        # input-transfer time from makespans), products are declared.
        for name, meta in workflow.files.items():
            if name in workflow.input_files:
                storage.stage_input(meta)
            else:
                storage.declare_output(meta)

        wrap = storage.mode == "object"
        jobs: Dict[str, ExecutableJob] = {}
        for task in workflow.tasks.values():
            jobs[task.id] = ExecutableJob(
                task=task,
                inputs=[workflow.files[n] for n in task.inputs],
                outputs=[workflow.files[n] for n in task.outputs],
                s3_wrapped=wrap,
            )

        parents = {tid: workflow.parents(tid) for tid in workflow.tasks}
        children: Dict[str, Set[str]] = {tid: set() for tid in workflow.tasks}
        for tid, ps in parents.items():
            for p in ps:
                children[p].add(tid)

        return ExecutablePlan(
            workflow=workflow,
            storage=storage,
            jobs=jobs,
            parents=parents,
            children=children,
        )
