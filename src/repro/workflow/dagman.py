"""DAGMan: dependency-driven job release.

DAGMan walks the executable plan, submitting a job to the Condor queue
the moment its last prerequisite finishes, and reports completion of
the whole DAG.  Failed attempts are retried up to ``retries`` times
(DAGMan's standard behaviour); a job that exhausts its retries fails
the whole run, surfacing :class:`WorkflowFailedError` to whoever waits
on :attr:`DAGMan.done`.

Two robustness features mirror the real DAGMan:

* **rescue DAG** — pass a :class:`~repro.faults.rescue.RescueLog` and
  completed jobs are checkpointed as they finish; a resumed run
  preloads the checkpoint and re-executes only the unfinished
  remainder;
* **partial completion** — with ``halt_on_failure=False`` a job that
  exhausts its retries abandons only its own descendants; the rest of
  the DAG runs to completion and the run reports a partial result
  instead of raising.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from ..simcore.events import Event
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from .condor import CondorPool
from .executor import JobRecord
from .mapper import ExecutablePlan

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.rescue import RescueLog
    from ..simcore.engine import Environment
    from .mapper import ExecutableJob


class WorkflowFailedError(RuntimeError):
    """A job exhausted its retries; the DAG cannot complete."""


class DAGMan:
    """Releases jobs of one plan in dependency order."""

    def __init__(self, env: "Environment", plan: ExecutablePlan,
                 pool: CondorPool,
                 retries: int = 3,
                 trace: TraceCollector = NULL_COLLECTOR,
                 rescue: Optional["RescueLog"] = None,
                 halt_on_failure: bool = True) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.env = env
        self.plan = plan
        self.pool = pool
        self.retries = retries
        self.trace = trace
        self.rescue = rescue
        self.halt_on_failure = halt_on_failure
        self._unfinished_parents: Dict[str, int] = {
            jid: len(ps) for jid, ps in plan.parents.items()
        }
        self._completed: Set[str] = set()
        self._submitted: Set[str] = set()
        self._abandoned: Set[str] = set()
        self._failed_attempts: Dict[str, int] = {}
        #: Jobs restored from the rescue checkpoint (not re-executed).
        self.rescued: Set[str] = set()
        #: Fires when the last job of the DAG completes (or fails with
        #: :class:`WorkflowFailedError` when retries run out).
        self.done: Event = Event(env)
        if rescue is not None:
            self._preload_rescue(rescue)
        pool.set_completion_callback(self._on_job_complete)
        pool.set_failure_callback(self._on_job_failed)

    def _preload_rescue(self, rescue: "RescueLog") -> None:
        """Seed the completed set from a prior run's checkpoint."""
        done_ids = rescue.completed & set(self.plan.jobs)
        for jid in sorted(done_ids):
            self._completed.add(jid)
            self._submitted.add(jid)  # never resubmit
            self.rescued.add(jid)
            for child in sorted(self.plan.children[jid]):
                self._unfinished_parents[child] -= 1
        if done_ids:
            self.trace.emit(self.env.now, "dagman", "rescue_load",
                            n_rescued=len(done_ids),
                            total=self.plan.n_jobs)

    # -- driving --------------------------------------------------------------

    def start(self) -> None:
        """Submit the ready frontier and start the slot pool."""
        self.trace.emit(self.env.now, "dagman", "start",
                        n_jobs=self.plan.n_jobs)
        self.pool.start()
        if not self.plan.jobs:
            self.done.succeed()
            return
        if self.rescue is None:
            for jid in self.plan.roots():
                self._submit(jid)
            return
        # Resume: everything whose parents are all checkpointed is
        # ready, including non-root jobs (plan order is deterministic).
        if len(self._completed) == self.plan.n_jobs:
            self.done.succeed()
            return
        for jid in self.plan.jobs:
            if jid not in self._submitted \
                    and self._unfinished_parents[jid] == 0:
                self._submit(jid)

    @property
    def n_completed(self) -> int:
        """Jobs finished so far."""
        return len(self._completed)

    @property
    def abandoned(self) -> Set[str]:
        """Jobs given up on in partial-completion mode (a copy)."""
        return set(self._abandoned)

    @property
    def progress(self) -> float:
        """Completed fraction in [0, 1]."""
        if not self.plan.jobs:
            return 1.0
        return len(self._completed) / self.plan.n_jobs

    # -- internals ----------------------------------------------------------------

    def _submit(self, jid: str) -> None:
        if jid in self._submitted:
            raise AssertionError(f"job {jid} submitted twice")
        self._submitted.add(jid)
        self.pool.submit(self.plan.jobs[jid])

    def _on_job_failed(self, job: "ExecutableJob", record: JobRecord) -> None:
        jid = job.id
        failures = self._failed_attempts.get(jid, 0) + 1
        self._failed_attempts[jid] = failures
        self.trace.emit(self.env.now, "dagman", "retry", task=jid,
                        failures=failures, retries=self.retries)
        if failures <= self.retries:
            self.pool.submit(job)  # resubmit at the back of the queue
            return
        if self.halt_on_failure:
            if not self.done.triggered:
                self.done.fail(WorkflowFailedError(
                    f"job {jid} failed {failures} times "
                    f"(retry limit {self.retries})"))
            return
        # Graceful degradation: give up on this job and everything
        # downstream of it, let the rest of the DAG finish.
        self._abandon(jid)

    def _abandon(self, jid: str) -> None:
        stack = [jid]
        while stack:
            j = stack.pop()
            if j in self._abandoned:
                continue
            self._abandoned.add(j)
            self.trace.emit(self.env.now, "dagman", "abandon", task=j)
            for child in sorted(self.plan.children[j]):
                stack.append(child)
        self._check_done()

    def _on_job_complete(self, job: "ExecutableJob", record: JobRecord) -> None:
        jid = job.id
        if jid in self._completed:
            raise AssertionError(f"job {jid} completed twice")
        self._completed.add(jid)
        if self.rescue is not None:
            self.rescue.mark(jid)
        self.trace.emit(self.env.now, "dagman", "complete", task=jid,
                        done=len(self._completed), total=self.plan.n_jobs)
        # Sorted so release (and hence scheduling) order never depends
        # on set iteration order — runs are bit-reproducible across
        # processes regardless of PYTHONHASHSEED.
        for child in sorted(self.plan.children[jid]):
            self._unfinished_parents[child] -= 1
            if self._unfinished_parents[child] == 0 \
                    and child not in self._abandoned:
                self._submit(child)
        self._check_done()

    def _check_done(self) -> None:
        if len(self._completed) + len(self._abandoned) >= self.plan.n_jobs \
                and not self.done.triggered:
            self.done.succeed()
