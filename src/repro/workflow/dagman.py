"""DAGMan: dependency-driven job release.

DAGMan walks the executable plan, submitting a job to the Condor queue
the moment its last prerequisite finishes, and reports completion of
the whole DAG.  Failed attempts are retried up to ``retries`` times
(DAGMan's standard behaviour); a job that exhausts its retries fails
the whole run, surfacing :class:`WorkflowFailedError` to whoever waits
on :attr:`DAGMan.done`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Set

from ..simcore.events import Event
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from .condor import CondorPool
from .executor import JobRecord
from .mapper import ExecutablePlan

if TYPE_CHECKING:  # pragma: no cover
    from ..simcore.engine import Environment
    from .mapper import ExecutableJob


class WorkflowFailedError(RuntimeError):
    """A job exhausted its retries; the DAG cannot complete."""


class DAGMan:
    """Releases jobs of one plan in dependency order."""

    def __init__(self, env: "Environment", plan: ExecutablePlan,
                 pool: CondorPool,
                 retries: int = 3,
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.env = env
        self.plan = plan
        self.pool = pool
        self.retries = retries
        self.trace = trace
        self._unfinished_parents: Dict[str, int] = {
            jid: len(ps) for jid, ps in plan.parents.items()
        }
        self._completed: Set[str] = set()
        self._submitted: Set[str] = set()
        self._failed_attempts: Dict[str, int] = {}
        #: Fires when the last job of the DAG completes (or fails with
        #: :class:`WorkflowFailedError` when retries run out).
        self.done: Event = Event(env)
        pool.set_completion_callback(self._on_job_complete)
        pool.set_failure_callback(self._on_job_failed)

    # -- driving --------------------------------------------------------------

    def start(self) -> None:
        """Submit all root jobs and start the slot pool."""
        self.trace.emit(self.env.now, "dagman", "start",
                        n_jobs=self.plan.n_jobs)
        self.pool.start()
        if not self.plan.jobs:
            self.done.succeed()
            return
        for jid in self.plan.roots():
            self._submit(jid)

    @property
    def n_completed(self) -> int:
        """Jobs finished so far."""
        return len(self._completed)

    @property
    def progress(self) -> float:
        """Completed fraction in [0, 1]."""
        if not self.plan.jobs:
            return 1.0
        return len(self._completed) / self.plan.n_jobs

    # -- internals ----------------------------------------------------------------

    def _submit(self, jid: str) -> None:
        if jid in self._submitted:
            raise AssertionError(f"job {jid} submitted twice")
        self._submitted.add(jid)
        self.pool.submit(self.plan.jobs[jid])

    def _on_job_failed(self, job: "ExecutableJob", record: JobRecord) -> None:
        jid = job.id
        failures = self._failed_attempts.get(jid, 0) + 1
        self._failed_attempts[jid] = failures
        self.trace.emit(self.env.now, "dagman", "retry", task=jid,
                        failures=failures, retries=self.retries)
        if failures <= self.retries:
            self.pool.submit(job)  # resubmit at the back of the queue
            return
        if not self.done.triggered:
            self.done.fail(WorkflowFailedError(
                f"job {jid} failed {failures} times "
                f"(retry limit {self.retries})"))

    def _on_job_complete(self, job: "ExecutableJob", record: JobRecord) -> None:
        jid = job.id
        if jid in self._completed:
            raise AssertionError(f"job {jid} completed twice")
        self._completed.add(jid)
        self.trace.emit(self.env.now, "dagman", "complete", task=jid,
                        done=len(self._completed), total=self.plan.n_jobs)
        # Sorted so release (and hence scheduling) order never depends
        # on set iteration order — runs are bit-reproducible across
        # processes regardless of PYTHONHASHSEED.
        for child in sorted(self.plan.children[jid]):
            self._unfinished_parents[child] -= 1
            if self._unfinished_parents[child] == 0:
                self._submit(child)
        if len(self._completed) == self.plan.n_jobs \
                and not self.done.triggered:
            self.done.succeed()
