"""The workflow-management-system facade (the "submit host").

Bundles mapper + DAGMan + Condor pool into the single entry point the
experiments use::

    wms = PegasusWMS(env, cluster.workers, storage)
    run = wms.execute(workflow)
    print(run.makespan)

Makespan follows the paper's definition: "the total amount of wall
clock time from the moment the first workflow task is submitted until
the last task completes" — excluding VM provisioning and input/output
staging (§V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..simcore.rand import substream
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from ..storage.base import StorageStats, StorageSystem
from ..telemetry.spans import SpanBuilder
from .condor import CondorPool, LocalityAwarePool
from .dag import Workflow
from .dagman import DAGMan
from .executor import JobRecord
from .failures import FailureInjector
from .mapper import ExecutablePlan, PegasusMapper

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance
    from ..faults.injector import FaultCoordinator
    from ..faults.rescue import RescueLog
    from ..simcore.engine import Environment


@dataclass
class WorkflowRun:
    """Everything observed about one workflow execution."""

    workflow_name: str
    storage_name: str
    n_workers: int
    start_time: float
    end_time: float
    records: List[JobRecord]
    storage_stats: StorageStats
    plan: Optional[ExecutablePlan] = None
    #: Jobs given up on (partial-completion mode); empty = full result.
    abandoned_jobs: List[str] = field(default_factory=list)
    #: Jobs restored from a rescue checkpoint instead of re-executed.
    rescued_jobs: List[str] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Wall-clock first-submit → last-complete, seconds."""
        return self.end_time - self.start_time

    @property
    def partial(self) -> bool:
        """True when the run degraded to a partial result."""
        return bool(self.abandoned_jobs)

    @property
    def n_evicted(self) -> int:
        """Job attempts killed by node crashes."""
        return sum(1 for r in self.records if r.evicted)

    @property
    def n_jobs(self) -> int:
        """Jobs executed."""
        return len(self.records)

    def per_node_job_counts(self) -> Dict[str, int]:
        """How many jobs each worker ran (load-balance check)."""
        counts: Dict[str, int] = {}
        for r in self.records:
            counts[r.node] = counts.get(r.node, 0) + 1
        return counts

    def total_io_seconds(self) -> float:
        """Aggregate task time spent in storage operations."""
        return sum(r.io_seconds for r in self.records)

    def total_cpu_seconds(self) -> float:
        """Aggregate task compute time."""
        return sum(r.cpu_seconds for r in self.records)

    def io_fraction(self) -> float:
        """Fraction of busy task time spent on I/O."""
        busy = self.total_io_seconds() + self.total_cpu_seconds()
        return self.total_io_seconds() / busy if busy > 0 else 0.0


class PegasusWMS:
    """Submit-host services: plan, release, schedule, record."""

    def __init__(self, env: "Environment", workers: List["VMInstance"],
                 storage: StorageSystem,
                 scheduler: str = "fifo",
                 seed: int = 0,
                 cpu_jitter_sigma: float = 0.0,
                 task_failure_rate: float = 0.0,
                 retries: int = 3,
                 dispatch_latency: Optional[float] = None,
                 fault_coordinator: Optional["FaultCoordinator"] = None,
                 halt_on_failure: bool = True,
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        self.env = env
        self.workers = list(workers)
        self.storage = storage
        self.trace = trace
        self.mapper = PegasusMapper()
        if scheduler not in ("fifo", "locality"):
            raise ValueError(f"scheduler must be 'fifo' or 'locality', "
                             f"got {scheduler!r}")
        self._scheduler = scheduler
        self._seed = seed
        self._jitter_sigma = cpu_jitter_sigma
        self._failure_rate = task_failure_rate
        self._retries = retries
        self._dispatch_latency = dispatch_latency
        self._faults = fault_coordinator
        self._halt_on_failure = halt_on_failure

    def _make_jitter(self, workflow_name: str) -> Callable[[str], float]:
        if self._jitter_sigma <= 0:
            return lambda task_id: 1.0
        sigma = self._jitter_sigma

        def jitter(task_id: str) -> float:
            rng = substream(self._seed, "cpu", workflow_name, task_id)
            return max(0.1, 1.0 + float(rng.normal(0.0, sigma)))

        return jitter

    def execute(self, workflow: Workflow,
                keep_plan: bool = False,
                parent_span: Optional[int] = None,
                rescue: Optional["RescueLog"] = None) -> WorkflowRun:
        """Plan and run ``workflow`` to completion; returns the record.

        Drives the simulation environment until the DAG finishes.
        ``parent_span`` nests the workflow span under an enclosing
        experiment span.  ``rescue`` resumes from (and checkpoints to)
        a rescue-DAG log: jobs recorded there are not re-executed —
        their outputs are restored as if pre-staged.
        """
        plan = self.mapper.plan(workflow, self.storage)
        if rescue is not None:
            for jid in sorted(rescue.completed & set(plan.jobs)):
                for meta in plan.jobs[jid].outputs:
                    self.storage.restore_output(meta)
        pool_cls = LocalityAwarePool if self._scheduler == "locality" else CondorPool
        injector = FailureInjector(self._failure_rate, seed=self._seed) \
            if self._failure_rate > 0 else None
        pool = pool_cls(self.env, self.workers, self.storage,
                        cpu_jitter=self._make_jitter(workflow.name),
                        failure_injector=injector,
                        trace=self.trace)
        if self._dispatch_latency is not None:
            pool.DISPATCH_LATENCY = self._dispatch_latency
        dagman = DAGMan(self.env, plan, pool, retries=self._retries,
                        trace=self.trace, rescue=rescue,
                        halt_on_failure=self._halt_on_failure)
        spans = SpanBuilder(self.trace, self.env, root_parent=parent_span)
        wf_span = spans.begin("workflow", workflow.name,
                              storage=self.storage.name,
                              n_workers=len(self.workers),
                              scheduler=self._scheduler)
        pool.span_parent = wf_span if wf_span >= 0 else None
        if self._faults is not None:
            self._faults.arm(pool, self.workers)
        start = self.env.now
        dagman.start()
        self.env.run(until=dagman.done)
        end = self.env.now
        spans.end(wf_span, n_jobs=len(pool.records))
        return WorkflowRun(
            workflow_name=workflow.name,
            storage_name=self.storage.name,
            n_workers=len(self.workers),
            start_time=start,
            end_time=end,
            records=list(pool.records),
            storage_stats=self.storage.stats,
            plan=plan if keep_plan else None,
            abandoned_jobs=sorted(dagman.abandoned),
            rescued_jobs=sorted(dagman.rescued),
        )
