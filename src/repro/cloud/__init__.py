"""EC2 substrate: instances, ephemeral disks, network fabric, billing.

This subpackage simulates everything the paper obtains from Amazon:

* :mod:`~repro.cloud.types` — the 2010 instance catalog with prices;
* :mod:`~repro.cloud.disk` — ephemeral disks with the first-write
  penalty and the software-RAID0 configuration of §III.C;
* :mod:`~repro.cloud.network` — the intra-zone star fabric;
* :mod:`~repro.cloud.node` — VM instances (cores, memory, disk, NIC);
* :mod:`~repro.cloud.billing` — per-hour (rounded up) and per-second
  charge computation for §VI;
* :mod:`~repro.cloud.ec2` / :mod:`~repro.cloud.cluster` — the EC2 API
  facade and the context-broker provisioning analog.
"""

from .billing import BillingMeter, CostBreakdown, UsageInterval
from .cluster import ContextBroker, VirtualCluster
from .disk import (
    EPHEMERAL_DISK,
    INITIALIZED_DISK,
    BlockDevice,
    DiskProfile,
    make_node_disk,
    raid0,
)
from .ec2 import EC2Cloud
from .network import ClusterNetwork, Endpoint
from .node import VMInstance
from .types import CATALOG, GB, MB, InstanceType, get_instance_type

__all__ = [
    "BillingMeter",
    "BlockDevice",
    "CATALOG",
    "ClusterNetwork",
    "ContextBroker",
    "CostBreakdown",
    "DiskProfile",
    "EC2Cloud",
    "EPHEMERAL_DISK",
    "Endpoint",
    "GB",
    "INITIALIZED_DISK",
    "InstanceType",
    "MB",
    "UsageInterval",
    "VMInstance",
    "VirtualCluster",
    "get_instance_type",
    "make_node_disk",
    "raid0",
]
