"""Amazon EC2 instance-type catalog (2010 era, us-east-1 prices).

Only the types the paper uses are exercised by the reproduction
benches, but the full first-generation catalog is included so the cost
explorer examples can sweep alternatives, as the paper's §III.B notes a
different choice "would result in different performance and cost
metrics".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Megabyte (decimal, as used for disk/network bandwidth figures).
MB = 1_000_000
#: Gigabyte (binary-ish GB as marketed for RAM; we use decimal for
#: simplicity — the distinction is far below model fidelity).
GB = 1_000_000_000


@dataclass(frozen=True)
class InstanceType:
    """Static description of an EC2 instance type.

    Attributes
    ----------
    name:
        API name, e.g. ``"c1.xlarge"``.
    cores:
        Virtual cores (= Condor slots the paper configures per node).
    memory_gb:
        RAM in GB.
    ephemeral_disks:
        Number of ephemeral (instance-store) devices.
    disk_gb:
        Total instance storage in GB.
    price_per_hour:
        On-demand USD per instance-hour (2010 us-east-1).
    nic_bw:
        NIC bandwidth per direction, bytes/second.  EC2's "high" I/O
        class corresponds to gigabit Ethernet.
    """

    name: str
    cores: int
    memory_gb: float
    ephemeral_disks: int
    disk_gb: float
    price_per_hour: float
    nic_bw: float

    @property
    def memory_bytes(self) -> float:
        """RAM in bytes."""
        return self.memory_gb * GB


_GIGABIT = 125 * MB      # 1 Gbps NIC ("high" I/O performance)
_MODERATE = 62.5 * MB    # ~500 Mbps ("moderate")
_LOW = 31.25 * MB        # ~250 Mbps ("low")

#: The first-generation EC2 catalog.  The paper's experiments use
#: ``c1.xlarge`` workers, an ``m1.xlarge`` NFS server, and one
#: ``m2.4xlarge`` NFS-server variant.
CATALOG: Dict[str, InstanceType] = {
    t.name: t
    for t in [
        InstanceType("m1.small", 1, 1.7, 1, 160.0, 0.085, _MODERATE),
        InstanceType("m1.large", 2, 7.5, 2, 850.0, 0.34, _GIGABIT),
        # The paper quotes 16 GB for m1.xlarge; we follow the paper.
        InstanceType("m1.xlarge", 4, 16.0, 4, 1690.0, 0.68, _GIGABIT),
        InstanceType("c1.medium", 2, 1.7, 1, 350.0, 0.17, _MODERATE),
        # Two quad-core 2.33-2.66 GHz Xeons, 7 GB RAM, 4 ephemeral disks.
        InstanceType("c1.xlarge", 8, 7.0, 4, 1690.0, 0.68, _GIGABIT),
        InstanceType("m2.xlarge", 2, 17.1, 1, 420.0, 0.50, _MODERATE),
        InstanceType("m2.2xlarge", 4, 34.2, 1, 850.0, 1.20, _GIGABIT),
        # The paper quotes 64 GB / 8 cores for m2.4xlarge.
        InstanceType("m2.4xlarge", 8, 64.0, 2, 1690.0, 2.40, _GIGABIT),
    ]
}


def get_instance_type(name: str) -> InstanceType:
    """Look up an instance type by API name.

    Raises ``KeyError`` with the list of known names on a miss.
    """
    try:
        return CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown instance type {name!r}; known: {known}") from None
