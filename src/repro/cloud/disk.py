"""Ephemeral-disk and software-RAID models.

The paper (§III.C) measures EC2's ephemeral disks and finds a severe
*first-write penalty* attributed to Amazon's custom disk virtualisation:

* single disk: ~20 MB/s first write, expected (~100 MB/s) on re-write,
  reads peaking at ~110 MB/s;
* 4-disk software RAID0: 80–100 MB/s first writes, 350–400 MB/s
  subsequent writes, ~310 MB/s reads;
* zero-filling 50 GB to pre-touch the extents takes ~42 minutes — about
  as long as running the whole Montage workflow.

Because all three paper workloads are strictly write-once, nearly every
application write pays the first-write rate; that is the single largest
storage effect on EC2 and is modelled explicitly here.  The device
tracks which *extents* (keyed by file or block id) have been touched and
serves writes at the first-write or re-write bandwidth accordingly.
Contention is egalitarian processor sharing over the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional, Set

from ..simcore.pipes import FairShareChannel
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from .types import MB

if TYPE_CHECKING:  # pragma: no cover
    from ..simcore.engine import Environment


@dataclass(frozen=True)
class DiskProfile:
    """Bandwidth triple of a block device, bytes/second.

    ``op_latency`` is the fixed per-operation overhead (seek +
    virtualisation), applied before the bandwidth phase.
    """

    first_write_bw: float
    rewrite_bw: float
    read_bw: float
    op_latency: float = 0.0005
    #: Seek/interference penalty under concurrent streams (see
    #: :class:`~repro.simcore.pipes.FairShareChannel`): with *n*
    #: in-flight operations the device delivers ``1/(1+beta*(n-1))``
    #: of its nominal bandwidth.  The bandwidth triples above are
    #: single-stream measurements, so concurrency costs extra — this
    #: is why a busy 8-core node extracts far less than 310 MB/s from
    #: its array.
    contention_beta: float = 0.24
    #: Efficiency floor under heavy concurrency (command queueing and
    #: request merging keep a loaded array from collapsing entirely).
    min_efficiency: float = 0.25

    def __post_init__(self) -> None:
        for field in ("first_write_bw", "rewrite_bw", "read_bw"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if self.op_latency < 0:
            raise ValueError("op_latency must be >= 0")
        if self.contention_beta < 0:
            raise ValueError("contention_beta must be >= 0")
        if not 0.0 <= self.min_efficiency <= 1.0:
            raise ValueError("min_efficiency must be in [0, 1]")


#: A single uninitialised EC2 ephemeral disk, per the paper's measurements.
EPHEMERAL_DISK = DiskProfile(
    first_write_bw=20 * MB,
    rewrite_bw=95 * MB,
    read_bw=110 * MB,
)

#: A zero-filled (pre-initialised) ephemeral disk: no first-write penalty.
INITIALIZED_DISK = DiskProfile(
    first_write_bw=95 * MB,
    rewrite_bw=95 * MB,
    read_bw=110 * MB,
)


def raid0(profile: DiskProfile, ndisks: int,
          write_efficiency: float = 1.0,
          read_efficiency: float = 0.705) -> DiskProfile:
    """Aggregate profile of an ``ndisks``-way software RAID0 array.

    Default efficiencies are fitted to the paper's measurements for the
    4-disk c1.xlarge array: first writes 80–100 MB/s (we get 80),
    re-writes 350–400 (380), reads ~310 (310).  Reads scale sub-linearly
    on EC2 (kernel readahead and md overheads), hence the distinct
    ``read_efficiency``.
    """
    if ndisks < 1:
        raise ValueError("ndisks must be >= 1")
    if ndisks == 1:
        return profile
    return DiskProfile(
        first_write_bw=profile.first_write_bw * ndisks * write_efficiency,
        rewrite_bw=profile.rewrite_bw * ndisks * write_efficiency,
        read_bw=profile.read_bw * ndisks * read_efficiency,
        op_latency=profile.op_latency,
        contention_beta=profile.contention_beta,
        min_efficiency=profile.min_efficiency,
    )


class BlockDevice:
    """A contended block device with first-write tracking.

    All operations are generators intended for ``yield from`` inside a
    simulation process::

        yield from disk.write("f1", 8 * MB)   # first write: slow
        yield from disk.read(8 * MB)           # fast
        yield from disk.write("f1", 8 * MB)   # re-write: fast

    Extents are tracked per caller-supplied key (file id in the storage
    layer; block ranges are below model fidelity since the workloads
    are whole-file, write-once).
    """

    def __init__(self, env: "Environment", profile: DiskProfile,
                 name: str = "disk",
                 init_bw: Optional[float] = None,
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        self.env = env
        self.profile = profile
        self.name = name
        # Zero-filling runs `dd` over each raw device in sequence, so it
        # proceeds at the *single-disk* first-write rate even on RAID
        # (hence the paper's 42 min for 50 GB).
        self.init_bw = init_bw if init_bw is not None else profile.first_write_bw
        self.trace = trace
        self._channel = FairShareChannel(env, name=f"{name}.ch",
                                         contention_beta=profile.contention_beta,
                                         min_efficiency=profile.min_efficiency)
        self._touched: Set[object] = set()
        #: Aggregate counters for result tables.
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.reads = 0
        self.writes = 0

    # -- operations ----------------------------------------------------------

    def read(self, nbytes: float) -> Generator:
        """Read ``nbytes`` (PS-shared at the device's read bandwidth)."""
        self.reads += 1
        self.bytes_read += nbytes
        self.trace.emit(self.env.now, "disk", "read", disk=self.name, nbytes=nbytes)
        yield from self._op(nbytes, self.profile.read_bw)

    def write(self, key: object, nbytes: float) -> Generator:
        """Write ``nbytes`` to extent ``key``.

        The first write to a key pays the first-write bandwidth;
        subsequent writes to the same key run at re-write speed.
        """
        first = key not in self._touched
        self._touched.add(key)
        self.writes += 1
        self.bytes_written += nbytes
        bw = self.profile.first_write_bw if first else self.profile.rewrite_bw
        self.trace.emit(self.env.now, "disk", "write", disk=self.name,
                        nbytes=nbytes, first=first)
        yield from self._op(nbytes, bw)

    def zero_fill(self, nbytes: float) -> Generator:
        """Pre-initialise ``nbytes`` of storage (Amazon's suggested
        mitigation).  Runs at first-write speed and marks the special
        whole-device extent as touched for bookkeeping."""
        self.trace.emit(self.env.now, "disk", "zero_fill", disk=self.name,
                        nbytes=nbytes)
        yield from self._op(nbytes, self.init_bw)

    def forget(self, key: object) -> None:
        """Drop extent state for ``key`` (file deleted)."""
        self._touched.discard(key)

    def is_touched(self, key: object) -> bool:
        """Whether ``key`` has been written before."""
        return key in self._touched

    @property
    def active_ops(self) -> int:
        """Operations currently in service."""
        return self._channel.active_ops

    @property
    def busy_seconds(self) -> float:
        """Cumulative dedicated-service time delivered (projected to
        now, so mid-run samplers see smooth utilization)."""
        return self._channel.current_work_done()

    # -- internals -------------------------------------------------------------

    def _op(self, nbytes: float, bw: float) -> Generator:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self.profile.op_latency > 0:
            yield self.env.timeout(self.profile.op_latency)
        if nbytes > 0:
            yield self._channel.submit(nbytes / bw)


def make_node_disk(env: "Environment", ndisks: int = 4,
                   initialized: bool = False,
                   use_raid: bool = True,
                   name: str = "disk",
                   trace: TraceCollector = NULL_COLLECTOR) -> BlockDevice:
    """The local storage of a worker node as configured in the paper:
    the 4 ephemeral disks assembled into one RAID0 partition.

    ``initialized=True`` models Amazon's zero-fill mitigation (used only
    by the initialization-ablation bench); ``use_raid=False`` gives a
    single bare ephemeral disk.
    """
    base = INITIALIZED_DISK if initialized else EPHEMERAL_DISK
    profile = raid0(base, ndisks) if use_raid else base
    return BlockDevice(env, profile, name=name, trace=trace,
                       init_bw=EPHEMERAL_DISK.first_write_bw)
