"""Virtual clusters and the context-broker provisioning analog.

The paper uses the Nimbus Context Broker to turn a pile of freshly
booted VMs into a working HPC cluster: gather member addresses,
generate configuration, start the batch-system and file-system
services.  :class:`ContextBroker` reproduces that orchestration step in
simulation; :class:`VirtualCluster` is the resulting handle the
workflow layer schedules onto.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from .ec2 import EC2Cloud
from .node import VMInstance


@dataclass
class VirtualCluster:
    """A provisioned set of nodes ready to run workflow tasks.

    ``workers`` execute tasks; ``service_nodes`` host dedicated storage
    services (the NFS server in the paper's setup) and receive no
    tasks.
    """

    workers: List[VMInstance]
    service_nodes: List[VMInstance] = field(default_factory=list)

    @property
    def all_nodes(self) -> List[VMInstance]:
        """Workers plus service nodes."""
        return self.workers + self.service_nodes

    @property
    def live_workers(self) -> List[VMInstance]:
        """Workers that have not crashed or been terminated."""
        return [w for w in self.workers if w.is_alive]

    @property
    def total_slots(self) -> int:
        """Total Condor slots across workers."""
        return sum(w.itype.cores for w in self.workers)

    def worker(self, index: int) -> VMInstance:
        """The ``index``-th worker."""
        return self.workers[index]

    def __len__(self) -> int:
        return len(self.workers)


class ContextBroker:
    """Provisions and contextualises virtual clusters on an EC2 cloud.

    Mirrors the Nimbus Context Broker role: launch instances, wait for
    boot, exchange context (configuration generation), start services.
    The configuration exchange is modelled as a short barrier after the
    slowest boot.
    """

    #: Time to generate configs and start services once all VMs are up.
    CONTEXTUALIZE_DELAY = 5.0

    def __init__(self, cloud: EC2Cloud,
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        self.cloud = cloud
        self.env = cloud.env
        self.trace = trace

    def provision(self, n_workers: int, worker_type: str = "c1.xlarge",
                  service_type: Optional[str] = None,
                  n_service: int = 0,
                  simulate_boot: bool = False,
                  initialized_disks: bool = False) -> Generator:
        """Provision a virtual cluster (generator; returns the cluster).

        With ``simulate_boot=True`` the 70–90 s boot window and the
        contextualisation barrier are simulated; the paper's reported
        makespans exclude them, so experiment runners leave it off.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if n_service < 0:
            raise ValueError("n_service must be >= 0")
        workers = self.cloud.launch_many(
            worker_type, n_workers, name_prefix="worker",
            initialized_disks=initialized_disks)
        services: List[VMInstance] = []
        if n_service:
            if service_type is None:
                raise ValueError("service_type required when n_service > 0")
            services = self.cloud.launch_many(
                service_type, n_service, name_prefix="service",
                initialized_disks=initialized_disks)
        if simulate_boot:
            boots = [self.env.process(self.cloud.boot(vm), name=f"boot:{vm.name}")
                     for vm in workers + services]
            yield self.env.all_of(boots)
            yield self.env.timeout(self.CONTEXTUALIZE_DELAY)
        cluster = VirtualCluster(workers=workers, service_nodes=services)
        self.trace.emit(self.env.now, "cluster", "ready",
                        workers=n_workers, services=n_service)
        return cluster

    def provision_now(self, *args, **kwargs) -> VirtualCluster:
        """Synchronous convenience wrapper (no boot simulation)."""
        kwargs["simulate_boot"] = False
        gen = self.provision(*args, **kwargs)
        try:
            next(gen)
        except StopIteration as stop:
            return stop.value
        raise AssertionError("provision yielded despite simulate_boot=False")
