"""Billing meters for EC2 resources.

The paper's cost analysis (§VI) hinges on billing granularity: Amazon
charges per instance-hour with partial hours *rounded up*, so the paper
reports each experiment twice — under actual per-hour charges and under
hypothetical per-second charges (hourly rate / 3600).  Both are
computed here from the same usage intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .types import InstanceType


@dataclass
class UsageInterval:
    """One instance's billed lifetime."""

    instance_name: str
    itype: InstanceType
    start: float
    end: Optional[float] = None

    def duration(self, at: Optional[float] = None) -> float:
        """Seconds of usage, up to ``at`` if still running."""
        end = self.end if self.end is not None else at
        if end is None:
            raise ValueError("interval still open; pass `at`")
        return max(0.0, end - self.start)


@dataclass
class CostBreakdown:
    """Computed charges for a set of usage intervals."""

    per_hour: float
    per_second: float
    instance_hours: float
    billed_hours: int
    by_type: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Rounding up can only ever increase the charge.
        assert self.per_hour >= self.per_second - 1e-9


class BillingMeter:
    """Tracks instance launch/terminate times and computes charges."""

    def __init__(self) -> None:
        self._intervals: List[UsageInterval] = []
        self._open: Dict[str, UsageInterval] = {}

    # -- recording -----------------------------------------------------------

    def launch(self, instance_name: str, itype: InstanceType, at: float) -> None:
        """Record an instance launch."""
        if instance_name in self._open:
            raise ValueError(f"{instance_name!r} already running")
        iv = UsageInterval(instance_name, itype, at)
        self._intervals.append(iv)
        self._open[instance_name] = iv

    def terminate(self, instance_name: str, at: float) -> None:
        """Record an instance termination."""
        iv = self._open.pop(instance_name, None)
        if iv is None:
            raise ValueError(f"{instance_name!r} is not running")
        if at < iv.start:
            raise ValueError("termination before launch")
        iv.end = at

    def terminate_all(self, at: float) -> None:
        """Terminate every open interval (end of experiment)."""
        for name in list(self._open):
            self.terminate(name, at)

    # -- queries ---------------------------------------------------------------

    @property
    def intervals(self) -> List[UsageInterval]:
        """All recorded usage intervals."""
        return list(self._intervals)

    def resource_cost(self, at: Optional[float] = None) -> CostBreakdown:
        """Charges for all usage, per-hour (rounded up) and per-second.

        ``at`` closes still-open intervals for the calculation without
        mutating the meter.
        """
        per_hour = 0.0
        per_second = 0.0
        hours = 0.0
        billed = 0
        by_type: Dict[str, float] = {}
        for iv in self._intervals:
            dur = iv.duration(at)
            rate = iv.itype.price_per_hour
            # Amazon rounds partial hours up; a zero-length interval
            # still bills one hour (instances bill from launch).
            bh = max(1, math.ceil(dur / 3600.0 - 1e-12))
            per_hour += bh * rate
            per_second += dur * rate / 3600.0
            hours += dur / 3600.0
            billed += bh
            by_type[iv.itype.name] = by_type.get(iv.itype.name, 0.0) + bh * rate
        return CostBreakdown(
            per_hour=per_hour,
            per_second=per_second,
            instance_hours=hours,
            billed_hours=billed,
            by_type=by_type,
        )
