"""Virtual machine instances.

A :class:`VMInstance` bundles the contended resources of one EC2 node:
CPU slots (one Condor slot per core, as the paper configures), physical
memory, the RAID0 ephemeral-disk array, and the NIC endpoints on the
cluster network.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from ..simcore.resources import Container, Resource
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from ..telemetry.spans import SpanBuilder
from .disk import BlockDevice, make_node_disk
from .network import ClusterNetwork, Endpoint
from .types import GB, InstanceType

if TYPE_CHECKING:  # pragma: no cover
    from ..simcore.engine import Environment

_instance_counter = itertools.count()


class VMInstance:
    """A booted EC2 instance.

    Parameters
    ----------
    env, itype, network:
        Simulation environment, static type description, and the fabric
        to attach the NIC to.
    name:
        Unique name; auto-generated (``i-0``, ``i-1``, ...) if omitted.
    initialized_disks:
        Zero-fill the ephemeral disks first (ablation switch; the paper
        runs everything *uninitialised*).
    use_raid:
        Assemble the ephemeral disks into RAID0 (the paper's setup).
    """

    def __init__(self, env: "Environment", itype: InstanceType,
                 network: ClusterNetwork, name: Optional[str] = None,
                 initialized_disks: bool = False, use_raid: bool = True,
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        self.env = env
        self.itype = itype
        self.name = name if name is not None else f"i-{next(_instance_counter)}"
        self.trace = trace
        #: One Condor slot per core.
        self.cores = Resource(env, capacity=itype.cores)
        #: Physical memory in bytes; tasks claim their peak RSS.
        self.memory = Container(env, capacity=itype.memory_bytes,
                                init=itype.memory_bytes)
        #: Local ephemeral storage (RAID0 of the instance-store disks).
        self.disk: BlockDevice = make_node_disk(
            env, ndisks=itype.ephemeral_disks,
            initialized=initialized_disks, use_raid=use_raid,
            name=f"{self.name}.disk", trace=trace,
        )
        #: Slots currently executing a job (maintained by the Condor
        #: pool; ``cores`` is the capacity ledger, this is the live
        #: occupancy the utilization sampler reads).
        self.busy_slots = 0
        #: NIC endpoint on the cluster fabric.
        self.nic: Endpoint = network.attach(self.name, itype.nic_bw)
        self.network = network
        self.launched_at = env.now
        self.terminated_at: Optional[float] = None
        #: Set when the node dies uncleanly (fault injection); billing
        #: continues until the experiment notices and terminates it,
        #: matching EC2's bill-until-terminated semantics.
        self.crashed_at: Optional[float] = None
        # Lifetime span (launch -> terminate); spans left open by
        # never-terminated instances are clamped at reconstruction.
        self._spans = SpanBuilder(trace, env)
        self._life_span = self._spans.begin(
            "vm", self.name, node=self.name, itype=itype.name)

    # -- convenience -------------------------------------------------------

    @property
    def memory_free(self) -> float:
        """Unclaimed memory, bytes."""
        return self.memory.level

    @property
    def slots_free(self) -> int:
        """Idle Condor slots."""
        return self.cores.available

    @property
    def cpu_utilization(self) -> float:
        """Fraction of slots currently running a job (0..1)."""
        return self.busy_slots / self.itype.cores

    @property
    def is_running(self) -> bool:
        """True until :meth:`terminate` is called."""
        return self.terminated_at is None

    @property
    def is_alive(self) -> bool:
        """True while the node can run jobs (not terminated, not crashed)."""
        return self.terminated_at is None and self.crashed_at is None

    def crash(self) -> None:
        """Kill the node uncleanly (spot preemption, hardware death).

        The NIC is detached and the lifetime span closes, but the
        instance still counts as *running* for billing purposes until
        :meth:`terminate` — you pay for a dead spot instance until the
        control plane reaps it.
        """
        if not self.is_alive:
            return
        self.crashed_at = self.env.now
        self.network.detach(self.name)
        self._spans.end(self._life_span, crashed=True)
        self.trace.emit(self.env.now, "vm", "crash", node=self.name)

    def terminate(self) -> None:
        """Stop the instance (ephemeral disks are wiped, NIC detached)."""
        if self.terminated_at is not None:
            return
        self.terminated_at = self.env.now
        if self.crashed_at is None:
            self.network.detach(self.name)
            self._spans.end(self._life_span)
        self.trace.emit(self.env.now, "vm", "terminate", node=self.name)

    def __repr__(self) -> str:
        return (f"<VMInstance {self.name} ({self.itype.name}) "
                f"slots={self.slots_free}/{self.itype.cores} "
                f"mem_free={self.memory_free / GB:.1f}GB>")
