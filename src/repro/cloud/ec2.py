"""EC2 facade: launching and terminating instances against a meter.

This plays the role of the EC2 API in the paper's setup: the submit
host calls it to provision workers, and every launch/terminate is
recorded on the :class:`~repro.cloud.billing.BillingMeter` so §VI's
cost analysis can be replayed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from ..simcore.rand import substream
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from .billing import BillingMeter
from .network import ClusterNetwork, Endpoint
from .node import VMInstance
from .types import InstanceType, get_instance_type

if TYPE_CHECKING:  # pragma: no cover
    from ..simcore.engine import Environment


class EC2Cloud:
    """One availability zone's worth of simulated EC2.

    Parameters
    ----------
    env:
        Simulation environment.
    seed:
        Experiment seed; drives the boot-delay jitter stream.
    boot_delay_range:
        (min, max) seconds for VM boot+configure.  The paper observes
        70–90 s but *excludes* it from reported makespans, so
        experiment runners launch with ``boot=False`` by default and
        only the provisioning examples exercise the delay.
    """

    def __init__(self, env: "Environment", seed: int = 0,
                 boot_delay_range: tuple = (70.0, 90.0),
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        self.env = env
        self.network = ClusterNetwork(env, trace=trace)
        self.billing = BillingMeter()
        self.trace = trace
        self.boot_delay_range = boot_delay_range
        self._boot_rng = substream(seed, "ec2", "boot")
        self.instances: List[VMInstance] = []

    # -- instance lifecycle -----------------------------------------------

    def launch(self, itype: str | InstanceType, name: Optional[str] = None,
               initialized_disks: bool = False,
               use_raid: bool = True) -> VMInstance:
        """Launch one instance immediately (no boot delay)."""
        if isinstance(itype, str):
            itype = get_instance_type(itype)
        vm = VMInstance(self.env, itype, self.network, name=name,
                        initialized_disks=initialized_disks,
                        use_raid=use_raid, trace=self.trace)
        self.billing.launch(vm.name, itype, self.env.now)
        self.instances.append(vm)
        self.trace.emit(self.env.now, "vm", "launch", node=vm.name,
                        itype=itype.name)
        return vm

    def launch_many(self, itype: str | InstanceType, count: int,
                    name_prefix: str = "worker",
                    **kwargs) -> List[VMInstance]:
        """Launch ``count`` instances named ``{prefix}-0 .. {prefix}-N``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.launch(itype, name=f"{name_prefix}-{i}", **kwargs)
                for i in range(count)]

    def boot(self, vm: VMInstance) -> Generator:
        """Simulate the boot+contextualisation delay for ``vm``."""
        lo, hi = self.boot_delay_range
        delay = float(self._boot_rng.uniform(lo, hi))
        self.trace.emit(self.env.now, "vm", "boot_start", node=vm.name,
                        delay=delay)
        yield self.env.timeout(delay)
        self.trace.emit(self.env.now, "vm", "boot_done", node=vm.name)

    def terminate(self, vm: VMInstance) -> None:
        """Terminate an instance and close its billing interval."""
        if not vm.is_running:
            return
        vm.terminate()
        self.billing.terminate(vm.name, self.env.now)

    def terminate_all(self) -> None:
        """Terminate every running instance."""
        for vm in self.instances:
            self.terminate(vm)

    # -- shared services ---------------------------------------------------

    def attach_service(self, name: str, bw: float) -> Endpoint:
        """Attach a shared-service front-end (e.g. the S3 endpoint)."""
        return self.network.attach(name, bw)
