"""Cluster network fabric.

EC2's intra-zone network is modelled as a star: every instance has a
full-duplex NIC (separate transmit and receive links) attached to a
non-blocking core, which matches the observed behaviour that instance
NICs — not the fabric — are the bandwidth bottleneck inside an
availability zone.  Shared services (the S3 front-end) appear as extra
endpoints with their own aggregate capacity.

All transfers are max-min fairly shared flows over the links they
traverse (see :mod:`repro.simcore.flownet`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from ..simcore.flownet import FlowNetwork, Link
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector

if TYPE_CHECKING:  # pragma: no cover
    from ..simcore.engine import Environment
    from ..simcore.events import Event


class Endpoint:
    """A network-attached party: an instance NIC or a service front-end."""

    def __init__(self, name: str, tx: Link, rx: Link) -> None:
        self.name = name
        self.tx = tx
        self.rx = rx

    def __repr__(self) -> str:
        return f"<Endpoint {self.name}>"


class ClusterNetwork:
    """The star fabric connecting instances and services."""

    #: Default one-way latency between instances in the same zone (s).
    INTRA_ZONE_LATENCY = 0.0003

    def __init__(self, env: "Environment",
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        self.env = env
        self.trace = trace
        self.flows = FlowNetwork(env)
        self._endpoints: Dict[str, Endpoint] = {}
        #: Aggregate byte counter for result tables.
        self.bytes_transferred = 0.0

    # -- topology -------------------------------------------------------------

    def attach(self, name: str, bw_tx: float, bw_rx: Optional[float] = None) -> Endpoint:
        """Attach an endpoint with the given per-direction bandwidths."""
        if name in self._endpoints:
            raise ValueError(f"endpoint {name!r} already attached")
        ep = Endpoint(
            name,
            tx=Link(f"{name}.tx", bw_tx),
            rx=Link(f"{name}.rx", bw_rx if bw_rx is not None else bw_tx),
        )
        self._endpoints[name] = ep
        return ep

    def detach(self, name: str) -> None:
        """Remove an endpoint (instance terminated)."""
        self._endpoints.pop(name, None)

    def endpoint(self, name: str) -> Endpoint:
        """Look up an attached endpoint by name."""
        return self._endpoints[name]

    @property
    def endpoints(self) -> List[Endpoint]:
        """All attached endpoints."""
        return list(self._endpoints.values())

    # -- transfers --------------------------------------------------------------

    def transfer(self, src: Endpoint, dst: Endpoint, nbytes: float,
                 max_rate: Optional[float] = None,
                 latency: Optional[float] = None) -> Generator:
        """Move ``nbytes`` from ``src`` to ``dst`` (generator; yield from).

        The flow traverses the source transmit link and the destination
        receive link; ``max_rate`` models a per-stream ceiling (single
        TCP connection to S3, for instance).
        """
        if src is dst:
            # Loopback: no network involved.
            return
        self.bytes_transferred += nbytes
        self.trace.emit(self.env.now, "net", "transfer", src=src.name,
                        dst=dst.name, nbytes=nbytes)
        lat = self.INTRA_ZONE_LATENCY if latency is None else latency
        if lat > 0:
            yield self.env.timeout(lat)
        if nbytes > 0:
            yield self.flows.transfer([src.tx, dst.rx], nbytes, max_rate=max_rate)

    def transfer_event(self, src: Endpoint, dst: Endpoint, nbytes: float,
                       max_rate: Optional[float] = None) -> "Event":
        """Like :meth:`transfer` but returns an event (for fan-out)."""
        return self.env.process(
            self.transfer(src, dst, nbytes, max_rate=max_rate),
            name=f"xfer:{src.name}->{dst.name}",
        )
