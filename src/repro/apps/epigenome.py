"""Epigenome: DNA-methylation read mapping with MAQ (the CPU-bound app).

The paper's configuration maps human chromosome-21 reads: **529 tasks,
1.9 GB of input, 300 MB of output**, and 99% of runtime in the CPU
(Table I: I/O Low, Memory Medium, CPU High) — which is why Fig. 3 shows
almost no separation between the storage systems.

Pipeline (the USC Epigenome Center's MAQ workflow):

=============  =====  ==================================================
transformation count  role
=============  =====  ==================================================
fastqSplit         7  split one sequencer lane into chunks
filterContams    128  filter contaminating reads from one chunk
sol2sanger       128  convert Solexa quality scores to Sanger
fastq2bfq        128  pack the chunk into MAQ's binary format
map              128  MAQ alignment of the chunk to the reference
mapMerge           8  merge mapped chunks (7 per-lane + 1 global)
maqIndex           1  index the merged map
pileup             1  compute sequence density / methylation calls
=============  =====  ==================================================

Total: 529.  Seven lanes split into [19,19,18,18,18,18,18] chunks
(128 total).  Every ``map`` task reads the shared reference index —
the file-reuse that keeps even S3 competitive here.
"""

from __future__ import annotations

from typing import List, Optional

from ..workflow.dag import Task, Workflow

MB = 1_000_000.0

#: Paper configuration: 7 sequencer lanes, 128 chunks in total.
DEFAULT_CHUNKS = [19, 19, 18, 18, 18, 18, 18]

LANE_SIZE = 270 * MB          # 7 x 270 MB = 1.89 GB input lanes
REFERENCE_SIZE = 15 * MB      # chr21 MAQ .bfa reference index
CHUNK_SIZE = 14 * MB          # lane / ~19
FILTERED_SIZE = 13 * MB
SANGER_SIZE = 13 * MB
BFQ_SIZE = 4.5 * MB
MAP_SIZE = 3.0 * MB
LANE_MAP_SIZE = 48 * MB
GLOBAL_MAP_SIZE = 250 * MB
INDEX_SIZE = 25 * MB
PILEUP_SIZE = 25 * MB         # 250+25+25 = 300 MB output

CPU = {
    "fastqSplit": 12.0,
    "filterContams": 28.0,
    "sol2sanger": 22.0,
    "fastq2bfq": 18.0,
    "map": 240.0,             # MAQ alignment dominates
    "mapMerge": 60.0,
    "maqIndex": 45.0,
    "pileup": 55.0,
}
MEMORY = {
    "fastqSplit": 0.2e9,
    "filterContams": 0.4e9,
    "sol2sanger": 0.3e9,
    "fastq2bfq": 0.3e9,
    "map": 0.8e9,             # "Medium" memory overall
    "mapMerge": 0.7e9,
    "maqIndex": 0.5e9,
    "pileup": 0.6e9,
}


def build_epigenome(chunks_per_lane: Optional[List[int]] = None) -> Workflow:
    """The paper's Epigenome workflow (chr21; 529 tasks by default)."""
    chunks = list(DEFAULT_CHUNKS if chunks_per_lane is None else chunks_per_lane)
    if not chunks or any(c < 1 for c in chunks):
        raise ValueError("chunks_per_lane must be non-empty, all >= 1")
    n_lanes = len(chunks)
    wf = Workflow(f"epigenome-{n_lanes}x{sum(chunks)}")

    wf.add_file("reference.bfa", REFERENCE_SIZE, is_input=True)
    for lane in range(n_lanes):
        wf.add_file(f"lane_{lane}.fastq", LANE_SIZE, is_input=True)

    lane_maps = []
    for lane, n_chunks in enumerate(chunks):
        # Split the lane.
        chunk_files = [f"chunk_{lane}_{c}.fastq" for c in range(n_chunks)]
        for name in chunk_files:
            wf.add_file(name, CHUNK_SIZE)
        wf.add_task(Task(
            f"fastqSplit_{lane}", "fastqSplit", CPU["fastqSplit"],
            memory_bytes=MEMORY["fastqSplit"],
            inputs=[f"lane_{lane}.fastq"], outputs=chunk_files,
        ))

        # Per-chunk conversion + mapping chain.
        maps = []
        for c in range(n_chunks):
            filt = f"filt_{lane}_{c}.fastq"
            sang = f"sang_{lane}_{c}.fastq"
            bfq = f"bfq_{lane}_{c}.bfq"
            mapped = f"map_{lane}_{c}.map"
            wf.add_file(filt, FILTERED_SIZE)
            wf.add_file(sang, SANGER_SIZE)
            wf.add_file(bfq, BFQ_SIZE)
            wf.add_file(mapped, MAP_SIZE)
            wf.add_task(Task(
                f"filterContams_{lane}_{c}", "filterContams",
                CPU["filterContams"], memory_bytes=MEMORY["filterContams"],
                inputs=[f"chunk_{lane}_{c}.fastq"], outputs=[filt],
            ))
            wf.add_task(Task(
                f"sol2sanger_{lane}_{c}", "sol2sanger",
                CPU["sol2sanger"], memory_bytes=MEMORY["sol2sanger"],
                inputs=[filt], outputs=[sang],
            ))
            wf.add_task(Task(
                f"fastq2bfq_{lane}_{c}", "fastq2bfq",
                CPU["fastq2bfq"], memory_bytes=MEMORY["fastq2bfq"],
                inputs=[sang], outputs=[bfq],
            ))
            wf.add_task(Task(
                f"map_{lane}_{c}", "map",
                CPU["map"], memory_bytes=MEMORY["map"],
                # Every mapper reads the shared reference index.
                inputs=["reference.bfa", bfq], outputs=[mapped],
            ))
            maps.append(mapped)

        # Per-lane merge.
        lane_map = f"lanemap_{lane}.map"
        wf.add_file(lane_map, LANE_MAP_SIZE)
        wf.add_task(Task(
            f"mapMerge_{lane}", "mapMerge", CPU["mapMerge"],
            memory_bytes=MEMORY["mapMerge"],
            inputs=maps, outputs=[lane_map],
        ))
        lane_maps.append(lane_map)

    # Global merge, index, pileup.
    # The merged map and index are final products even though the
    # pileup step consumes them (the paper counts them in its 300 MB).
    wf.add_file("merged.map", GLOBAL_MAP_SIZE, final=True)
    wf.add_task(Task(
        "mapMerge_all", "mapMerge", CPU["mapMerge"],
        memory_bytes=MEMORY["mapMerge"],
        inputs=lane_maps, outputs=["merged.map"],
    ))
    wf.add_file("merged.index", INDEX_SIZE, final=True)
    wf.add_task(Task(
        "maqIndex", "maqIndex", CPU["maqIndex"],
        memory_bytes=MEMORY["maqIndex"],
        inputs=["merged.map"], outputs=["merged.index"],
    ))
    wf.add_file("pileup.out", PILEUP_SIZE)
    wf.add_task(Task(
        "pileup", "pileup", CPU["pileup"],
        memory_bytes=MEMORY["pileup"],
        inputs=["merged.map", "merged.index"], outputs=["pileup.out"],
    ))
    return wf
