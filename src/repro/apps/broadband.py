"""Broadband: earthquake seismogram synthesis (the memory-limited app).

The paper's configuration: **6 sources x 8 sites = 48 scenario
combinations, 768 tasks** (16 per combination), 6 GB of input, 303 MB
of output.  Table I: I/O Medium, Memory High, CPU Medium — "more than
75% of its runtime is consumed by tasks requiring more than 1 GB of
physical memory", which caps per-node concurrency well below the
8 slots.

Structure per (source, site) combination — "several executables that
are run in sequence like a mini workflow" (§V.C), which is exactly why
GlusterFS NUFA (write-local) beats distribute for this application:

* 1 rupture generation task;
* a 3-stage low-frequency simulation chain (heavy: 3 GB, reads the
  shared velocity model at every stage);
* a 4-stage high-frequency simulation chain (heavy: 1.8 GB);
* 1 merge task (heavy);
* 4 seismogram-processing tasks, each emitting several small files
  (the ">5,000 small files" §V.C mentions);
* 2 intensity-measure tasks (a dozen small outputs each);
* 1 collect task producing the combination's final product.

Input reuse is the defining I/O trait: the 1.1 GB velocity model is
read by every low-frequency stage of every combination, each source's
rupture description by all 8 of its sites, and each site's model by
all 6 of its sources.  This is what the S3 client cache exploits
(fetch once per node) and what hammers a central NFS server.
"""

from __future__ import annotations

from ..workflow.dag import Task, Workflow

MB = 1_000_000.0
GB = 1_000_000_000.0

# Input data layout: 1.1 GB shared velocity model + per-source and
# per-site datasets: 1.1 + 6*0.35 + 8*0.35 = 6.0 GB.
VELOCITY_MODEL_SIZE = 1.1 * GB
SOURCE_DATA_SIZE = 0.35 * GB
SITE_DATA_SIZE = 0.35 * GB

SRF_SIZE = 50 * MB            # rupture description
LF_STAGE_SIZE = 150 * MB      # low-frequency chain intermediates
HF_STAGE_SIZE = 100 * MB      # high-frequency chain intermediates
BB_SEIS_SIZE = 120 * MB       # merged broadband seismogram
PROC_FILE_SIZE = 4 * MB       # seismogram-processing outputs (x14 each)
INTENSITY_FILE_SIZE = 0.5 * MB  # intensity measures (x16 each)
FINAL_SIZE = 6.3125 * MB      # 48 x 6.3125 MB = 303 MB output

N_SOURCES = 6
N_SITES = 8
N_PROC_TASKS = 4
N_PROC_FILES = 14
N_INTENSITY_TASKS = 2
N_INTENSITY_FILES = 16

CPU = {
    "rupture_gen": 17.0,
    "lf_sim": 50.0,
    "hf_sim": 38.0,
    "seis_merge": 26.0,
    "seis_proc": 13.0,
    "intensity": 9.0,
    "collect": 7.0,
}
MEMORY = {
    "rupture_gen": 0.9 * GB,
    "lf_sim": 2.2 * GB,       # > 1 GB: the memory-limited population
    "hf_sim": 1.4 * GB,
    "seis_merge": 1.1 * GB,
    "seis_proc": 0.5 * GB,
    "intensity": 0.3 * GB,
    "collect": 0.2 * GB,
}

N_LF_STAGES = 3
N_HF_STAGES = 4


def build_broadband(n_sources: int = N_SOURCES,
                    n_sites: int = N_SITES) -> Workflow:
    """The paper's Broadband workflow (6 sources x 8 sites default)."""
    if n_sources < 1 or n_sites < 1:
        raise ValueError("n_sources and n_sites must be >= 1")
    wf = Workflow(f"broadband-{n_sources}x{n_sites}")

    wf.add_file("velocity_model.dat", VELOCITY_MODEL_SIZE, is_input=True)
    for s in range(n_sources):
        wf.add_file(f"source_{s}.dat", SOURCE_DATA_SIZE, is_input=True)
    for k in range(n_sites):
        wf.add_file(f"site_{k}.dat", SITE_DATA_SIZE, is_input=True)

    for s in range(n_sources):
        for k in range(n_sites):
            c = f"s{s}k{k}"

            # 1. rupture generation ------------------------------------
            srf = f"srf_{c}.dat"
            wf.add_file(srf, SRF_SIZE)
            wf.add_task(Task(
                f"rupture_gen_{c}", "rupture_gen", CPU["rupture_gen"],
                memory_bytes=MEMORY["rupture_gen"],
                inputs=[f"source_{s}.dat"], outputs=[srf],
            ))

            # 2. low-frequency chain (reads the big shared model every
            #    stage — the reuse the S3 cache exploits) --------------
            logs = []
            prev = srf
            for j in range(N_LF_STAGES):
                out = f"lf_{c}_{j}.dat"
                log = f"lf_{c}_{j}.log"
                wf.add_file(out, LF_STAGE_SIZE)
                wf.add_file(log, 0.2 * MB)
                wf.add_task(Task(
                    f"lf_sim_{c}_{j}", "lf_sim", CPU["lf_sim"],
                    memory_bytes=MEMORY["lf_sim"],
                    inputs=["velocity_model.dat", prev], outputs=[out, log],
                ))
                logs.append(log)
                prev = out
            lf_final = prev

            # 3. high-frequency chain ------------------------------------
            prev = srf
            for j in range(N_HF_STAGES):
                out = f"hf_{c}_{j}.dat"
                log = f"hf_{c}_{j}.log"
                wf.add_file(out, HF_STAGE_SIZE)
                wf.add_file(log, 0.2 * MB)
                wf.add_task(Task(
                    f"hf_sim_{c}_{j}", "hf_sim", CPU["hf_sim"],
                    memory_bytes=MEMORY["hf_sim"],
                    inputs=[f"site_{k}.dat", prev], outputs=[out, log],
                ))
                logs.append(log)
                prev = out
            hf_final = prev

            # 4. merge -----------------------------------------------------
            bb = f"bb_{c}.dat"
            wf.add_file(bb, BB_SEIS_SIZE)
            wf.add_task(Task(
                f"seis_merge_{c}", "seis_merge", CPU["seis_merge"],
                memory_bytes=MEMORY["seis_merge"],
                inputs=[lf_final, hf_final], outputs=[bb],
            ))

            # 5. seismogram processing (many small outputs) ----------------
            proc_outputs = []
            for j in range(N_PROC_TASKS):
                outs = [f"proc_{c}_{j}_{m}.dat" for m in range(N_PROC_FILES)]
                for o in outs:
                    wf.add_file(o, PROC_FILE_SIZE)
                proc_outputs.extend(outs)
                wf.add_task(Task(
                    f"seis_proc_{c}_{j}", "seis_proc", CPU["seis_proc"],
                    memory_bytes=MEMORY["seis_proc"],
                    inputs=[bb], outputs=outs,
                ))

            # 6. intensity measures -------------------------------------------
            intensity_outputs = []
            for j in range(N_INTENSITY_TASKS):
                ins = proc_outputs[j::N_INTENSITY_TASKS]
                outs = [f"int_{c}_{j}_{m}.dat"
                        for m in range(N_INTENSITY_FILES)]
                for o in outs:
                    wf.add_file(o, INTENSITY_FILE_SIZE)
                intensity_outputs.extend(outs)
                wf.add_task(Task(
                    f"intensity_{c}_{j}", "intensity", CPU["intensity"],
                    memory_bytes=MEMORY["intensity"],
                    inputs=ins, outputs=outs,
                ))

            # 7. collect ------------------------------------------------------
            final = f"final_{c}.dat"
            wf.add_file(final, FINAL_SIZE)
            wf.add_task(Task(
                f"collect_{c}", "collect", CPU["collect"],
                memory_bytes=MEMORY["collect"],
                # The collector archives the chain logs too, so every
                # generated file is consumed and the workflow's terminal
                # output is the paper's 303 MB of final products.
                inputs=intensity_outputs + logs, outputs=[final],
            ))
    return wf
