"""Montage: astronomical image mosaics (the I/O-bound application).

The paper runs an 8-degree-square 2MASS mosaic: **10,429 tasks, 4.2 GB
of input, 7.9 GB of output**, tens of thousands of 1–10 MB files, and
more than 95% of task time spent waiting on I/O (Table I: I/O High,
Memory Low, CPU Low).

The generator reproduces the published task breakdown of that exact
workflow:

====================  =====  =========================================
transformation        count  role
====================  =====  =========================================
mProjectPP             2102  reproject one raw image (image + area)
mDiffFit               6172  fit the difference of an overlapping pair
mConcatFit                1  concatenate all 6172 fit results
mBgModel                  1  global background model fit
mBackground            2102  apply background correction to one image
mImgtbl                  17  per-tile metadata table
mAdd                     17  co-add one mosaic tile
mShrink                  16  shrink a tile for the preview
mJPEG                     1  final JPEG preview
====================  =====  =========================================

Total: 10,429.  Overlap structure comes from laying the 2102 images on
a square grid and connecting horizontal, vertical, and diagonal
neighbours until the 6,172 difference jobs are placed, as mosaics do.

Non-default ``degrees`` scales the image count by area (a 4-degree
mosaic has ~a quarter of the images) for quick tests and sweeps.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..workflow.dag import Task, Workflow

MB = 1_000_000.0

# Paper-exact counts for the 8-degree mosaic.
N_PROJ_8DEG = 2102
N_DIFF_8DEG = 6172
N_TILES_8DEG = 17
N_SHRINK_8DEG = 16

# File sizes (2MASS plates and their Montage products).
RAW_SIZE = 2.0 * MB          # 2102 x 2.0 MB = 4.2 GB input
PROJ_SIZE = 5.5 * MB
PROJ_AREA_SIZE = 2.7 * MB
DIFF_IMG_SIZE = 5.5 * MB
FIT_SIZE = 0.005 * MB
CONCAT_SIZE = 0.4 * MB
CORRECTIONS_SIZE = 0.12 * MB
CORR_SIZE = 5.5 * MB
CORR_AREA_SIZE = 2.7 * MB
TILE_TBL_SIZE = 0.05 * MB
TILE_SIZE = 330.0 * MB       # 17 x (330+135) MB = 7.9 GB output
TILE_AREA_SIZE = 135.0 * MB
SHRUNK_SIZE = 10.0 * MB
JPEG_SIZE = 2.0 * MB

# Per-task pure-CPU seconds (I/O excluded) and peak memory.  Montage
# tasks are short and small: the workflow's character is its file
# population, not its arithmetic.
CPU = {
    "mProjectPP": 1.4,
    "mDiffFit": 0.15,
    "mConcatFit": 30.0,
    "mBgModel": 60.0,
    "mBackground": 0.15,
    "mImgtbl": 3.0,
    "mAdd": 25.0,
    "mShrink": 3.0,
    "mJPEG": 5.0,
}
MEMORY = {
    "mProjectPP": 60 * MB,
    "mDiffFit": 40 * MB,
    "mConcatFit": 100 * MB,
    "mBgModel": 160 * MB,
    "mBackground": 40 * MB,
    "mImgtbl": 60 * MB,
    "mAdd": 300 * MB,
    "mShrink": 100 * MB,
    "mJPEG": 80 * MB,
}


def _grid_edges(n_images: int, n_edges: int) -> List[Tuple[int, int]]:
    """Overlap pairs: neighbours on a near-square grid, in the order
    horizontal, vertical, then the two diagonals, truncated to
    ``n_edges``."""
    side = int(math.ceil(math.sqrt(n_images)))

    def idx(r: int, c: int) -> int:
        return r * side + c

    edges: List[Tuple[int, int]] = []
    directions = [(0, 1), (1, 0), (1, 1), (1, -1)]
    for dr, dc in directions:
        for r in range(side):
            for c in range(side):
                r2, c2 = r + dr, c + dc
                if 0 <= r2 < side and 0 <= c2 < side:
                    a, b = idx(r, c), idx(r2, c2)
                    if a < n_images and b < n_images:
                        edges.append((a, b))
                        if len(edges) == n_edges:
                            return edges
    return edges


def build_montage(degrees: float = 8.0) -> Workflow:
    """The paper's Montage workflow (8-degree mosaic by default).

    ``degrees`` scales the image count by sky area; at the default the
    task breakdown matches the paper's 10,429 exactly.
    """
    if degrees <= 0:
        raise ValueError("degrees must be positive")
    area_scale = (degrees / 8.0) ** 2
    if degrees == 8.0:
        n_proj, n_diff, n_tiles = N_PROJ_8DEG, N_DIFF_8DEG, N_TILES_8DEG
        n_shrink = N_SHRINK_8DEG
    else:
        n_proj = max(4, round(N_PROJ_8DEG * area_scale))
        n_diff_avail = len(_grid_edges(n_proj, 10 ** 9))
        n_diff = min(max(3, round(N_DIFF_8DEG * area_scale)), n_diff_avail)
        n_tiles = max(1, round(N_TILES_8DEG * area_scale))
        n_shrink = max(1, n_tiles - 1)

    wf = Workflow(f"montage-{degrees:g}deg")

    # Raw input plates.
    for i in range(n_proj):
        wf.add_file(f"raw_{i}.fits", RAW_SIZE, is_input=True)

    # mProjectPP ------------------------------------------------------------
    for i in range(n_proj):
        wf.add_file(f"proj_{i}.fits", PROJ_SIZE)
        wf.add_file(f"parea_{i}.fits", PROJ_AREA_SIZE)
        wf.add_task(Task(
            f"mProjectPP_{i}", "mProjectPP", CPU["mProjectPP"],
            memory_bytes=MEMORY["mProjectPP"],
            inputs=[f"raw_{i}.fits"],
            outputs=[f"proj_{i}.fits", f"parea_{i}.fits"],
        ))

    # mDiffFit ----------------------------------------------------------------
    edges = _grid_edges(n_proj, n_diff)
    fit_files = []
    for k, (a, b) in enumerate(edges):
        wf.add_file(f"fit_{k}.txt", FIT_SIZE)
        # Difference images are temporaries (the paper excludes them
        # from its 7.9 GB output figure).
        wf.add_file(f"dimg_{k}.fits", DIFF_IMG_SIZE, temporary=True)
        fit_files.append(f"fit_{k}.txt")
        wf.add_task(Task(
            f"mDiffFit_{k}", "mDiffFit", CPU["mDiffFit"],
            memory_bytes=MEMORY["mDiffFit"],
            inputs=[f"proj_{a}.fits", f"parea_{a}.fits",
                    f"proj_{b}.fits", f"parea_{b}.fits"],
            outputs=[f"fit_{k}.txt", f"dimg_{k}.fits"],
        ))

    # mConcatFit / mBgModel ------------------------------------------------------
    wf.add_file("fits.tbl", CONCAT_SIZE)
    wf.add_task(Task("mConcatFit", "mConcatFit", CPU["mConcatFit"],
                     memory_bytes=MEMORY["mConcatFit"],
                     inputs=fit_files, outputs=["fits.tbl"]))
    wf.add_file("corrections.tbl", CORRECTIONS_SIZE)
    wf.add_task(Task("mBgModel", "mBgModel", CPU["mBgModel"],
                     memory_bytes=MEMORY["mBgModel"],
                     inputs=["fits.tbl"], outputs=["corrections.tbl"]))

    # mBackground --------------------------------------------------------------
    for i in range(n_proj):
        wf.add_file(f"corr_{i}.fits", CORR_SIZE)
        wf.add_file(f"carea_{i}.fits", CORR_AREA_SIZE)
        wf.add_task(Task(
            f"mBackground_{i}", "mBackground", CPU["mBackground"],
            memory_bytes=MEMORY["mBackground"],
            inputs=[f"proj_{i}.fits", f"parea_{i}.fits", "corrections.tbl"],
            outputs=[f"corr_{i}.fits", f"carea_{i}.fits"],
        ))

    # Tiles: contiguous bands of images.
    tiles: List[List[int]] = [[] for _ in range(n_tiles)]
    for i in range(n_proj):
        tiles[i * n_tiles // n_proj].append(i)

    # mImgtbl / mAdd ------------------------------------------------------------
    for t, members in enumerate(tiles):
        wf.add_file(f"tile_{t}.tbl", TILE_TBL_SIZE)
        wf.add_task(Task(
            f"mImgtbl_{t}", "mImgtbl", CPU["mImgtbl"],
            memory_bytes=MEMORY["mImgtbl"],
            # Header scan: reads the (small) area products of its band.
            inputs=[f"carea_{i}.fits" for i in members],
            outputs=[f"tile_{t}.tbl"],
        ))
        # Mosaic tiles (and their area maps) are the science products
        # the paper counts as the 7.9 GB of output, even though the
        # preview pipeline also consumes them.
        wf.add_file(f"tile_{t}.fits", TILE_SIZE, final=True)
        wf.add_file(f"tarea_{t}.fits", TILE_AREA_SIZE, final=True)
        wf.add_task(Task(
            f"mAdd_{t}", "mAdd", CPU["mAdd"],
            memory_bytes=MEMORY["mAdd"],
            inputs=([f"corr_{i}.fits" for i in members]
                    + [f"carea_{i}.fits" for i in members]
                    + [f"tile_{t}.tbl"]),
            outputs=[f"tile_{t}.fits", f"tarea_{t}.fits"],
        ))

    # mShrink / mJPEG ---------------------------------------------------------------
    shrunk = []
    for t in range(min(n_shrink, n_tiles)):
        wf.add_file(f"shrunk_{t}.fits", SHRUNK_SIZE)
        shrunk.append(f"shrunk_{t}.fits")
        wf.add_task(Task(
            f"mShrink_{t}", "mShrink", CPU["mShrink"],
            memory_bytes=MEMORY["mShrink"],
            inputs=[f"tile_{t}.fits"], outputs=[f"shrunk_{t}.fits"],
        ))
    wf.add_file("mosaic.jpg", JPEG_SIZE)
    wf.add_task(Task("mJPEG", "mJPEG", CPU["mJPEG"],
                     memory_bytes=MEMORY["mJPEG"],
                     inputs=shrunk, outputs=["mosaic.jpg"]))
    return wf
