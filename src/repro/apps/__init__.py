"""The paper's workflow applications as synthetic DAG generators.

* :func:`build_montage` — 8-degree mosaic, 10,429 tasks (I/O-bound);
* :func:`build_broadband` — 6x8 seismograms, 768 tasks (memory-limited);
* :func:`build_epigenome` — chr21 mapping, 529 tasks (CPU-bound);
* :func:`build_synthetic` — parameterizable layered random DAGs.

``APP_BUILDERS`` maps the paper's application names to their default
builders for the experiment harness and CLI.
"""

from typing import Callable, Dict

from ..workflow.dag import Workflow
from .broadband import build_broadband
from .epigenome import build_epigenome
from .montage import build_montage
from .synthetic import build_synthetic

#: Application name -> zero-argument builder of the paper configuration.
APP_BUILDERS: Dict[str, Callable[[], Workflow]] = {
    "montage": build_montage,
    "broadband": build_broadband,
    "epigenome": build_epigenome,
}


def build_app(name: str) -> Workflow:
    """Build a paper application by name (montage/broadband/epigenome)."""
    try:
        builder = APP_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(APP_BUILDERS))
        raise ValueError(f"unknown application {name!r}; known: {known}") from None
    return builder()


__all__ = [
    "APP_BUILDERS",
    "build_app",
    "build_broadband",
    "build_epigenome",
    "build_montage",
    "build_synthetic",
]
