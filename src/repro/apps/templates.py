"""Cached, immutable workflow templates.

Building a paper application is not free — Montage alone is a
10,429-task DAG whose construction, validation, and dependency
derivation cost a measurable slice of a simulated cell.  Sweeps
(``repro-ec2 figure``, fault sweeps, the benchmark suite) run dozens of
cells of the *same* application, and the obvious
``APP_BUILDERS[app]()`` call rebuilt the whole DAG for every one.

A :class:`WorkflowTemplate` builds the application once, freezes the
resulting :class:`~repro.workflow.dag.Workflow` (validated, parent map
precomputed, further mutation rejected), and hands the shared instance
to every run.  Sharing is sound because execution never mutates a
workflow: planning state lives in the
:class:`~repro.workflow.mapper.ExecutablePlan`, file lifecycle state in
the storage namespace, and :class:`~repro.storage.files.FileMetadata`
is a frozen dataclass.  The freeze makes the contract enforceable
rather than conventional — any future code that tries to mutate a
template-backed workflow fails loudly instead of corrupting later runs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..workflow.dag import Workflow
from . import APP_BUILDERS


class WorkflowTemplate:
    """One application, built once, instantiable per run for free."""

    def __init__(self, build: Callable[[], Workflow],
                 name: Optional[str] = None) -> None:
        self._build = build
        self._name = name
        self._workflow: Optional[Workflow] = None

    @property
    def name(self) -> str:
        """Template label (the app name, or the workflow's own name)."""
        if self._name is not None:
            return self._name
        return self.instantiate().name

    def instantiate(self) -> Workflow:
        """The frozen workflow (built and sealed on first use)."""
        wf = self._workflow
        if wf is None:
            wf = self._workflow = self._build().freeze()
        return wf


#: Lazily populated app-name -> template cache (one per process).
_TEMPLATES: Dict[str, WorkflowTemplate] = {}


def app_template(name: str) -> WorkflowTemplate:
    """The cached template for a paper application.

    Raises ``ValueError`` for unknown names, mirroring
    :func:`repro.apps.build_app`.
    """
    tpl = _TEMPLATES.get(name)
    if tpl is None:
        try:
            builder = APP_BUILDERS[name]
        except KeyError:
            known = ", ".join(sorted(APP_BUILDERS))
            raise ValueError(
                f"unknown application {name!r}; known: {known}") from None
        tpl = _TEMPLATES[name] = WorkflowTemplate(builder, name=name)
    return tpl


def clear_template_cache() -> None:
    """Drop all cached templates (tests; memory-sensitive callers)."""
    _TEMPLATES.clear()
