"""Parameterizable synthetic workflows.

Beyond the three paper applications, users (and our property tests)
need arbitrary DAG shapes with controlled I/O / CPU / memory mixes.
:func:`build_synthetic` generates layered random workflows with
reproducible structure from a seed.
"""

from __future__ import annotations

from typing import Optional

from ..simcore.rand import substream
from ..workflow.dag import Task, Workflow

MB = 1_000_000.0


def build_synthetic(n_tasks: int = 100,
                    width: int = 10,
                    fan_in: int = 2,
                    cpu_seconds: float = 10.0,
                    file_size: float = 5 * MB,
                    memory_bytes: float = 200 * MB,
                    input_files: int = 5,
                    cpu_cv: float = 0.3,
                    size_cv: float = 0.3,
                    seed: int = 0,
                    name: Optional[str] = None) -> Workflow:
    """A layered random workflow.

    Tasks are laid out in layers of ``width``; each task reads
    ``fan_in`` files chosen from the previous layer's outputs (or the
    workflow inputs for the first layer) and writes one file.  CPU
    times and file sizes are log-normal-ish around their means with
    the given coefficients of variation, drawn from a deterministic
    stream for ``seed``.
    """
    if n_tasks < 1 or width < 1 or fan_in < 1 or input_files < 1:
        raise ValueError("n_tasks, width, fan_in, input_files must be >= 1")
    if cpu_seconds < 0 or file_size <= 0 or memory_bytes < 0:
        raise ValueError("cpu_seconds/file_size/memory_bytes out of range")
    rng = substream(seed, "synthetic", n_tasks, width)
    wf = Workflow(name or f"synthetic-{n_tasks}")

    def draw(mean: float, cv: float) -> float:
        if cv <= 0:
            return mean
        val = float(rng.lognormal(0.0, cv)) * mean
        return max(mean * 0.05, val)

    prev_layer = []
    for i in range(input_files):
        fname = f"input_{i}.dat"
        wf.add_file(fname, draw(file_size, size_cv), is_input=True)
        prev_layer.append(fname)

    made = 0
    layer = 0
    while made < n_tasks:
        this_layer = []
        for w in range(min(width, n_tasks - made)):
            tid = f"t_{layer}_{w}"
            out = f"f_{layer}_{w}.dat"
            wf.add_file(out, draw(file_size, size_cv))
            k = min(fan_in, len(prev_layer))
            picks = list(rng.choice(len(prev_layer), size=k, replace=False))
            wf.add_task(Task(
                tid, f"stage{layer}", draw(cpu_seconds, cpu_cv),
                memory_bytes=memory_bytes,
                inputs=[prev_layer[p] for p in picks],
                outputs=[out],
            ))
            this_layer.append(out)
            made += 1
        prev_layer = this_layer
        layer += 1
    return wf
