"""Run analytics: utilization, queueing, speedup, critical paths.

The paper reasons about its results in terms of resource utilization
("adding resources only improves cost if speedup is superlinear"),
slot-level parallelism, and where time goes inside tasks.  This module
computes those quantities from :class:`~repro.workflow.wms.WorkflowRun`
records so examples and notebooks don't have to re-derive them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..workflow.dag import Workflow
from ..workflow.executor import JobRecord
from ..workflow.wms import WorkflowRun


@dataclass(frozen=True)
class UtilizationReport:
    """How busy the cluster's slots were during a run."""

    makespan: float
    total_slots: int
    busy_fraction: float       # task-busy slot-time / available slot-time
    cpu_fraction: float        # compute / available slot-time
    io_fraction: float         # storage waits / available slot-time
    mean_queue_delay: float    # submit -> slot start
    p95_queue_delay: float


def utilization(run: WorkflowRun, slots_per_node: int = 8) -> UtilizationReport:
    """Slot utilization of a run (8 slots/node, the paper's setup)."""
    slots = run.n_workers * slots_per_node
    available = run.makespan * slots
    busy = sum(r.duration for r in run.records)
    cpu = sum(r.cpu_seconds for r in run.records)
    io = sum(r.io_seconds for r in run.records)
    delays = np.array([r.queue_delay for r in run.records]) \
        if run.records else np.zeros(1)
    return UtilizationReport(
        makespan=run.makespan,
        total_slots=slots,
        busy_fraction=busy / available if available else 0.0,
        cpu_fraction=cpu / available if available else 0.0,
        io_fraction=io / available if available else 0.0,
        mean_queue_delay=float(delays.mean()),
        p95_queue_delay=float(np.percentile(delays, 95)),
    )


def speedup_curve(makespans: Mapping[int, float]) -> Dict[int, float]:
    """Speedup relative to the smallest cluster in the mapping."""
    if not makespans:
        return {}
    base_n = min(makespans)
    base = makespans[base_n]
    return {n: base / t for n, t in sorted(makespans.items())}


def parallel_efficiency(makespans: Mapping[int, float]) -> Dict[int, float]:
    """Speedup divided by the node-count ratio (1.0 = linear scaling).

    The paper's cost argument in one number: cost per workflow only
    drops when this exceeds 1.0 ("superlinear"), which it never does.
    """
    curve = speedup_curve(makespans)
    if not curve:
        return {}
    base_n = min(curve)
    return {n: s / (n / base_n) for n, s in curve.items()}


def critical_path_seconds(workflow: Workflow,
                          runtimes: Mapping[str, float] = None) -> float:
    """Length of the workflow's longest dependency chain.

    ``runtimes`` maps task id -> seconds; defaults to each task's pure
    CPU time (an execution-independent lower bound on any makespan).
    """
    longest: Dict[str, float] = {}
    for tid in workflow.topological_order():
        dur = (runtimes or {}).get(tid, workflow.tasks[tid].cpu_seconds)
        longest[tid] = dur + max(
            (longest[p] for p in workflow.parents(tid)), default=0.0)
    return max(longest.values(), default=0.0)


def makespan_lower_bound(workflow: Workflow, n_slots: int) -> float:
    """max(total work / slots, critical path) — the classic LP bound."""
    return max(workflow.total_cpu_seconds() / n_slots,
               critical_path_seconds(workflow))


def phase_timeline(records: Sequence[JobRecord],
                   bucket_seconds: float = 60.0
                   ) -> List[Tuple[float, int]]:
    """(bucket start, running tasks) samples over the run."""
    if not records:
        return []
    end = max(r.end_time for r in records)
    edges = np.arange(0.0, end + bucket_seconds, bucket_seconds)
    counts = []
    starts = np.array([r.start_time for r in records])
    ends = np.array([r.end_time for r in records])
    for t in edges[:-1]:
        counts.append((float(t), int(((starts < t + bucket_seconds)
                                      & (ends > t)).sum())))
    return counts


def stragglers(records: Sequence[JobRecord],
               k: int = 5) -> List[JobRecord]:
    """The ``k`` records that finished last (tail diagnosis)."""
    return sorted(records, key=lambda r: r.end_time)[-k:]
