"""Analytics over workflow runs (utilization, speedup, critical path)."""

from .metrics import (
    UtilizationReport,
    critical_path_seconds,
    makespan_lower_bound,
    parallel_efficiency,
    phase_timeline,
    speedup_curve,
    stragglers,
    utilization,
)

__all__ = [
    "UtilizationReport",
    "critical_path_seconds",
    "makespan_lower_bound",
    "parallel_efficiency",
    "phase_timeline",
    "speedup_curve",
    "stragglers",
    "utilization",
]
