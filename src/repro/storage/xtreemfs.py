"""XtreemFS: the wide-area file system the paper abandoned (§IV).

The paper ran a few experiments with XtreemFS, "a file system designed
for wide-area networks", and terminated them after the workflows took
more than twice as long as on any other system.  We model it as a
remote object-based file system whose WAN-oriented protocol stack
imposes high per-operation latency and modest per-stream throughput —
enough to reproduce the ">2x slower" observation, which is all the
paper reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from .base import StorageSystem
from .files import FileMetadata

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.ec2 import EC2Cloud
    from ..cloud.network import Endpoint
    from ..cloud.node import VMInstance

MB = 1_000_000


class XtreemFSStorage(StorageSystem):
    """Object-based WAN file system (directory + metadata + OSD services)."""

    name = "xtreemfs"
    mode = "posix"
    min_nodes = 1
    #: Object-based client with WAN consistency checks; treat as
    #: uncached (pessimistic, but this is the system the paper
    #: abandoned after partial runs).
    uses_page_cache = False

    #: Per-operation overhead: MRC metadata round trips over the
    #: WAN-tuned stack.
    OP_LATENCY = 0.055
    #: Single-stream OSD throughput.
    PER_STREAM_BW = 9 * MB
    #: Aggregate OSD front-end bandwidth.
    SERVICE_BW = 120 * MB

    def __init__(self, env, cloud: "EC2Cloud", trace=None) -> None:
        super().__init__(env, trace=trace)
        self.cloud = cloud
        self.endpoint: "Endpoint" = cloud.attach_service(
            "xtreemfs", self.SERVICE_BW)

    def read(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        self._count_read(meta, remote=True)
        yield self.env.timeout(self.OP_LATENCY)
        yield from self.cloud.network.transfer(
            self.endpoint, node.nic, meta.size, max_rate=self.PER_STREAM_BW)

    def write(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        self._count_write(meta, remote=True)
        yield self.env.timeout(self.OP_LATENCY)
        yield from self.cloud.network.transfer(
            node.nic, self.endpoint, meta.size, max_rate=self.PER_STREAM_BW)
