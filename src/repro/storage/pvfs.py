"""PVFS: striped parallel file system over the worker nodes (§IV.D).

The paper runs PVFS 2.6.3 (the 2.8 series crashed on EC2) with every
node acting as both I/O server and client, and metadata distributed
across all nodes.  Two properties of that deployment drive the results:

* **striping** — file data is striped across *all* nodes, so every
  read/write of any size touches every server: great aggregate
  bandwidth for large files, pure overhead for the workloads' small
  (1–10 MB) files;
* **expensive file creation** — creating a file contacts every I/O
  server to allocate datafile handles, and 2.6.3 lacks the small-file
  optimizations of later releases.  With tens of thousands of small
  files (Montage ~29 k) the per-file cost dominates, and it *grows*
  with node count.

There is no client-side data cache (reads always hit the servers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List

from ..simcore.pipes import FairShareChannel
from .base import StorageSystem
from .files import FileMetadata

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance


class PVFSStorage(StorageSystem):
    """All-peer striped PVFS volume."""

    name = "pvfs"
    mode = "posix"
    min_nodes = 2
    #: The 2.6.3 kernel client bypasses the page cache (direct-style
    #: I/O): every access hits the servers.
    uses_page_cache = False

    #: Stripe unit (PVFS default 64 KB; whole-file ops below model it
    #: only through the per-server split, which is what matters here).
    STRIPE_SIZE = 65536.0
    #: File create: handle allocation on every I/O server (2.6.3,
    #: no small-file optimizations) — base plus per-server cost.
    CREATE_BASE_LATENCY = 0.012
    CREATE_PER_SERVER_LATENCY = 0.012
    #: Open-for-read metadata lookup.
    OPEN_LATENCY = 0.006
    #: Per-client-stream protocol throughput ceiling.  The 2.6-era
    #: kernel client moves data through fixed-size buffered requests;
    #: a single file stream tops out well below the wire rate no
    #: matter how many servers hold stripes.
    PER_STREAM_BW = 25_000_000.0

    def _on_deploy(self) -> None:
        # Metadata operations serialize through the coordination path
        # (handle allocation involves distributed agreement in 2.6.3;
        # throughput does not scale with servers — the opposite: each
        # create touches every server).
        self._meta = FairShareChannel(self.env, name="pvfs-meta")

    def _create_cost(self) -> float:
        """Metadata-service seconds to create one file."""
        return (self.CREATE_BASE_LATENCY
                + self.CREATE_PER_SERVER_LATENCY * len(self.workers))

    def _place_input(self, meta: FileMetadata) -> None:
        # Pre-staged files are striped like everything else; mark the
        # stripe extents touched so later re-reads behave.
        for w in self.workers:
            w.disk._touched.add((self.name, meta.name))

    # -- data path ----------------------------------------------------------------

    def _stripe_sizes(self, size: float) -> List[float]:
        """Bytes each server handles for a file of ``size``."""
        n = len(self.workers)
        if size <= self.STRIPE_SIZE:
            # A small file lands entirely on one server.
            return [size] + [0.0] * (n - 1)
        return [size / n] * n

    def read(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        self._count_read(meta, remote=True)
        yield self._meta.submit(self.OPEN_LATENCY)
        # Stripe transfers run in parallel, but the client stream can
        # drain them no faster than its protocol ceiling.
        yield self.env.all_of([
            self.env.process(self._stripe_read(server, node, part),
                             name=f"pvfs-r:{meta.name}")
            for server, part in zip(self.workers, self._stripe_sizes(meta.size))
            if part > 0
        ] + [self.env.timeout(meta.size / self.PER_STREAM_BW)])

    def write(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        self._count_write(meta, remote=True)
        # File creation: contact every server for handle allocation,
        # serialized through the metadata coordination path.
        yield self._meta.submit(self._create_cost())
        yield self.env.all_of([
            self.env.process(self._stripe_write(server, node, meta, part),
                             name=f"pvfs-w:{meta.name}")
            for server, part in zip(self.workers, self._stripe_sizes(meta.size))
            if part > 0
        ] + [self.env.timeout(meta.size / self.PER_STREAM_BW)])

    # -- helpers -------------------------------------------------------------------

    def _stripe_read(self, server: "VMInstance", client: "VMInstance",
                     nbytes: float) -> Generator:
        if server is not client:
            # Server disk and wire pipeline; both must finish.
            disk_ev = self.env.process(self._disk_read(server, nbytes))
            net_ev = self.env.process(self._net(server, client, nbytes))
            yield disk_ev & net_ev
        else:
            yield from server.disk.read(nbytes)

    def _stripe_write(self, server: "VMInstance", client: "VMInstance",
                      meta: FileMetadata, nbytes: float) -> Generator:
        if server is not client:
            net_ev = self.env.process(self._net(client, server, nbytes))
            disk_ev = self.env.process(self._disk_write(server, meta, nbytes))
            yield net_ev & disk_ev
        else:
            yield from server.disk.write((self.name, meta.name), nbytes)

    def _disk_read(self, server: "VMInstance", nbytes: float) -> Generator:
        yield from server.disk.read(nbytes)

    def _disk_write(self, server: "VMInstance", meta: FileMetadata,
                    nbytes: float) -> Generator:
        yield from server.disk.write((self.name, meta.name), nbytes)

    def _net(self, src: "VMInstance", dst: "VMInstance", nbytes: float) -> Generator:
        yield from src.network.transfer(src.nic, dst.nic, nbytes)
