"""NFS: a central file server on a dedicated node (paper §IV.B).

The paper provisions a dedicated ``m1.xlarge`` NFS server (chosen for
its 16 GB of RAM — "which facilitates good cache performance"), mounts
with the ``async`` export option so calls return before data reaches
disk, and disables atime updates.

The model captures the three effects the paper attributes NFS's
behaviour to:

* **async write-back** — client writes complete after the network
  transfer into the server's page cache; a background flusher drains
  dirty data to the server disk.  A dirty-quota container provides the
  kernel's write-back throttling (clients stall if they outrun the
  disk for too long);
* **server page cache** — recently written/read files are served from
  RAM, skipping the server disk (this is why NFS can beat the local
  ephemeral disk for Montage on one node: writes land in remote RAM at
  wire speed instead of paying the local first-write penalty);
* **central-server contention** — every byte crosses the single
  server NIC and every miss hits the single server disk, so adding
  clients degrades per-client service (Broadband's 2→4 node NFS
  regression).
"""

from __future__ import annotations

from collections import OrderedDict
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from ..simcore.errors import Interrupt
from ..simcore.pipes import FairShareChannel
from ..simcore.resources import Container, Store
from .base import StorageSystem
from .files import FileMetadata
from .pagecache import HIT_LATENCY as PC_HIT_LATENCY

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance


class NFSStorage(StorageSystem):
    """Central NFS server with async write-back and page cache."""

    name = "nfs"
    mode = "posix"
    min_nodes = 1

    #: Client-observed per-operation RPC overhead (open+getattr+read
    #: pipeline with attribute caching and noatime).
    READ_LATENCY = 0.0020
    WRITE_LATENCY = 0.0025
    #: Fraction of server RAM usable as page cache.
    CACHE_FRACTION = 0.80
    #: Fraction of the page cache allowed to hold dirty (unflushed)
    #: data before writers are throttled (Linux dirty_ratio analog).
    DIRTY_FRACTION = 0.40
    #: Server RPC/data-pump capacity per server core, bytes/s.  Every
    #: byte served costs nfsd CPU and protocol work regardless of
    #: whether the page cache held it; this path — not the NIC — is
    #: what saturates a 2010-era NFS server, and it degrades further
    #: as more concurrent client streams interleave (seeky request
    #: patterns, thread thrash).  This is the mechanism behind the
    #: paper's observation that NFS "performed surprisingly well in
    #: cases where there were either few clients, or when the I/O
    #: requirements of the application were low" — and behind
    #: Broadband's 2->4 node regression.
    RPC_BW_PER_CORE = 50_000_000.0
    #: nfsd scales poorly past a few cores (one NIC, lock contention):
    #: extra cores beyond 4 contribute only a quarter of their share.
    RPC_CORE_SCALING_KNEE = 4
    RPC_EXTRA_CORE_FRACTION = 0.25
    RPC_CONTENTION_BETA = 0.012
    RPC_CONTENTION_GAMMA = 2.0
    RPC_MIN_EFFICIENCY = 0.18

    def __init__(self, env, server: "VMInstance", trace=None) -> None:
        super().__init__(env, trace=trace)
        self.server = server
        self._rpc = FairShareChannel(
            env, name="nfsd",
            contention_beta=self.RPC_CONTENTION_BETA,
            contention_gamma=self.RPC_CONTENTION_GAMMA,
            min_efficiency=self.RPC_MIN_EFFICIENCY)
        cores = server.itype.cores
        effective = (min(cores, self.RPC_CORE_SCALING_KNEE)
                     + self.RPC_EXTRA_CORE_FRACTION
                     * max(0, cores - self.RPC_CORE_SCALING_KNEE))
        self._rpc_bw = self.RPC_BW_PER_CORE * effective
        self.cache_capacity = server.itype.memory_bytes * self.CACHE_FRACTION
        self._cache: "OrderedDict[str, float]" = OrderedDict()
        self._cache_bytes = 0.0
        self._dirty: set = set()
        # Eviction bookkeeping: every touch (insert / LRU re-position)
        # assigns the entry a fresh monotonic stamp, so stamp order ==
        # OrderedDict order.  Clean entries additionally sit in a
        # min-heap of (stamp, name); :meth:`_evict` pops the heap
        # instead of scanning the whole cache, discarding entries whose
        # stamp no longer matches (lazy invalidation).  Dirty entries
        # enter the heap only when their flush completes.
        self._stamp: Dict[str, int] = {}
        self._stamp_counter = 0
        self._clean_heap: List[Tuple[int, str]] = []
        self._dirty_quota = Container(
            env, capacity=max(self.cache_capacity * self.DIRTY_FRACTION, 1.0),
            init=max(self.cache_capacity * self.DIRTY_FRACTION, 1.0))
        #: Flush bookkeeping for tests.
        self.flushes_completed = 0
        # Write-back is drained by a single flusher daemon (pdflush):
        # it batches dirty files into one sequential disk stream, so
        # background flushing does not seek-thrash the server array
        # the way many concurrent direct writers would.
        self._flush_queue = Store(env)
        self._flusher_started = False

    # -- placement -----------------------------------------------------------

    def _place_input(self, meta: FileMetadata) -> None:
        # Pre-staged inputs live on the server disk, cold (staged long
        # before the run; the page cache does not survive in our
        # conservative model).
        self.server.disk._touched.add(("nfs", meta.name))

    # -- cache helpers ---------------------------------------------------------

    def _touch(self, name: str) -> None:
        """Re-stamp ``name`` as most recently used (clean ⇒ re-heaped)."""
        stamp = self._stamp_counter + 1
        self._stamp_counter = stamp
        self._stamp[name] = stamp
        if name not in self._dirty:
            heappush(self._clean_heap, (stamp, name))

    def _cache_has(self, name: str) -> bool:
        if name in self._cache:
            self._cache.move_to_end(name)
            self._touch(name)
            return True
        return False

    def _cache_insert(self, name: str, size: float, dirty: bool) -> None:
        if name in self._cache:
            # Re-writes of a cached name only refresh recency; an
            # already-clean entry is *not* re-dirtied (the flusher saw
            # the data once, and the model charges one flush per name).
            self._cache.move_to_end(name)
            self._touch(name)
            return
        self._cache[name] = size
        self._cache_bytes += size
        if dirty:
            self._dirty.add(name)
        self._touch(name)
        self._evict()

    def _evict(self) -> None:
        # Drop clean LRU entries until the cache fits.  Dirty entries
        # are pinned until their flush completes.  Candidates come from
        # the clean-stamp heap (stamp order == LRU order), so eviction
        # is O(log n) per dropped entry instead of an O(n) scan of the
        # whole cache per insert; stale heap entries — name gone,
        # re-stamped since, or dirtied meanwhile — are skipped.
        if self._cache_bytes <= self.cache_capacity:
            return
        cache = self._cache
        stamps = self._stamp
        heap = self._clean_heap
        dirty = self._dirty
        while self._cache_bytes > self.cache_capacity and heap:
            stamp, name = heappop(heap)
            if stamps.get(name) != stamp or name in dirty:
                continue
            self._cache_bytes -= cache.pop(name)
            del stamps[name]
        # Compact once the heap is dominated by stale entries so it
        # cannot grow without bound across a long run.
        if len(heap) > 4 * len(cache) + 64:
            live = [(s, n) for (s, n) in heap
                    if stamps.get(n) == s and n not in dirty]
            heapify(live)
            self._clean_heap = live

    @property
    def cached_bytes(self) -> float:
        """Bytes currently held in the server page cache."""
        return self._cache_bytes

    # -- telemetry ------------------------------------------------------------

    def telemetry_probes(self, clock):
        """Server-side load signals.

        ``nfs.rpc_util`` is the one that exposes the Broadband 2->4
        node collapse: delivered nfsd service seconds per second
        (0..1), pinned near 1.0 once the server saturates.
        """
        from ..telemetry.sampler import RateProbe
        quota = self._dirty_quota
        return [
            ("nfs.rpc_queue", lambda: float(self._rpc.active_ops)),
            ("nfs.rpc_util", RateProbe(
                self._rpc.current_work_done, clock)),
            ("nfs.dirty_bytes", lambda: quota.capacity - quota.level),
            ("nfs.cached_bytes", lambda: self._cache_bytes),
            ("nfs.disk_queue", lambda: float(self.server.disk.active_ops)),
        ]

    # -- data path ----------------------------------------------------------------

    def _op_needs_service(self, op, node, meta):
        # A client page-cache hit never talks to the server (close-to-
        # open revalidation is skipped for write-once data), so it
        # survives a server outage; everything else is an RPC.
        if op == "read" and self._page_cache_hit(node, meta):
            return False
        return True

    def read(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        if self._page_cache_hit(node, meta):
            # Client page cache: close-to-open revalidation succeeds
            # (write-once data), no server involvement.
            self._count_read(meta, remote=False)
            self.stats.cache_hits += 1
            yield self.env.timeout(PC_HIT_LATENCY)
            return
        yield self.env.timeout(self.READ_LATENCY)
        hit = self._cache_has(meta.name)
        self._count_read(meta, remote=True)
        # The nfsd service path, the wire, and (on a page-cache miss)
        # the server disk pipeline; the slowest stage dominates.
        stages = [
            self.env.process(self._rpc_work(meta.size), name="nfs-rpc"),
            self.env.process(self._net(self.server, node, meta.size),
                             name="nfs-net"),
        ]
        if hit:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
            stages.append(self.env.process(
                self._server_disk_read(meta.size), name="nfs-disk"))
        yield self.env.all_of(stages)
        if not hit:
            self._cache_insert(meta.name, meta.size, dirty=False)
        self._page_cache_insert(node, meta)

    def write(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        yield self.env.timeout(self.WRITE_LATENCY)
        self._count_write(meta, remote=True)
        # Write-back throttling: claim dirty quota before transferring.
        # The quota is *shared server state*: if this client's node is
        # crashed mid-write (Interrupt), the claim must be unwound or
        # every surviving writer eventually wedges on a leaked quota.
        claim = min(meta.size, self._dirty_quota.capacity)
        quota_get = self._dirty_quota.get(claim)
        try:
            yield quota_get
            yield self.env.all_of([
                self.env.process(self._rpc_work(meta.size), name="nfs-rpc"),
                self.env.process(self._net(node, self.server, meta.size),
                                 name="nfs-net"),
            ])
        except Interrupt:
            if quota_get.triggered:
                self._dirty_quota.put(claim)
            else:
                self._dirty_quota.cancel_get(quota_get)
            raise
        # Data is now in the server page cache; client write completes.
        self._cache_insert(meta.name, meta.size, dirty=True)
        # The writer's own pages stay resident client-side as well.
        self._page_cache_insert(node, meta)
        if not self._flusher_started:
            self._flusher_started = True
            self.env.process(self._flusher(), name="nfs-flusher")
        self._flush_queue.put(meta)

    def _rpc_work(self, nbytes: float) -> Generator:
        """Consume nfsd service capacity for ``nbytes`` of payload."""
        yield self._rpc.submit(nbytes / self._rpc_bw)

    def _net(self, src: "VMInstance", dst: "VMInstance",
             nbytes: float) -> Generator:
        yield from self.server.network.transfer(src.nic, dst.nic, nbytes)

    def _server_disk_read(self, nbytes: float) -> Generator:
        yield from self.server.disk.read(nbytes)

    def _flusher(self) -> Generator:
        """The write-back daemon: drains dirty files to the server
        disk one batch at a time (a single sequential stream)."""
        while True:
            meta = yield self._flush_queue.get()
            yield from self.server.disk.write(("nfs", meta.name), meta.size)
            if meta.name in self._dirty:
                self._dirty.discard(meta.name)
                # Now clean at its current recency: becomes evictable.
                stamp = self._stamp.get(meta.name)
                if stamp is not None:
                    heappush(self._clean_heap, (stamp, meta.name))
            yield self._dirty_quota.put(
                min(meta.size, self._dirty_quota.capacity))
            self.flushes_completed += 1
            self._evict()
