"""Direct node-to-node transfers: the paper's future-work mode (§VIII).

    "In this work we only considered workflow environments in which a
    shared storage system was used to communicate data between workflow
    tasks.  In the future we plan to investigate configurations in
    which files can be transferred directly from one computational node
    to another."

This module implements that configuration so the repository can answer
the question the paper poses.  The workflow system tracks where every
file was produced; a consumer task pulls each missing input straight
from the producer's node into its local disk cache (one hop, no
central service, no translator stack), and outputs simply stay where
they were written.  Like the S3 client cache, correctness rests on the
workloads' write-once discipline; unlike S3, there is no object-store
round-trip, no request fees, and reads of co-located data are purely
local.

``benchmarks/bench_p2p_future_work.py`` compares it against the
paper's best systems.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Set, Tuple

from ..simcore.events import Event
from .base import StorageSystem
from .files import FileMetadata
from .pagecache import HIT_LATENCY as PC_HIT_LATENCY

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance


class DirectTransferStorage(StorageSystem):
    """WMS-managed peer-to-peer data movement with per-node caching."""

    name = "p2p"
    mode = "posix"
    min_nodes = 1

    #: Registry lookup + connection setup per remote pull.
    PULL_LATENCY = 0.004

    def __init__(self, env, trace=None) -> None:
        super().__init__(env, trace=trace)
        #: file name -> node names holding a replica.
        self._replicas: Dict[str, Set[str]] = {}
        #: producing node of each file (for diagnostics).
        self._producer: Dict[str, str] = {}
        self._inflight: Dict[Tuple[str, str], Event] = {}
        self._stage_counter = 0

    def _on_deploy(self) -> None:
        self._by_name = {w.name: w for w in self.workers}

    def _place_input(self, meta: FileMetadata) -> None:
        # Inputs are staged round-robin, as with GlusterFS NUFA.
        owner = self.workers[self._stage_counter % len(self.workers)]
        self._stage_counter += 1
        self._replicas[meta.name] = {owner.name}
        self._producer[meta.name] = owner.name
        owner.disk._touched.add((self.name, meta.name))

    # -- introspection -----------------------------------------------------

    def replicas_of(self, name: str) -> Set[str]:
        """Node names holding ``name``."""
        return set(self._replicas.get(name, ()))

    def cached_on(self, node: "VMInstance") -> Set[str]:
        """Names resident on ``node`` (for the locality scheduler)."""
        return {name for name, nodes in self._replicas.items()
                if node.name in nodes}

    # -- data path ----------------------------------------------------------------

    def read(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        local = node.name in self._replicas.get(meta.name, ())
        self._count_read(meta, remote=not local)
        if local:
            if self._page_cache_hit(node, meta):
                self.stats.cache_hits += 1
                yield self.env.timeout(PC_HIT_LATENCY)
                return
            yield from node.disk.read(meta.size)
            self._page_cache_insert(node, meta)
            return
        self.stats.cache_misses += 1
        yield from self._pull(node, meta)
        # The landed replica is hot; the program reads it from RAM.
        if self._page_cache_hit(node, meta):
            yield self.env.timeout(PC_HIT_LATENCY)
        else:
            yield from node.disk.read(meta.size)
            self._page_cache_insert(node, meta)

    def write(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        self._count_write(meta, remote=False)
        yield from node.disk.write((self.name, meta.name), meta.size)
        self._page_cache_insert(node, meta)
        self._replicas.setdefault(meta.name, set()).add(node.name)
        self._producer.setdefault(meta.name, node.name)

    # -- helpers -------------------------------------------------------------------

    def _pull(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        """Fetch a replica from a peer, deduplicating concurrent pulls."""
        key = (node.name, meta.name)
        pending = self._inflight.get(key)
        if pending is not None:
            yield pending
            return
        holders = self._replicas.get(meta.name)
        if not holders:
            raise FileNotFoundError(f"no replica of {meta.name!r}")
        done = Event(self.env)
        self._inflight[key] = done
        try:
            yield self.env.timeout(self.PULL_LATENCY)
            # Pull from the least-loaded holder's NIC (ties broken by
            # name so runs are reproducible across processes).
            source = min((self._by_name[h] for h in sorted(holders)),
                         key=lambda w: w.nic.tx.active_flows)
            stages = [self.env.process(
                self._net(source, node, meta.size), name="p2p-net")]
            # The source serves from its page cache when hot.
            src_pc = self._page_caches[source.name]
            if not src_pc.lookup(meta.name):
                stages.append(self.env.process(
                    self._src_disk(source, meta.size), name="p2p-disk"))
                src_pc.insert(meta.name, meta.size)
            # Landing write on the consumer.
            stages.append(self.env.process(
                self._dst_disk(node, meta), name="p2p-land"))
            yield self.env.all_of(stages)
            self._replicas[meta.name].add(node.name)
            self._page_cache_insert(node, meta)
        finally:
            del self._inflight[key]
            done.succeed()

    def _net(self, src: "VMInstance", dst: "VMInstance",
             nbytes: float) -> Generator:
        yield from src.network.transfer(src.nic, dst.nic, nbytes)

    def _src_disk(self, src: "VMInstance", nbytes: float) -> Generator:
        yield from src.disk.read(nbytes)

    def _dst_disk(self, dst: "VMInstance", meta: FileMetadata) -> Generator:
        yield from dst.disk.write((self.name, meta.name), meta.size)
