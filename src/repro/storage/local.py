"""Local-disk "storage system": the single-node baseline.

The paper reports a *Local* point in every figure: the workflow run on
one 8-core node using the RAID0 ephemeral array directly, with no
network file system at all.  It is only defined for one node, since
tasks on different nodes could not see each other's files.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from .base import StorageSystem
from .files import FileMetadata
from .pagecache import HIT_LATENCY as PC_HIT_LATENCY

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance


class LocalDiskStorage(StorageSystem):
    """All data on the node's own RAID0 ephemeral array."""

    name = "local"
    mode = "posix"
    min_nodes = 1
    max_nodes = 1

    #: Per-operation VFS overhead (local open/close path).
    OP_LATENCY = 0.0002

    def _op_needs_service(self, op, node, meta):
        # Purely node-local: there is no shared service to be down.
        return False

    def read(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        self._count_read(meta, remote=False)
        if self._page_cache_hit(node, meta):
            self.stats.cache_hits += 1
            yield self.env.timeout(PC_HIT_LATENCY)
            return
        self.stats.cache_misses += 1
        yield self.env.timeout(self.OP_LATENCY)
        yield from node.disk.read(meta.size)
        self._page_cache_insert(node, meta)

    def write(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        self._count_write(meta, remote=False)
        yield self.env.timeout(self.OP_LATENCY)
        yield from node.disk.write(("local", meta.name), meta.size)
        # Freshly written pages stay resident (write-back cache).
        self._page_cache_insert(node, meta)
