"""GlusterFS in the two configurations the paper deploys (§IV.C).

GlusterFS composes *translators* into a file system.  The paper uses
two all-peer configurations (every node is both client and server,
exporting its local RAID0 volume):

``NUFA`` (non-uniform file access)
    All writes to **new** files go to the local disk; reads go to
    whichever node created the file.  Because the workloads are
    write-once, every write is local.  This gives Broadband's chained
    "mini workflow" transformations good locality: each stage's outputs
    are produced where the next stage *may* run.

``distribute``
    Files are placed by filename hash, spreading reads *and* writes
    uniformly across the cluster; a write is remote with probability
    (n-1)/n.

The model is the translator decision ("who owns this file?") plus the
physical path it implies: local disk access, or a peer transfer plus
the peer's disk.  A small per-operation latency covers the FUSE +
lookup overhead (larger when the owning node is remote).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, Generator

from .base import StorageSystem
from .files import FileMetadata
from .pagecache import HIT_LATENCY as PC_HIT_LATENCY

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance


class GlusterFSStorage(StorageSystem):
    """Peer-to-peer GlusterFS volume over all worker nodes."""

    mode = "posix"
    min_nodes = 2

    #: FUSE + translator stack overhead for an operation served locally.
    LOCAL_OP_LATENCY = 0.0012
    #: Lookup + network round-trip overhead for a remote-owner operation.
    REMOTE_OP_LATENCY = 0.0030

    def __init__(self, env, layout: str = "nufa", trace=None) -> None:
        super().__init__(env, trace=trace)
        if layout not in ("nufa", "distribute"):
            raise ValueError(f"layout must be 'nufa' or 'distribute', got {layout!r}")
        self.layout = layout
        self.name = f"glusterfs-{layout}"
        #: file name -> owning worker (which holds the one replica).
        self._owner: Dict[str, "VMInstance"] = {}
        self._stage_counter = 0

    # -- placement -----------------------------------------------------------

    def _hash_owner(self, name: str) -> "VMInstance":
        return self.workers[zlib.crc32(name.encode()) % len(self.workers)]

    def _place_input(self, meta: FileMetadata) -> None:
        if self.layout == "distribute":
            owner = self._hash_owner(meta.name)
        else:
            # NUFA: inputs are staged through the shared mount; the
            # stage-in process writes from each node in turn
            # (round-robin), spreading the input set.
            owner = self.workers[self._stage_counter % len(self.workers)]
            self._stage_counter += 1
        self._owner[meta.name] = owner
        owner.disk._touched.add((self.name, meta.name))

    def owner_of(self, name: str) -> "VMInstance":
        """The worker holding the file's replica."""
        return self._owner[name]

    # -- data path ----------------------------------------------------------------

    def _op_needs_service(self, op, node, meta):
        # Operations served entirely by the node's own brick or page
        # cache never cross the wire; only remote-owner traffic sees
        # cluster-interconnect outages.  Mirrors the owner decision the
        # data path will make, without mutating the placement map.
        if op == "read":
            if self._page_cache_hit(node, meta):
                return False
            return self._owner.get(meta.name) is not node
        if self.layout == "nufa":
            return False  # new writes always land on the local brick
        return self._hash_owner(meta.name) is not node

    def read(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        if self._page_cache_hit(node, meta):
            self._count_read(meta, remote=False)
            self.stats.cache_hits += 1
            yield self.env.timeout(PC_HIT_LATENCY)
            return
        self.stats.cache_misses += 1
        owner = self._owner[meta.name]
        remote = owner is not node
        self._count_read(meta, remote=remote)
        yield self.env.timeout(
            self.REMOTE_OP_LATENCY if remote else self.LOCAL_OP_LATENCY)
        if remote:
            # The owner's brick is an ordinary file on the owner's
            # local file system, so a hot file is served from the
            # owner's kernel page cache — only the wire is paid.
            owner_pc = self._page_caches[owner.name]
            if owner_pc.lookup(meta.name):
                yield from self._peer_transfer(owner, node, meta.size)
            else:
                # Cold: the owner reads its disk and streams to the
                # client; disk and wire pipeline, the slower dominates.
                disk_ev = self.env.process(
                    self._owner_disk_read(owner, meta.size),
                    name=f"gluster-read:{meta.name}")
                net_ev = self.env.process(
                    self._peer_transfer(owner, node, meta.size),
                    name=f"gluster-net:{meta.name}")
                yield disk_ev & net_ev
                owner_pc.insert(meta.name, meta.size)
        else:
            yield from node.disk.read(meta.size)
        self._page_cache_insert(node, meta)

    def write(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        self._require_deployed()
        if self.layout == "nufa":
            owner = node  # writes to new files always go local
        else:
            owner = self._hash_owner(meta.name)
        self._owner[meta.name] = owner
        remote = owner is not node
        self._count_write(meta, remote=remote)
        yield self.env.timeout(
            self.REMOTE_OP_LATENCY if remote else self.LOCAL_OP_LATENCY)
        if remote:
            net_ev = self.env.process(
                self._peer_transfer(node, owner, meta.size),
                name=f"gluster-wnet:{meta.name}")
            disk_ev = self.env.process(
                self._owner_disk_write(owner, meta),
                name=f"gluster-wdisk:{meta.name}")
            yield net_ev & disk_ev
            # The landed file is hot in the owner's page cache too.
            self._page_caches[owner.name].insert(meta.name, meta.size)
        else:
            yield from node.disk.write((self.name, meta.name), meta.size)
        self._page_cache_insert(node, meta)

    # -- helpers -------------------------------------------------------------------

    def _owner_disk_read(self, owner: "VMInstance", nbytes: float) -> Generator:
        yield from owner.disk.read(nbytes)

    def _owner_disk_write(self, owner: "VMInstance", meta: FileMetadata) -> Generator:
        yield from owner.disk.write((self.name, meta.name), meta.size)

    def _peer_transfer(self, src: "VMInstance", dst: "VMInstance",
                       nbytes: float) -> Generator:
        yield from src.network.transfer(src.nic, dst.nic, nbytes)
