"""Logical file namespace shared by workflow tasks.

The paper's workloads obey a strict discipline that the storage systems
exploit (S3 whole-file caching is *only* correct because of it):

* every file is written exactly once, sequentially, by one task;
* no file is ever updated after creation;
* no file is read while being written;
* files may be read concurrently by many tasks.

:class:`Namespace` tracks each logical file's lifecycle and *enforces*
these rules at simulation time — any storage-layer or scheduler bug that
would violate them fails loudly instead of silently producing
meaningless timings.  Property-based tests assert the invariants hold
across random workloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional


class FileState(enum.Enum):
    """Lifecycle of a logical file."""

    #: Declared in the workflow but not yet produced.
    PENDING = "pending"
    #: Currently being written by its producer task.
    WRITING = "writing"
    #: Fully written (or pre-staged); may be read.
    AVAILABLE = "available"


class WriteOnceViolation(RuntimeError):
    """The write-once / no-concurrent-read-write discipline was broken."""


@dataclass(frozen=True)
class FileMetadata:
    """Immutable description of a logical workflow file."""

    name: str
    size: float  # bytes

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("file name must be non-empty")
        if self.size < 0:
            raise ValueError(f"file size must be >= 0, got {self.size}")


class Namespace:
    """The global logical namespace of one workflow execution."""

    def __init__(self) -> None:
        self._files: Dict[str, FileMetadata] = {}
        self._state: Dict[str, FileState] = {}
        self._readers: Dict[str, int] = {}

    # -- declaration ---------------------------------------------------------

    def declare(self, meta: FileMetadata,
                available: bool = False) -> FileMetadata:
        """Register a logical file.

        ``available=True`` marks pre-staged input data (already present
        in the storage system before the workflow starts).  Declaring
        the same name twice with identical metadata is a no-op;
        conflicting metadata is an error.
        """
        existing = self._files.get(meta.name)
        if existing is not None:
            if existing != meta:
                raise WriteOnceViolation(
                    f"file {meta.name!r} re-declared with different metadata")
            if available and self._state[meta.name] is FileState.PENDING:
                self._state[meta.name] = FileState.AVAILABLE
            return existing
        self._files[meta.name] = meta
        self._state[meta.name] = (
            FileState.AVAILABLE if available else FileState.PENDING)
        self._readers[meta.name] = 0
        return meta

    def lookup(self, name: str) -> FileMetadata:
        """Metadata for ``name`` (KeyError if undeclared)."""
        return self._files[name]

    def state(self, name: str) -> FileState:
        """Current lifecycle state of ``name``."""
        return self._state[name]

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def __iter__(self) -> Iterator[FileMetadata]:
        return iter(self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    # -- write-once enforcement -------------------------------------------------

    def begin_write(self, name: str) -> None:
        """Producer starts writing ``name``."""
        state = self._state.get(name)
        if state is None:
            raise KeyError(f"file {name!r} not declared")
        if state is not FileState.PENDING:
            raise WriteOnceViolation(
                f"file {name!r} written more than once (state={state.value})")
        if self._readers[name] > 0:  # pragma: no cover - PENDING can't be read
            raise WriteOnceViolation(f"file {name!r} written while being read")
        self._state[name] = FileState.WRITING

    def end_write(self, name: str) -> None:
        """Producer finished writing ``name``; it becomes readable."""
        if self._state.get(name) is not FileState.WRITING:
            raise WriteOnceViolation(
                f"end_write({name!r}) without matching begin_write")
        self._state[name] = FileState.AVAILABLE

    def abort_write(self, name: str) -> None:
        """Producer died mid-write; the file returns to PENDING.

        A crashed attempt never published partial data (the paper's
        workloads write whole files), so a retry may write it afresh
        without violating the write-once discipline.
        """
        if self._state.get(name) is not FileState.WRITING:
            raise WriteOnceViolation(
                f"abort_write({name!r}) without matching begin_write")
        self._state[name] = FileState.PENDING

    def begin_read(self, name: str) -> None:
        """Consumer starts reading ``name``."""
        state = self._state.get(name)
        if state is None:
            raise KeyError(f"file {name!r} not declared")
        if state is not FileState.AVAILABLE:
            raise WriteOnceViolation(
                f"file {name!r} read in state {state.value}")
        self._readers[name] += 1

    def end_read(self, name: str) -> None:
        """Consumer finished reading ``name``."""
        if self._readers.get(name, 0) <= 0:
            raise WriteOnceViolation(
                f"end_read({name!r}) without matching begin_read")
        self._readers[name] -= 1

    # -- aggregate views ---------------------------------------------------------

    def total_bytes(self, state: Optional[FileState] = None) -> float:
        """Total declared bytes, optionally restricted to one state."""
        return sum(m.size for m in self._files.values()
                   if state is None or self._state[m.name] is state)
