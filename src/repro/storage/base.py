"""The common storage-system interface.

Each of the paper's data-sharing options implements this interface.
The executor interacts with storage in exactly two ways:

* :meth:`StorageSystem.read` — make a file's bytes flow to a program
  running on a node (through whatever path the system implies:
  local disk, central server, peer node, stripes, or object store);
* :meth:`StorageSystem.write` — persist a program's freshly produced
  file from a node.

Both are generators driven with ``yield from`` inside the executing
task's process, so all contention (disks, NICs, server queues) is
shared with everything else happening on the cluster.

Systems advertise an access ``mode``:

``"posix"``
    Mountable file system; programs read/write it directly
    (NFS, GlusterFS, PVFS, XtreemFS, local disk).
``"object"``
    No POSIX interface; the workflow system must wrap each job with
    stage-in (GET) and stage-out (PUT) steps through the local disk
    (Amazon S3).  See §IV.A of the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional, Tuple

from ..faults.spec import StorageUnavailableError
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from .files import FileMetadata, Namespace

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance
    from ..faults.injector import StorageFaultState
    from ..simcore.engine import Environment
    from ..telemetry.spans import SpanBuilder


@dataclass
class StorageStats:
    """Aggregate operation counters, filled in by every implementation."""

    reads: int = 0
    writes: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    remote_reads: int = 0
    remote_writes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: S3-specific request counters (drive the fee model).
    get_requests: int = 0
    put_requests: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for result tables."""
        return dict(self.__dict__)


class StorageSystem(abc.ABC):
    """Abstract data-sharing option."""

    #: Human-readable system name, e.g. ``"glusterfs-nufa"``.
    name: str = "abstract"
    #: ``"posix"`` or ``"object"`` (see module docstring).
    mode: str = "posix"
    #: Minimum worker count for a valid deployment (GlusterFS and PVFS
    #: need at least two nodes to construct a file system, §V).
    min_nodes: int = 1
    #: Maximum worker count (local disk works only on a single node).
    max_nodes: Optional[int] = None
    #: Whether programs read this file system through the Linux page
    #: cache (False for PVFS 2.6.3's direct-style client and for S3,
    #: whose caching client already keeps whole files on local disk).
    uses_page_cache: bool = True

    def __init__(self, env: "Environment",
                 trace: Optional[TraceCollector] = None) -> None:
        self.env = env
        self.trace = trace if trace is not None else NULL_COLLECTOR
        self.stats = StorageStats()
        self.namespace = Namespace()
        self._deployed = False
        #: Fault state installed by a FaultCoordinator (None = the
        #: fault-free default; the hot path then bypasses the retry
        #: wrapper entirely, preserving bit-identical behaviour).
        self._faults: Optional["StorageFaultState"] = None

    # -- deployment --------------------------------------------------------

    def deploy(self, workers: List["VMInstance"]) -> None:
        """Wire the system to the cluster's worker nodes."""
        n = len(workers)
        if n < self.min_nodes:
            raise ValueError(
                f"{self.name} needs >= {self.min_nodes} nodes, got {n}")
        if self.max_nodes is not None and n > self.max_nodes:
            raise ValueError(
                f"{self.name} supports <= {self.max_nodes} nodes, got {n}")
        self.workers = list(workers)
        self._deployed = True
        if self.uses_page_cache:
            from .pagecache import NodePageCache
            self._page_caches = {w.name: NodePageCache(w) for w in workers}
        else:
            self._page_caches = None
        self._on_deploy()

    def _on_deploy(self) -> None:
        """Hook for subclass deployment work (placement maps, servers)."""

    def _require_deployed(self) -> None:
        if not self._deployed:
            raise RuntimeError(f"{self.name} used before deploy()")

    # -- data path -----------------------------------------------------------

    def stage_input(self, meta: FileMetadata) -> None:
        """Pre-stage an input file (before the clock starts, as in the
        paper: input transfer time is excluded from makespans)."""
        self._require_deployed()
        self.namespace.declare(meta, available=True)
        self._place_input(meta)

    def _place_input(self, meta: FileMetadata) -> None:
        """Hook: record where the pre-staged file physically lives."""

    def declare_output(self, meta: FileMetadata) -> None:
        """Declare a file the workflow will produce."""
        self._require_deployed()
        self.namespace.declare(meta, available=False)

    def restore_output(self, meta: FileMetadata) -> None:
        """Mark a previously produced output as already available.

        Used by rescue-DAG resume: outputs of jobs completed in the
        failed run are restored like pre-staged inputs, so only the
        unfinished remainder of the DAG re-executes.
        """
        self._require_deployed()
        self.namespace.declare(meta, available=True)
        self._place_input(meta)

    @abc.abstractmethod
    def read(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        """Deliver ``meta``'s bytes to a program on ``node`` (generator)."""

    @abc.abstractmethod
    def write(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        """Persist ``meta`` produced by a program on ``node`` (generator)."""

    # -- telemetry hooks ----------------------------------------------------

    def span_read(self, node: "VMInstance", meta: FileMetadata,
                  spans: "SpanBuilder") -> Generator:
        """:meth:`read` bracketed by a ``storage_op`` span.

        The executor uses this form so every storage operation appears
        in the span tree nested under the running job's read phase.
        With fault state attached, the operation runs under the retry
        policy (see :meth:`_faulty_op`).
        """
        if self._faults is not None:
            yield from self._faulty_op("read", node, meta, spans)
            return
        # Explicit begin/end (not the ``span`` context manager): this
        # brackets every storage operation, and the contextmanager
        # protocol costs more than the span itself at this call rate.
        sid = spans.begin("storage_op", f"read {meta.name}",
                          op="read", storage=self.name, node=node.name,
                          file=meta.name, nbytes=meta.size)
        try:
            yield from self.read(node, meta)
        finally:
            spans.end(sid)

    def span_write(self, node: "VMInstance", meta: FileMetadata,
                   spans: "SpanBuilder") -> Generator:
        """:meth:`write` bracketed by a ``storage_op`` span."""
        if self._faults is not None:
            yield from self._faulty_op("write", node, meta, spans)
            return
        sid = spans.begin("storage_op", f"write {meta.name}",
                          op="write", storage=self.name, node=node.name,
                          file=meta.name, nbytes=meta.size)
        try:
            yield from self.write(node, meta)
        finally:
            spans.end(sid)

    # -- fault injection ----------------------------------------------------

    def attach_faults(self, faults: "StorageFaultState") -> None:
        """Install outage/error decisions + retry policy on this system."""
        self._faults = faults

    def _op_needs_service(self, op: str, node: "VMInstance",
                          meta: FileMetadata) -> bool:
        """Whether this operation touches the shared storage service.

        Outages and transient errors only affect operations that leave
        the node; backends override this to exempt cache hits and
        node-local data (a client page-cache read survives a dead NFS
        server).  The default is conservative: everything is remote.
        """
        return True

    def _faulty_op(self, op: str, node: "VMInstance", meta: FileMetadata,
                   spans: "SpanBuilder") -> Generator:
        """One storage operation under the retry policy.

        Failures manifest *before* the backend runs (the model is an
        unreachable/erroring server, detected at RPC time), so a failed
        attempt never mutates backend state.  Each failed attempt costs
        its detection latency (RPC timeout for outages); exhausting
        ``max_retries`` raises :class:`StorageUnavailableError`.
        """
        faults = self._faults
        policy = faults.retry
        attempt = 0
        while True:
            failure = faults.roll_failure(
                op, self._op_needs_service(op, node, meta))
            if failure is None:
                with spans.span("storage_op", f"{op} {meta.name}",
                                op=op, storage=self.name, node=node.name,
                                file=meta.name, nbytes=meta.size,
                                attempt=attempt):
                    if op == "read":
                        yield from self.read(node, meta)
                    else:
                        yield from self.write(node, meta)
                if attempt > 0:
                    faults.note_recovered(op, attempt)
                return
            kind, latency = failure
            with spans.span("storage_fault", f"{op} {meta.name}",
                            op=op, storage=self.name, node=node.name,
                            file=meta.name, fault=kind, attempt=attempt):
                if latency > 0:
                    yield self.env.timeout(latency)
            faults.note_error(op, kind, meta.name)
            if attempt >= policy.max_retries:
                faults.note_giveup(op, meta.name, attempt + 1)
                raise StorageUnavailableError(
                    f"{op} {meta.name} on {self.name} from {node.name}: "
                    f"{attempt + 1} attempts failed (last: {kind})")
            delay = policy.backoff(attempt, faults.backoff_rng)
            faults.note_retry(op, delay)
            if delay > 0:
                yield self.env.timeout(delay)
            attempt += 1

    def telemetry_probes(self, clock: Callable[[], float]
                         ) -> List[Tuple[str, Callable[[], float]]]:
        """Backend-specific utilization probes for the sampler.

        Returns ``(series name, fn)`` pairs; ``clock`` supplies sim
        time for rate-style probes.  The base system has no server
        side, so the default is empty — NFS/S3 override this to expose
        their central bottlenecks (see ``docs/observability.md``).
        """
        return []

    # -- client page cache --------------------------------------------------------

    def _page_cache_hit(self, node: "VMInstance", meta: FileMetadata) -> bool:
        """Whether ``meta`` is fully resident in ``node``'s page cache."""
        if self._page_caches is None:
            return False
        return self._page_caches[node.name].lookup(meta.name)

    def _page_cache_insert(self, node: "VMInstance", meta: FileMetadata) -> None:
        """Record that ``meta``'s pages are now resident on ``node``."""
        if self._page_caches is not None:
            self._page_caches[node.name].insert(meta.name, meta.size)

    def page_cache_of(self, node: "VMInstance"):
        """The node's page cache (None when the system bypasses it)."""
        if self._page_caches is None:
            return None
        return self._page_caches[node.name]

    # -- common accounting ------------------------------------------------------

    def _count_read(self, meta: FileMetadata, remote: bool) -> None:
        self.stats.reads += 1
        self.stats.bytes_read += meta.size
        if remote:
            self.stats.remote_reads += 1
        self.trace.emit(self.env.now, "storage", "read", system=self.name,
                        file=meta.name, nbytes=meta.size, remote=remote)

    def _count_write(self, meta: FileMetadata, remote: bool) -> None:
        self.stats.writes += 1
        self.stats.bytes_written += meta.size
        if remote:
            self.stats.remote_writes += 1
        self.trace.emit(self.env.now, "storage", "write", system=self.name,
                        file=meta.name, nbytes=meta.size, remote=remote)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
