"""Amazon S3 with the paper's whole-file caching client (§IV.A).

S3 has no POSIX interface, so the paper modified Pegasus to wrap every
job with GET (inputs: S3 → local disk) and PUT (outputs: local disk →
S3) operations.  Consequences modelled here, straight from the paper:

* every file is **written twice** when produced (program → disk,
  disk → S3) and **read twice** per use (S3 → disk, disk → program);
* each request pays S3's per-request overhead, which dominates for
  workloads with many small files (Montage);
* a **whole-file client cache** (correct because the workloads are
  write-once) downloads each file to a node at most once and keeps
  locally produced outputs for reuse — this is why Broadband, which
  re-reads its input set heavily, runs *best* on S3;
* the scheduler is not cache-aware, so a job may well land on a node
  that has not cached its inputs (paper §IV.A, last paragraph).

GET/PUT request counts feed the §VI fee model ($0.01 per 1,000 PUTs,
$0.01 per 10,000 GETs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Set, Tuple

from ..simcore.events import Event
from .base import StorageSystem
from .files import FileMetadata
from .pagecache import HIT_LATENCY as PC_HIT_LATENCY

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.ec2 import EC2Cloud
    from ..cloud.network import Endpoint
    from ..cloud.node import VMInstance

MB = 1_000_000


class S3Storage(StorageSystem):
    """Object store + per-node whole-file caching client."""

    name = "s3"
    mode = "object"
    min_nodes = 1
    #: The client cache keeps whole files on the local disk, and the
    #: programs read those copies through the ordinary kernel page
    #: cache: a landing copy that was just downloaded (or an output
    #: just written) is still resident, so the paper's "double read"
    #: (S3 -> disk, disk -> program) costs a physical disk read only
    #: once the pages have been reclaimed — which is exactly what
    #: happens to Broadband's 1.1 GB velocity model under its tasks'
    #: memory pressure.
    uses_page_cache = True

    #: First-byte request overheads (2010-era S3 from inside EC2).
    GET_LATENCY = 0.070
    PUT_LATENCY = 0.130
    #: Single-connection throughput ceiling to/from S3.
    PER_STREAM_BW = 32 * MB
    #: Aggregate front-end bandwidth per direction (S3 scales well; the
    #: per-stream cap is the usual limiter at our cluster sizes).
    SERVICE_BW = 1000 * MB

    def __init__(self, env, cloud: "EC2Cloud", trace=None) -> None:
        super().__init__(env, trace=trace)
        self.cloud = cloud
        self.endpoint: "Endpoint" = cloud.attach_service("s3", self.SERVICE_BW)
        #: Objects currently stored in the bucket.
        self._bucket: Set[str] = set()
        #: Per-node whole-file cache: node name -> set of file names.
        self._cache: Dict[str, Set[str]] = {}
        #: In-flight GETs so concurrent readers on one node share one
        #: download: (node, file) -> completion event.
        self._inflight: Dict[Tuple[str, str], Event] = {}

    def _on_deploy(self) -> None:
        self._cache = {w.name: set() for w in self.workers}

    def _place_input(self, meta: FileMetadata) -> None:
        self._bucket.add(meta.name)

    # -- cache inspection ------------------------------------------------------

    def cached_on(self, node: "VMInstance") -> Set[str]:
        """Names cached on ``node`` (for the data-aware scheduler ablation)."""
        return self._cache.get(node.name, set())

    def in_bucket(self, name: str) -> bool:
        """Whether the object exists in S3."""
        return name in self._bucket

    # -- telemetry ------------------------------------------------------------

    def telemetry_probes(self, clock):
        """Front-end load: concurrent streams and throughput per
        direction (tx = GETs leaving S3, rx = PUTs arriving)."""
        tx, rx = self.endpoint.tx, self.endpoint.rx
        return [
            ("s3.get_streams", lambda: float(tx.active_flows)),
            ("s3.put_streams", lambda: float(rx.active_flows)),
            ("s3.tx_bps", lambda: sum(f.rate for f in tx._flows)),
            ("s3.rx_bps", lambda: sum(f.rate for f in rx._flows)),
        ]

    # -- data path ----------------------------------------------------------------

    def _op_needs_service(self, op, node, meta):
        # The caching client keeps whole files on local disk: a cached
        # read never issues a GET, so it is immune to S3 outages.
        if op == "read" and meta.name in self._cache[node.name]:
            return False
        return True

    def read(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        """GET to the local disk if not cached, then the program reads
        the local copy (from RAM while its pages stay resident)."""
        self._require_deployed()
        cached = meta.name in self._cache[node.name]
        self._count_read(meta, remote=not cached)
        if cached:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
            yield from self._fetch(node, meta)
        # Disk -> program: free while the landing copy is resident.
        if self._page_cache_hit(node, meta):
            yield self.env.timeout(PC_HIT_LATENCY)
        else:
            yield from node.disk.read(meta.size)
            self._page_cache_insert(node, meta)

    def write(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        """Program writes the local disk, then the client PUTs to S3."""
        self._require_deployed()
        self._count_write(meta, remote=True)
        # Program -> disk (first write; pays the ephemeral penalty).
        yield from node.disk.write(("s3cache", meta.name), meta.size)
        self._page_cache_insert(node, meta)
        # Disk -> S3: the client reads the file back (from RAM if the
        # just-written pages are still resident) and uploads it.
        self.stats.put_requests += 1
        yield self.env.timeout(self.PUT_LATENCY)
        stages = [self.env.process(self._upload(node, meta.size),
                                   name=f"s3-put:{meta.name}")]
        if not self._page_cache_hit(node, meta):
            stages.append(self.env.process(
                self._disk_read(node, meta.size),
                name=f"s3-putread:{meta.name}"))
        yield self.env.all_of(stages)
        self._bucket.add(meta.name)
        # The output stays in the node cache for future jobs here.
        self._cache[node.name].add(meta.name)

    # -- helpers -------------------------------------------------------------------

    def _fetch(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        """Download ``meta`` into the node cache, deduplicating
        concurrent requests for the same file on the same node."""
        key = (node.name, meta.name)
        pending = self._inflight.get(key)
        if pending is not None:
            yield pending
            return
        if meta.name not in self._bucket:
            raise FileNotFoundError(f"object {meta.name!r} not in S3")
        done = Event(self.env)
        self._inflight[key] = done
        try:
            self.stats.get_requests += 1
            yield self.env.timeout(self.GET_LATENCY)
            # Wire transfer and the local-disk landing write pipeline.
            net_ev = self.env.process(self._download(node, meta.size),
                                      name=f"s3-get:{meta.name}")
            disk_ev = self.env.process(
                self._disk_write(node, meta),
                name=f"s3-getwrite:{meta.name}")
            yield net_ev & disk_ev
            self._cache[node.name].add(meta.name)
            self._page_cache_insert(node, meta)
        finally:
            del self._inflight[key]
            done.succeed()

    def _download(self, node: "VMInstance", nbytes: float) -> Generator:
        yield from self.cloud.network.transfer(
            self.endpoint, node.nic, nbytes, max_rate=self.PER_STREAM_BW)

    def _upload(self, node: "VMInstance", nbytes: float) -> Generator:
        yield from self.cloud.network.transfer(
            node.nic, self.endpoint, nbytes, max_rate=self.PER_STREAM_BW)

    def _disk_read(self, node: "VMInstance", nbytes: float) -> Generator:
        yield from node.disk.read(nbytes)

    def _disk_write(self, node: "VMInstance", meta: FileMetadata) -> Generator:
        yield from node.disk.write(("s3cache", meta.name), meta.size)
