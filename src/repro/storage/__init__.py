"""Storage systems: the paper's five data-sharing options (plus two).

* :class:`LocalDiskStorage` — single-node RAID0 baseline ("Local");
* :class:`S3Storage` — Amazon S3 with the whole-file caching client;
* :class:`NFSStorage` — central server, async write-back, page cache;
* :class:`GlusterFSStorage` — NUFA and distribute translator layouts;
* :class:`PVFSStorage` — striped parallel FS (2.6.3 behaviour);
* :class:`XtreemFSStorage` — the WAN file system the paper abandoned.

All implement :class:`StorageSystem`; :func:`make_storage` builds one
by name for a given cluster.
"""


from .base import StorageStats, StorageSystem
from .files import FileMetadata, FileState, Namespace, WriteOnceViolation
from .gluster import GlusterFSStorage
from .local import LocalDiskStorage
from .nfs import NFSStorage
from .p2p import DirectTransferStorage
from .pvfs import PVFSStorage
from .s3 import S3Storage
from .xtreemfs import XtreemFSStorage

#: Names accepted by :func:`make_storage`, in the paper's order.
STORAGE_NAMES = (
    "local",
    "s3",
    "nfs",
    "glusterfs-nufa",
    "glusterfs-distribute",
    "pvfs",
    "xtreemfs",
    "p2p",
)


def make_storage(name, env, cloud=None, nfs_server=None, trace=None):
    """Construct a storage system by name.

    Parameters
    ----------
    name:
        One of :data:`STORAGE_NAMES`.
    env:
        Simulation environment.
    cloud:
        Required for ``s3`` and ``xtreemfs`` (they attach a service
        endpoint to the cluster network).
    nfs_server:
        The dedicated server :class:`~repro.cloud.node.VMInstance`,
        required for ``nfs``.
    """
    if name == "local":
        return LocalDiskStorage(env, trace=trace)
    if name == "s3":
        if cloud is None:
            raise ValueError("s3 requires the EC2Cloud (service endpoint)")
        return S3Storage(env, cloud, trace=trace)
    if name == "nfs":
        if nfs_server is None:
            raise ValueError("nfs requires a dedicated server instance")
        return NFSStorage(env, nfs_server, trace=trace)
    if name == "glusterfs-nufa":
        return GlusterFSStorage(env, layout="nufa", trace=trace)
    if name == "glusterfs-distribute":
        return GlusterFSStorage(env, layout="distribute", trace=trace)
    if name == "pvfs":
        return PVFSStorage(env, trace=trace)
    if name == "xtreemfs":
        if cloud is None:
            raise ValueError("xtreemfs requires the EC2Cloud (service endpoint)")
        return XtreemFSStorage(env, cloud, trace=trace)
    if name == "p2p":
        return DirectTransferStorage(env, trace=trace)
    raise ValueError(f"unknown storage system {name!r}; known: {STORAGE_NAMES}")


__all__ = [
    "DirectTransferStorage",
    "FileMetadata",
    "FileState",
    "GlusterFSStorage",
    "LocalDiskStorage",
    "NFSStorage",
    "Namespace",
    "PVFSStorage",
    "S3Storage",
    "STORAGE_NAMES",
    "StorageStats",
    "StorageSystem",
    "WriteOnceViolation",
    "XtreemFSStorage",
    "make_storage",
]
