"""Client-side page cache.

Programs on a worker node read mounted file systems (local disk, NFS,
GlusterFS) through the Linux page cache: a file read or written
recently on *this node* is served from RAM, skipping disks and the
network.  The workloads are write-once, so cached contents never go
stale (NFS close-to-open revalidation always succeeds).

The crucial coupling modelled here is with **task memory pressure**:
page-cache capacity is whatever physical memory the resident tasks are
not using.  Montage's small tasks leave gigabytes for caching;
Broadband's >1 GB simulation codes squeeze the cache down to the
floor, which is why its re-read-heavy I/O keeps going back to the
(remote) storage system — and why S3's *disk-based* whole-file cache,
which does not compete with task memory, wins for Broadband.

PVFS gets no page cache: its 2.6.3 kernel client bypasses the page
cache entirely (direct-style I/O), one of the reasons the paper finds
it slow on small files.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance

#: The kernel keeps at least this much cache even under memory
#: pressure (reclaim never quite empties it).
MIN_CACHE_BYTES = 200_000_000
#: Fraction of *free* memory the page cache may occupy.
FREE_MEMORY_FRACTION = 0.40
#: In-RAM service time for a cached read (copy + syscall).
HIT_LATENCY = 0.0003


class NodePageCache:
    """LRU page cache of one node for one mounted file system."""

    def __init__(self, node: "VMInstance") -> None:
        self.node = node
        self._lru: "OrderedDict[str, float]" = OrderedDict()
        self._bytes = 0.0
        self.hits = 0
        self.misses = 0

    # -- capacity --------------------------------------------------------

    def capacity(self) -> float:
        """Current capacity: free node memory not claimed by tasks."""
        return max(MIN_CACHE_BYTES,
                   self.node.memory.level * FREE_MEMORY_FRACTION)

    @property
    def cached_bytes(self) -> float:
        """Bytes currently cached."""
        return self._bytes

    # -- operations ---------------------------------------------------------

    def lookup(self, name: str) -> bool:
        """True (and refresh LRU) if ``name`` is fully cached.

        Re-applies the capacity bound first, so cache contents shrink
        when running tasks have claimed the memory since the last
        access (kernel reclaim under pressure).
        """
        self.shrink()
        if name in self._lru:
            self._lru.move_to_end(name)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, name: str, size: float) -> None:
        """Cache ``name`` (no-op for files larger than capacity)."""
        cap = self.capacity()
        if size > cap:
            return
        if name in self._lru:
            self._lru.move_to_end(name)
            return
        self._lru[name] = size
        self._bytes += size
        self.shrink()

    def shrink(self) -> None:
        """Evict LRU entries down to current capacity (called on
        insert and by the executor when tasks claim memory)."""
        cap = self.capacity()
        while self._bytes > cap and self._lru:
            _, size = self._lru.popitem(last=False)
            self._bytes -= size

    def invalidate(self, name: str) -> None:
        """Drop one entry (file deleted)."""
        size = self._lru.pop(name, None)
        if size is not None:
            self._bytes -= size
