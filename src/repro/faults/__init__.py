"""Fault injection and recovery for simulated virtual clusters.

The paper reports only completed EC2 runs, but its companion study
(*Scientific Workflow Applications on Amazon EC2*, Juve et al., 2010)
notes that real virtual clusters see node flakiness and storage hiccups
that Condor/DAGMan must mask.  This package supplies the missing fault
model:

* :class:`FaultSpec` — a declarative, seed-deterministic schedule of
  node crashes, storage-server outage windows, and transient per-op
  storage error rates;
* :class:`FaultCoordinator` — arms the schedule against a running
  experiment (kills nodes through the Condor pool, attaches the
  storage-side fault state);
* :class:`RescueLog` — DAGMan's rescue-DAG checkpoint: the persisted
  completed-job set that lets a failed run resume without redoing
  finished work.

Everything is deterministic per ``(seed, FaultSpec)`` via
:func:`repro.simcore.rand.substream`; with the spec disabled (the
default) no code on the simulation hot path changes behaviour at all.
"""

from .injector import FaultCoordinator, FaultReport, StorageFaultState
from .rescue import RescueLog
from .spec import (
    NO_FAULTS,
    FaultSpec,
    NodeCrash,
    OutageWindow,
    RetryPolicy,
    StorageUnavailableError,
    load_fault_spec,
)

__all__ = [
    "FaultCoordinator",
    "FaultReport",
    "FaultSpec",
    "NO_FAULTS",
    "NodeCrash",
    "OutageWindow",
    "RescueLog",
    "RetryPolicy",
    "StorageFaultState",
    "StorageUnavailableError",
    "load_fault_spec",
]
