"""Declarative fault schedules.

A :class:`FaultSpec` fully determines *what can go wrong* in one
experiment: which nodes crash (explicitly, or stochastically via an
exponential mean-time-between-failures), when the shared storage
service is unreachable, and how often individual storage operations
fail transiently.  Together with the experiment seed it is a complete,
reproducible description — the same ``(seed, FaultSpec)`` pair always
produces identical crash times, retry counts, and makespans.

Specs are plain frozen dataclasses with JSON round-tripping so fault
scenarios can live in version-controlled files and be passed on the
command line (``repro-ec2 run --fault-spec faults.json``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple


class StorageUnavailableError(RuntimeError):
    """A storage operation exhausted its retries (outage or persistent
    transient errors).  The executor converts this into a task failure
    so DAGMan's retry/rescue machinery takes over."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-exponential-backoff policy for storage clients.

    An operation that fails waits ``base_delay * multiplier**attempt``
    (capped at ``max_delay``, jittered by ``jitter`` from the seeded
    backoff substream) before retrying, up to ``max_retries`` retries.
    During an outage each attempt costs ``op_timeout`` seconds (the
    client hangs until its RPC timer fires); a transient error is
    detected after ``error_latency`` seconds.
    """

    max_retries: int = 5
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    #: Relative uniform jitter applied to each backoff delay (0..1).
    jitter: float = 0.1
    #: Client-side RPC timeout: the cost of one attempt against a
    #: server that is down.
    op_timeout: float = 30.0
    #: How long a transient error takes to manifest.
    error_latency: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.op_timeout < 0 or self.error_latency < 0:
            raise ValueError("timeouts must be >= 0")

    def backoff(self, attempt: int, rng=None) -> float:
        """Delay before retry number ``attempt + 1`` (attempt is 0-based)."""
        delay = min(self.base_delay * self.multiplier ** attempt,
                    self.max_delay)
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(delay, 0.0)


@dataclass(frozen=True)
class NodeCrash:
    """One scheduled node failure (spot preemption, hardware death)."""

    #: Worker name, e.g. ``"i-3"``.
    node: str
    #: Absolute simulation time of the crash, seconds.
    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("crash time must be >= 0")


@dataclass(frozen=True)
class OutageWindow:
    """A [start, end) interval during which the shared storage service
    (NFS server, PVFS stripe set, S3 endpoint, ...) is unreachable."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"outage window needs 0 <= start < end, got "
                f"[{self.start}, {self.end})")

    @property
    def duration(self) -> float:
        """Window length, seconds."""
        return self.end - self.start

    def covers(self, t: float) -> bool:
        """Whether ``t`` falls inside the window."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class FaultSpec:
    """The complete fault schedule of one experiment."""

    #: Explicit node crashes at fixed simulated times.
    node_crashes: Tuple[NodeCrash, ...] = ()
    #: Mean time between failures per node, seconds; 0 disables
    #: stochastic crashes.  Crash times are drawn exponentially from
    #: the per-node substream ``(seed, "fault", "crash", node)``.
    node_mtbf: float = 0.0
    #: Stochastic crashes never reduce the pool below this many live
    #: workers (explicit ``node_crashes`` are honoured verbatim).
    min_survivors: int = 1
    #: Storage-service outage windows.
    storage_outages: Tuple[OutageWindow, ...] = ()
    #: Per-operation transient failure probability in [0, 1).
    storage_error_rate: float = 0.0
    #: Client retry behaviour for storage faults.
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.node_mtbf < 0:
            raise ValueError("node_mtbf must be >= 0")
        if self.min_survivors < 0:
            raise ValueError("min_survivors must be >= 0")
        if not 0.0 <= self.storage_error_rate < 1.0:
            raise ValueError(
                f"storage_error_rate must be in [0, 1), got "
                f"{self.storage_error_rate}")
        # Normalise list inputs from from_dict / hand-written specs.
        if not isinstance(self.node_crashes, tuple):
            object.__setattr__(self, "node_crashes",
                               tuple(self.node_crashes))
        if not isinstance(self.storage_outages, tuple):
            object.__setattr__(self, "storage_outages",
                               tuple(self.storage_outages))

    @property
    def enabled(self) -> bool:
        """Whether this spec injects any fault at all."""
        return bool(self.node_crashes or self.node_mtbf > 0
                    or self.storage_outages or self.storage_error_rate > 0)

    @property
    def has_storage_faults(self) -> bool:
        """Whether the storage layer needs the retry wrapper."""
        return bool(self.storage_outages or self.storage_error_rate > 0)

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-compatible)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output / parsed JSON."""
        known = {"node_crashes", "node_mtbf", "min_survivors",
                 "storage_outages", "storage_error_rate", "retry"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        kwargs: Dict[str, object] = dict(data)
        if "node_crashes" in kwargs:
            kwargs["node_crashes"] = tuple(
                c if isinstance(c, NodeCrash) else NodeCrash(**c)
                for c in kwargs["node_crashes"])  # type: ignore[union-attr]
        if "storage_outages" in kwargs:
            kwargs["storage_outages"] = tuple(
                w if isinstance(w, OutageWindow) else OutageWindow(**w)
                for w in kwargs["storage_outages"])  # type: ignore[union-attr]
        retry = kwargs.get("retry")
        if retry is not None and not isinstance(retry, RetryPolicy):
            kwargs["retry"] = RetryPolicy(**retry)  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON form for fault-scenario files."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        """Parse the output of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def load_fault_spec(path: str) -> FaultSpec:
    """Read a :class:`FaultSpec` from a JSON file."""
    with open(path) as fh:
        return FaultSpec.from_json(fh.read())


#: The disabled spec (the paper's fault-free runs).
NO_FAULTS = FaultSpec()
