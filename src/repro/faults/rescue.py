"""Rescue-DAG checkpointing.

DAGMan's rescue DAG records which jobs of a failed run already
finished, so a resubmission re-executes only the unfinished remainder.
:class:`RescueLog` is that record: an in-memory completed-job set with
an optional append-only file behind it.  The file format is one job id
per line (lines starting with ``#`` are comments), so a checkpoint
survives process death at any point — every completion is flushed as
it happens, and a torn final line cannot corrupt earlier entries.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Optional, Set


class RescueLog:
    """The persisted completed-job set of one workflow execution."""

    def __init__(self, path: Optional[str] = None,
                 completed: Optional[Iterable[str]] = None) -> None:
        self.path = path
        self._completed: Set[str] = set(completed or ())
        self._fh = None
        if path is not None and os.path.exists(path):
            with open(path) as fh:
                for line in fh:
                    jid = line.strip()
                    if jid and not jid.startswith("#"):
                        self._completed.add(jid)

    @property
    def completed(self) -> Set[str]:
        """Job ids known to have finished (a copy)."""
        return set(self._completed)

    def mark(self, job_id: str) -> None:
        """Record that ``job_id`` completed (idempotent, flushed)."""
        if job_id in self._completed:
            return
        self._completed.add(job_id)
        if self.path is not None:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(job_id + "\n")
            self._fh.flush()

    def close(self) -> None:
        """Close the backing file (further marks reopen it)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._completed

    def __len__(self) -> int:
        return len(self._completed)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._completed))

    def __repr__(self) -> str:
        where = self.path or "memory"
        return f"<RescueLog {len(self._completed)} jobs @ {where}>"
