"""Runtime fault injection.

:class:`FaultCoordinator` turns a :class:`~repro.faults.spec.FaultSpec`
into live simulation behaviour: it schedules node-kill processes
against the Condor pool and hands the storage layer a
:class:`StorageFaultState` that decides, operation by operation,
whether the shared service is down or flaking.

Determinism: every random draw comes from a named substream of the
experiment seed —

* crash times: ``(seed, "fault", "crash", <node>)`` (one exponential
  draw per node, independent of execution order);
* transient storage errors: ``(seed, "fault", "storage-error")``
  (sequential draws; the simulation's own determinism fixes the order);
* backoff jitter: ``(seed, "fault", "backoff")``.

All fault events flow through the telemetry trace under the ``fault``
category, so the metrics bridge can maintain fault counters and
retry-delay histograms without any extra plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..simcore.rand import substream
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from .spec import FaultSpec, OutageWindow

if TYPE_CHECKING:  # pragma: no cover
    from ..cloud.node import VMInstance
    from ..simcore.engine import Environment
    from ..storage.base import StorageSystem
    from ..workflow.condor import CondorPool


class StorageFaultState:
    """Per-run storage fault decisions and counters.

    Installed on a :class:`~repro.storage.base.StorageSystem` via
    ``attach_faults``; the retry wrapper in ``span_read``/``span_write``
    consults it before every operation that touches the shared service.
    """

    def __init__(self, env: "Environment", spec: FaultSpec,
                 seed: int = 0,
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        self.env = env
        self.spec = spec
        self.retry = spec.retry
        self.trace = trace
        self.outages: Tuple[OutageWindow, ...] = tuple(
            sorted(spec.storage_outages, key=lambda w: (w.start, w.end)))
        self._error_rng = substream(seed, "fault", "storage-error")
        #: Backoff-jitter stream, shared with the retry wrapper.
        self.backoff_rng = substream(seed, "fault", "backoff")
        # Counters (also mirrored into the trace for the metrics bridge).
        self.transient_errors = 0
        self.outage_hits = 0
        self.retries = 0
        self.giveups = 0
        self.recoveries = 0

    # -- decisions ----------------------------------------------------------

    def outage_at(self, t: float) -> bool:
        """Whether the shared service is down at time ``t``."""
        return any(w.covers(t) for w in self.outages)

    def roll_failure(self, op: str,
                     needs_service: bool) -> Optional[Tuple[str, float]]:
        """Decide the fate of one operation attempt.

        Returns ``None`` (attempt proceeds) or ``(kind, latency)`` where
        ``kind`` is ``"outage"`` or ``"transient"`` and ``latency`` is
        the simulated time the failed attempt costs the client.
        Purely node-local operations (``needs_service=False``) never
        fail: a page-cache or client-cache hit does not touch the
        server.
        """
        if not needs_service:
            return None
        if self.outage_at(self.env.now):
            return ("outage", self.retry.op_timeout)
        if self.spec.storage_error_rate > 0.0 \
                and float(self._error_rng.random()) < self.spec.storage_error_rate:
            return ("transient", self.retry.error_latency)
        return None

    # -- accounting ---------------------------------------------------------

    def note_error(self, op: str, kind: str, file: str) -> None:
        """Record one failed attempt."""
        if kind == "outage":
            self.outage_hits += 1
        else:
            self.transient_errors += 1
        self.trace.emit(self.env.now, "fault", "storage_error",
                        op=op, kind=kind, file=file)

    def note_retry(self, op: str, delay: float) -> None:
        """Record one backoff-and-retry decision."""
        self.retries += 1
        self.trace.emit(self.env.now, "fault", "storage_retry",
                        op=op, delay=delay)

    def note_giveup(self, op: str, file: str, attempts: int) -> None:
        """Record retry exhaustion (a StorageUnavailableError)."""
        self.giveups += 1
        self.trace.emit(self.env.now, "fault", "storage_giveup",
                        op=op, file=file, attempts=attempts)

    def note_recovered(self, op: str, attempts: int) -> None:
        """Record an operation that succeeded after >= 1 retry."""
        self.recoveries += 1
        self.trace.emit(self.env.now, "fault", "storage_recovered",
                        op=op, attempts=attempts)

    @property
    def errors(self) -> int:
        """All failed attempts (outage + transient)."""
        return self.transient_errors + self.outage_hits


@dataclass
class FaultReport:
    """What the fault layer actually did during one run."""

    #: Crash time per node that died, sim seconds.
    crash_times: Dict[str, float] = field(default_factory=dict)
    #: Jobs interrupted by node death and resubmitted.
    jobs_evicted: int = 0
    #: Failed storage attempts by cause.
    storage_transient_errors: int = 0
    storage_outage_hits: int = 0
    #: Backoff-and-retry decisions taken by storage clients.
    storage_retries: int = 0
    #: Operations that exhausted retries (became task failures).
    storage_giveups: int = 0
    #: Operations that succeeded after at least one retry.
    storage_recoveries: int = 0
    #: Total scheduled outage seconds.
    outage_seconds: float = 0.0

    @property
    def node_crashes(self) -> int:
        """Nodes that died."""
        return len(self.crash_times)

    def as_dict(self) -> Dict[str, object]:
        """Flat dict for result tables."""
        return {
            "node_crashes": self.node_crashes,
            "jobs_evicted": self.jobs_evicted,
            "storage_errors": (self.storage_transient_errors
                               + self.storage_outage_hits),
            "storage_retries": self.storage_retries,
            "storage_giveups": self.storage_giveups,
            "storage_recoveries": self.storage_recoveries,
            "outage_seconds": self.outage_seconds,
        }


class FaultCoordinator:
    """Arms one :class:`FaultSpec` against one experiment run."""

    def __init__(self, env: "Environment", spec: FaultSpec,
                 seed: int = 0,
                 trace: TraceCollector = NULL_COLLECTOR) -> None:
        self.env = env
        self.spec = spec
        self.seed = seed
        self.trace = trace
        self.storage_state: Optional[StorageFaultState] = None
        #: Planned crash time per node (filled by :meth:`arm`).
        self.crash_times: Dict[str, float] = {}
        self._pool: Optional["CondorPool"] = None

    # -- wiring -------------------------------------------------------------

    def attach_storage(self, storage: "StorageSystem") -> None:
        """Install the storage-side fault state (if the spec has any)."""
        if not self.spec.has_storage_faults:
            return
        self.storage_state = StorageFaultState(
            self.env, self.spec, seed=self.seed, trace=self.trace)
        storage.attach_faults(self.storage_state)

    def plan_crashes(self, workers: List["VMInstance"]) -> Dict[str, float]:
        """Deterministic crash schedule for ``workers``.

        Explicit :class:`NodeCrash` entries are honoured verbatim;
        stochastic (mtbf) crashes are capped so at least
        ``min_survivors`` workers stay alive.
        """
        names = {w.name for w in workers}
        times: Dict[str, float] = {}
        for crash in self.spec.node_crashes:
            if crash.node in names:
                prev = times.get(crash.node)
                times[crash.node] = crash.at if prev is None \
                    else min(prev, crash.at)
        if self.spec.node_mtbf > 0.0:
            drawn: List[Tuple[float, str]] = []
            for name in sorted(names - set(times)):
                rng = substream(self.seed, "fault", "crash", name)
                drawn.append((float(rng.exponential(self.spec.node_mtbf)),
                              name))
            budget = max(0, len(names) - self.spec.min_survivors
                         - len(times))
            for t, name in sorted(drawn)[:budget]:
                times[name] = t
        return times

    def arm(self, pool: "CondorPool",
            workers: List["VMInstance"]) -> None:
        """Start the crash and outage processes for this run."""
        self._pool = pool
        self.crash_times = self.plan_crashes(workers)
        by_name = {w.name: w for w in workers}
        for name in sorted(self.crash_times):
            self.env.process(
                self._crash_proc(pool, by_name[name],
                                 self.crash_times[name]),
                name=f"fault:crash:{name}")
        if self.storage_state is not None:
            for i, window in enumerate(self.storage_state.outages):
                self.env.process(self._outage_marker(window),
                                 name=f"fault:outage:{i}")

    # -- processes ----------------------------------------------------------

    def _crash_proc(self, pool: "CondorPool", node: "VMInstance",
                    at: float):
        yield self.env.timeout(max(0.0, at - self.env.now))
        if not node.is_alive:
            return
        pool.kill_node(node)
        node.crash()

    def _outage_marker(self, window: OutageWindow):
        # Trace-only bookends so outages appear as spans in the
        # timeline; the actual down-ness is decided by outage_at().
        yield self.env.timeout(max(0.0, window.start - self.env.now))
        self.trace.emit(self.env.now, "fault", "outage_begin",
                        start=window.start, end=window.end)
        yield self.env.timeout(max(0.0, window.end - self.env.now))
        self.trace.emit(self.env.now, "fault", "outage_end",
                        start=window.start, end=window.end,
                        duration=window.duration)

    # -- results ------------------------------------------------------------

    def report(self) -> FaultReport:
        """Summarise what was injected and recovered."""
        report = FaultReport(crash_times=dict(self.crash_times))
        if self._pool is not None:
            report.jobs_evicted = getattr(self._pool, "evictions", 0)
            # Only nodes that actually died before the run ended count.
            dead = getattr(self._pool, "_dead_nodes", set())
            report.crash_times = {n: t for n, t in self.crash_times.items()
                                  if n in dead}
        state = self.storage_state
        if state is not None:
            report.storage_transient_errors = state.transient_errors
            report.storage_outage_hits = state.outage_hits
            report.storage_retries = state.retries
            report.storage_giveups = state.giveups
            report.storage_recoveries = state.recoveries
            report.outage_seconds = sum(w.duration for w in state.outages)
        return report
