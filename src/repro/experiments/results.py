"""Result tables and terminal charts.

The benchmark harness prints the same rows/series the paper's figures
plot: makespan (or cost) per storage system across cluster sizes.
Everything renders as plain text so ``pytest benchmarks/`` output is
self-contained; CSV export supports downstream plotting.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Mapping, Tuple

from .runner import ExperimentResult

#: Column order used for figure-style tables.
SERIES_ORDER = (
    "local",
    "s3",
    "nfs",
    "glusterfs-nufa",
    "glusterfs-distribute",
    "pvfs",
    "xtreemfs",
)


def makespan_matrix(results: Iterable[ExperimentResult]
                    ) -> Dict[Tuple[str, int], float]:
    """(storage, nodes) -> makespan seconds."""
    return {(r.config.storage, r.config.n_workers): r.makespan
            for r in results}


def cost_matrix(results: Iterable[ExperimentResult],
                per: str = "hour") -> Dict[Tuple[str, int], float]:
    """(storage, nodes) -> USD under per-hour or per-second billing."""
    if per not in ("hour", "second"):
        raise ValueError("per must be 'hour' or 'second'")
    return {
        (r.config.storage, r.config.n_workers):
        (r.cost.per_hour_total if per == "hour" else r.cost.per_second_total)
        for r in results
    }


def _series(matrix: Mapping[Tuple[str, int], float]
            ) -> Tuple[List[str], List[int]]:
    storages = sorted({s for s, _ in matrix},
                      key=lambda s: SERIES_ORDER.index(s)
                      if s in SERIES_ORDER else 99)
    nodes = sorted({n for _, n in matrix})
    return storages, nodes


def format_figure_table(matrix: Mapping[Tuple[str, int], float],
                        title: str,
                        value_format: str = "{:8.0f}",
                        unit: str = "s") -> str:
    """Render one paper figure as an aligned text table."""
    storages, nodes = _series(matrix)
    width = max(12, max((len(s) for s in storages), default=12) + 2)
    lines = [title, f"{'storage':<{width}}" + "".join(f"{f'{n} node':>12}"
                                                      for n in nodes)]
    for s in storages:
        row = [f"{s:<{width}}"]
        for n in nodes:
            v = matrix.get((s, n))
            row.append(" " * 12 if v is None
                       else f"{value_format.format(v):>11}{unit[:1]}")
        lines.append("".join(row))
    return "\n".join(lines)


def format_bar_chart(matrix: Mapping[Tuple[str, int], float],
                     title: str,
                     width: int = 48,
                     unit: str = "s") -> str:
    """A horizontal text bar chart, one bar per (storage, nodes) cell."""
    if not matrix:
        return title + "\n(no data)"
    storages, nodes = _series(matrix)
    vmax = max(matrix.values())
    lines = [title]
    for s in storages:
        for n in nodes:
            v = matrix.get((s, n))
            if v is None:
                continue
            bar = "#" * max(1, round(width * v / vmax)) if vmax > 0 else ""
            lines.append(f"  {s:>22} @{n}: {bar} {v:,.0f}{unit}")
    return "\n".join(lines)


def to_csv(results: Iterable[ExperimentResult]) -> str:
    """Flatten results to CSV (for external plotting)."""
    rows = [r.summary_row() for r in results]
    if not rows:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def speedup_table(matrix: Mapping[Tuple[str, int], float],
                  storage: str) -> Dict[int, float]:
    """Speedup of one storage series relative to its smallest size."""
    nodes = sorted(n for s, n in matrix if s == storage)
    if not nodes:
        return {}
    base = matrix[(storage, nodes[0])]
    return {n: base / matrix[(storage, n)] for n in nodes}
