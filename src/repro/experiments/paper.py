"""Published anchors from the paper, for shape validation.

The paper's figures are plots; few exact values appear in the text.
This module records (a) every number the text does state, and (b) the
*qualitative* orderings visible in the figures, as machine-checkable
predicates.  EXPERIMENTS.md reports our measurements against both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

#: Exact values stated in the text.
TEXT_ANCHORS = {
    # §III.C — ephemeral disk measurements (MB/s).
    "disk.single.first_write_mbs": (19.0, 21.0),  # "about 20 MB/s"
    "disk.raid0.first_write_mbs": (78.0, 102.0),
    "disk.raid0.rewrite_mbs": (350.0, 400.0),
    "disk.raid0.read_mbs": (290.0, 330.0),   # "around 310"
    "disk.single.read_mbs": (100.0, 120.0),  # "peak at around 110"
    # §III.C — zero-filling 50 GB takes ~42 minutes.
    "disk.zero_fill_50gb_minutes": (38.0, 46.0),
    # §V.C — Broadband on NFS, 4 nodes.
    "broadband.nfs.4node_seconds": 5363.0,
    "broadband.nfs_m24xlarge.4node_seconds": 4368.0,
    # §V.C — Broadband on GlusterFS and S3: "<3000 seconds in all cases".
    "broadband.gluster_s3_max_seconds": 3000.0,
    # §VI — storage-system surcharges per workflow (USD).
    "cost.nfs_extra_node": 0.68,
    "cost.s3_fees.montage": 0.28,
    "cost.s3_fees.epigenome": 0.01,
    "cost.s3_fees.broadband": 0.02,
}

#: Table I, verbatim.
TABLE1 = {
    "montage": {"I/O": "High", "Memory": "Low", "CPU": "Low"},
    "broadband": {"I/O": "Medium", "Memory": "High", "CPU": "Medium"},
    "epigenome": {"I/O": "Low", "Memory": "Medium", "CPU": "High"},
}


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim from the paper's evaluation."""

    figure: str
    claim: str
    #: Predicate over ``makespans[(storage, nodes)] -> seconds``.
    predicate: Callable[[Mapping[Tuple[str, int], float]], bool]


def _best_storage(m: Mapping[Tuple[str, int], float], nodes: int) -> str:
    candidates = {s: v for (s, n), v in m.items() if n == nodes}
    return min(candidates, key=candidates.get)


# Fig. 2 — Montage.
MONTAGE_CHECKS: List[ShapeCheck] = [
    ShapeCheck(
        "fig2", "GlusterFS (either mode) is the fastest system at every "
        "multi-node size",
        lambda m: all(
            _best_storage(m, n).startswith("glusterfs") for n in (2, 4, 8)),
    ),
    ShapeCheck(
        "fig2", "NFS beats the local disk in the single-node case",
        lambda m: m[("nfs", 1)] < m[("local", 1)],
    ),
    ShapeCheck(
        "fig2", "S3 is markedly slower than GlusterFS at every size",
        lambda m: all(
            m[("s3", n)] > 1.25 * m[("glusterfs-nufa", n)] for n in (2, 4, 8)),
    ),
    ShapeCheck(
        "fig2", "PVFS is markedly slower than GlusterFS at every size",
        lambda m: all(
            m[("pvfs", n)] > 1.25 * m[("glusterfs-nufa", n)] for n in (2, 4, 8)),
    ),
    ShapeCheck(
        "fig2", "GlusterFS runtime improves when nodes are added",
        lambda m: m[("glusterfs-nufa", 8)] < m[("glusterfs-nufa", 2)],
    ),
]

# Fig. 3 — Epigenome.
EPIGENOME_CHECKS: List[ShapeCheck] = [
    ShapeCheck(
        "fig3", "runtime scales down with added nodes (CPU-bound)",
        lambda m: m[("nfs", 8)] < m[("nfs", 2)] < 1.05 * m[("nfs", 1)],
    ),
    ShapeCheck(
        "fig3", "storage choice matters little: all systems within ~35% "
        "at every multi-node size",
        lambda m: all(
            max(m[(s, n)] for s in ("s3", "nfs", "glusterfs-nufa",
                                    "glusterfs-distribute", "pvfs"))
            <= 1.35 * min(m[(s, n)] for s in ("s3", "nfs", "glusterfs-nufa",
                                              "glusterfs-distribute", "pvfs"))
            for n in (2, 4, 8)),
    ),
    ShapeCheck(
        # Deviation note (see EXPERIMENTS.md): the paper reports local
        # "significantly" faster than NFS at one node; our NFS hides the
        # ephemeral first-write penalty in the server's RAM, which
        # offsets its per-op overheads, so the two land within a few
        # percent.  Local must still beat S3 outright.
        "fig3", "the local disk is (near-)fastest on a single node: "
        "within 3% of the best system and faster than S3",
        lambda m: (m[("local", 1)] <= 1.03 * min(m[("nfs", 1)],
                                                 m[("s3", 1)])
                   and m[("local", 1)] < m[("s3", 1)]),
    ),
    ShapeCheck(
        "fig3", "S3 and PVFS are (slightly) the slower systems "
        "relative to GlusterFS",
        lambda m: all(
            m[(s, n)] >= 0.98 * m[("glusterfs-nufa", n)]
            for s in ("s3", "pvfs") for n in (2, 4, 8)),
    ),
]

# Fig. 4 — Broadband.
BROADBAND_CHECKS: List[ShapeCheck] = [
    ShapeCheck(
        "fig4", "S3 gives the best overall performance (best at the "
        "largest sizes)",
        lambda m: _best_storage(m, 8) == "s3",
    ),
    ShapeCheck(
        "fig4", "GlusterFS NUFA beats distribute at every size",
        lambda m: all(
            m[("glusterfs-nufa", n)] <= m[("glusterfs-distribute", n)]
            for n in (2, 4, 8)),
    ),
    ShapeCheck(
        "fig4", "NFS degrades from 2 to 4 nodes",
        lambda m: m[("nfs", 4)] > m[("nfs", 2)],
    ),
    ShapeCheck(
        "fig4", "NFS at 4 nodes is much slower than GlusterFS and S3",
        lambda m: m[("nfs", 4)] > 1.5 * max(m[("s3", 4)],
                                            m[("glusterfs-nufa", 4)]),
    ),
    ShapeCheck(
        "fig4", "PVFS performs relatively poorly: slower than S3 at "
        "every size",
        lambda m: all(m[("pvfs", n)] > m[("s3", n)] for n in (2, 4, 8)),
    ),
]

FIGURE_CHECKS: Dict[str, List[ShapeCheck]] = {
    "montage": MONTAGE_CHECKS,
    "epigenome": EPIGENOME_CHECKS,
    "broadband": BROADBAND_CHECKS,
}

# Figs. 5-7 — cost claims (§VI).  Each check is evaluated over the
# billing basis that makes the paper's statement discriminating:
# per-hour charges produce frequent exact ties (everything under an
# hour on the same instance mix costs the same), so the orderings are
# asserted on the per-second charges and the tie claims on per-hour.
COST_CHECKS: Dict[str, List[ShapeCheck]] = {
    "montage": [
        ShapeCheck("fig5", "the cheapest configuration (per-second "
                   "charges) is GlusterFS on two nodes",
                   lambda c: min(c["second"], key=c["second"].get)
                   == ("glusterfs-nufa", 2)),
        ShapeCheck("fig5", "under per-hour charges GlusterFS@2 is no "
                   "more expensive than any other configuration",
                   lambda c: c["hour"][("glusterfs-nufa", 2)]
                   <= min(c["hour"].values()) + 1e-9),
    ],
    "epigenome": [
        ShapeCheck("fig6", "the cheapest configuration (per-second "
                   "charges) is the local disk on a single node",
                   lambda c: min(c["second"], key=c["second"].get)
                   == ("local", 1)),
        ShapeCheck("fig6", "under per-hour charges local@1 is no more "
                   "expensive than any other configuration",
                   lambda c: c["hour"][("local", 1)]
                   <= min(c["hour"].values()) + 1e-9),
    ],
    "broadband": [
        ShapeCheck("fig7", "local, GlusterFS and S3 all tie near the "
                   "minimum per-hour cost (within ~10%)",
                   lambda c: all(
                       min(v for (s2, n2), v in c["hour"].items()
                           if s2 == s) <= 1.10 * min(c["hour"].values())
                       for s in ("local", "glusterfs-nufa", "s3"))),
        ShapeCheck("fig7", "NFS is the most expensive system at every "
                   "size (per-second charges)",
                   lambda c: all(
                       c["second"][("nfs", n)] > max(
                           c["second"][(s, n)]
                           for s in ("s3", "glusterfs-nufa",
                                     "glusterfs-distribute", "pvfs"))
                       for n in (2, 4, 8))),
    ],
}


def check_shapes(app: str,
                 makespans: Mapping[Tuple[str, int], float]) -> List[Tuple[ShapeCheck, bool]]:
    """Evaluate every figure shape-check for ``app``."""
    return [(chk, bool(chk.predicate(makespans)))
            for chk in FIGURE_CHECKS[app]]


def check_cost_shapes(app: str,
                      hourly: Mapping[Tuple[str, int], float],
                      secondly: Mapping[Tuple[str, int], float],
                      ) -> List[Tuple[ShapeCheck, bool]]:
    """Evaluate the cost-figure shape-checks for ``app``.

    Both billing bases are passed; each check picks the one its claim
    concerns (see COST_CHECKS).
    """
    costs = {"hour": dict(hourly), "second": dict(secondly)}
    return [(chk, bool(chk.predicate(costs)))
            for chk in COST_CHECKS[app]]
