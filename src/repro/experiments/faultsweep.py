"""Makespan inflation vs fault rate.

The question the paper cannot answer ("how much does makespan and cost
inflate under realistic fault load per storage backend?") becomes a
sweep: run one cell at increasing fault intensity and compare each
faulty makespan against the fault-free baseline of the same cell.

Two independent axes can be swept (separately or together):

* ``storage_error_rate`` — transient per-operation storage failures
  masked by client retry/backoff;
* ``node_mtbf`` — stochastic node crashes masked by Condor eviction
  and DAGMan resubmission.

Every point is deterministic per seed; the zero-rate point is the
untouched baseline (the fault layer is not even attached), so
``inflation == 1.0`` there by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..workflow.dag import Workflow
from .config import ExperimentConfig
from .runner import ExperimentResult, ObserveOptions, run_experiment, run_sweep


@dataclass
class FaultSweepPoint:
    """One (fault intensity, outcome) sample."""

    storage_error_rate: float
    node_mtbf: float
    makespan: float
    #: makespan / fault-free makespan of the same cell.
    inflation: float
    cost_per_hour: float
    node_crashes: int
    jobs_evicted: int
    storage_retries: int
    storage_giveups: int
    #: Jobs abandoned (partial-completion mode only; 0 = full result).
    abandoned: int

    def row(self) -> dict:
        """Flat dict for tables/CSV."""
        return {
            "error_rate": self.storage_error_rate,
            "node_mtbf": self.node_mtbf,
            "makespan_s": round(self.makespan, 1),
            "inflation": round(self.inflation, 4),
            "cost_per_hour": round(self.cost_per_hour, 4),
            "crashes": self.node_crashes,
            "evicted": self.jobs_evicted,
            "retries": self.storage_retries,
            "giveups": self.storage_giveups,
            "abandoned": self.abandoned,
        }


def fault_inflation_sweep(base: ExperimentConfig,
                          error_rates: Sequence[float] = (),
                          node_mtbfs: Sequence[float] = (),
                          workflow: Optional[Workflow] = None,
                          jobs: int = 1,
                          observe: Optional[ObserveOptions] = None,
                          results_sink: Optional[List[ExperimentResult]] = None,
                          ) -> List[FaultSweepPoint]:
    """Sweep fault intensity for one cell; returns one point per setting.

    ``error_rates`` sweeps transient storage errors and ``node_mtbfs``
    sweeps crash intensity; the zero/fault-free baseline is always run
    first (and prepended as the first point).  Retries are raised above
    the default so moderate fault rates measure *slowdown*, not
    failure.  ``jobs > 1`` runs the fault points in that many worker
    processes (the baseline always runs first, in-process, because
    every inflation figure is relative to it); point order and values
    are identical to a serial sweep.

    ``observe`` threads host-side observability (monitor/event log,
    crash bundles, profiling) through the underlying :func:`run_sweep`.
    ``results_sink``, when given, receives every underlying
    :class:`ExperimentResult` (baseline first) so callers — the
    serial-vs-parallel equality tests in particular — can inspect the
    full telemetry behind each point, which the flat points discard.
    """
    baseline = run_experiment(base, workflow=workflow)
    if results_sink is not None:
        results_sink.append(baseline)
    points = [FaultSweepPoint(
        storage_error_rate=0.0, node_mtbf=0.0,
        makespan=baseline.makespan, inflation=1.0,
        cost_per_hour=baseline.cost.per_hour_total,
        node_crashes=0, jobs_evicted=0,
        storage_retries=0, storage_giveups=0, abandoned=0,
    )]

    def to_point(rate: float, mtbf: float, result) -> FaultSweepPoint:
        report = result.faults
        return FaultSweepPoint(
            storage_error_rate=rate, node_mtbf=mtbf,
            makespan=result.makespan,
            inflation=result.makespan / baseline.makespan
            if baseline.makespan > 0 else float("inf"),
            cost_per_hour=result.cost.per_hour_total,
            node_crashes=report.node_crashes if report else 0,
            jobs_evicted=report.jobs_evicted if report else 0,
            storage_retries=report.storage_retries if report else 0,
            storage_giveups=report.storage_giveups if report else 0,
            abandoned=len(result.run.abandoned_jobs),
        )

    settings = [(rate, 0.0) for rate in error_rates if rate > 0]
    settings += [(0.0, mtbf) for mtbf in node_mtbfs if mtbf > 0]
    if not settings:
        return points
    configs = [base.with_(storage_error_rate=rate, node_mtbf=mtbf)
               for rate, mtbf in settings]
    results = run_sweep(configs, jobs=jobs, workflow=workflow,
                        observe=observe)
    if results_sink is not None:
        results_sink.extend(r for r in results if r is not None)
    points.extend(to_point(rate, mtbf, result)
                  for (rate, mtbf), result in zip(settings, results)
                  if result is not None)
    return points


def format_fault_sweep(points: List[FaultSweepPoint],
                       title: str = "makespan inflation vs fault rate",
                       ) -> str:
    """Fixed-width table of one sweep."""
    header = (f"{'err_rate':>9} {'mtbf_s':>9} {'makespan_s':>11} "
              f"{'inflation':>9} {'$/hour':>8} {'crash':>6} {'evict':>6} "
              f"{'retry':>6} {'giveup':>7} {'abandon':>8}")
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for p in points:
        mtbf = f"{p.node_mtbf:9.0f}" if p.node_mtbf else f"{'-':>9}"
        lines.append(
            f"{p.storage_error_rate:9.4f} {mtbf} {p.makespan:11.1f} "
            f"{p.inflation:9.3f} {p.cost_per_hour:8.2f} "
            f"{p.node_crashes:6d} {p.jobs_evicted:6d} "
            f"{p.storage_retries:6d} {p.storage_giveups:7d} "
            f"{p.abandoned:8d}")
    return "\n".join(lines)
