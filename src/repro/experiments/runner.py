"""End-to-end experiment execution.

:func:`run_experiment` stands up a fresh simulated world for one
configuration cell — cloud, virtual cluster, storage deployment,
workflow management system — executes the application, terminates the
cluster, and prices the run.  :func:`run_sweep` drives a list of cells
(one fresh world each; nothing leaks between cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..apps.templates import app_template
from ..cloud.cluster import ContextBroker
from ..cloud.ec2 import EC2Cloud
from ..cost.model import WorkflowCost, compute_cost
from ..faults import FaultCoordinator, FaultReport, RescueLog
from ..simcore.engine import Environment
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from ..storage import make_storage
from ..telemetry.metrics import NULL_REGISTRY, MetricsRegistry, install_trace_bridge
from ..telemetry.sampler import Timeline, UtilizationSampler, attach_cluster
from ..telemetry.spans import Span, SpanBuilder, spans_from_trace
from ..workflow.dag import Workflow
from ..workflow.wms import PegasusWMS, WorkflowRun
from .config import ExperimentConfig


@dataclass
class ExperimentResult:
    """Everything measured for one experiment cell."""

    config: ExperimentConfig
    run: WorkflowRun
    cost: WorkflowCost
    trace: Optional[TraceCollector] = None
    #: Per-run instrument registry (None when telemetry was disabled).
    metrics: Optional[MetricsRegistry] = None
    #: Sampled utilization timelines (None when telemetry was disabled).
    timeline: Optional[Timeline] = None
    #: What the fault layer injected/recovered (None = faults off).
    faults: Optional[FaultReport] = None

    @property
    def makespan(self) -> float:
        """Workflow wall-clock time, seconds."""
        return self.run.makespan

    @property
    def label(self) -> str:
        """The cell label."""
        return self.config.label

    @property
    def spans(self) -> List[Span]:
        """The reconstructed span forest (empty without a trace)."""
        if self.trace is None:
            return []
        return spans_from_trace(self.trace)

    def summary_row(self) -> Dict[str, object]:
        """Flat dict for result tables / CSV export."""
        return {
            "app": self.config.app,
            "storage": self.config.storage,
            "nodes": self.config.n_workers,
            "makespan_s": round(self.run.makespan, 1),
            "cost_per_hour": round(self.cost.per_hour_total, 4),
            "cost_per_second": round(self.cost.per_second_total, 4),
            "jobs": self.run.n_jobs,
            "s3_gets": self.run.storage_stats.get_requests,
            "s3_puts": self.run.storage_stats.put_requests,
            "cache_hits": self.run.storage_stats.cache_hits,
        }


def run_experiment(config: ExperimentConfig,
                   workflow: Optional[Workflow] = None,
                   rescue: Optional[RescueLog] = None) -> ExperimentResult:
    """Execute one experiment cell in a fresh simulated world.

    ``workflow`` overrides the application's default (paper-sized)
    instance — used by tests and sweeps over workflow scale.
    ``rescue`` resumes from / checkpoints to a rescue-DAG log.
    """
    ok, why = config.is_valid()
    if not ok:
        raise ValueError(f"invalid experiment {config.label}: {why}")

    telemetry_on = config.collect_traces
    trace = TraceCollector() if telemetry_on else NULL_COLLECTOR
    metrics = MetricsRegistry() if telemetry_on else NULL_REGISTRY
    install_trace_bridge(metrics, trace)
    env = Environment()
    spans = SpanBuilder(trace, env)
    exp_span = spans.begin("experiment", config.label, app=config.app,
                           storage=config.storage, nodes=config.n_workers)
    cloud = EC2Cloud(env, seed=config.seed, trace=trace)
    broker = ContextBroker(cloud, trace=trace)

    needs_nfs = config.storage == "nfs"
    cluster = broker.provision_now(
        config.n_workers,
        worker_type=config.worker_type,
        service_type=config.nfs_server_type if needs_nfs else None,
        n_service=1 if needs_nfs else 0,
        initialized_disks=config.initialized_disks,
    )

    storage = make_storage(
        config.storage, env, cloud=cloud,
        nfs_server=cluster.service_nodes[0] if needs_nfs else None,
        trace=trace,
    )
    storage.deploy(cluster.workers)

    fault_spec = config.effective_fault_spec()
    faults: Optional[FaultCoordinator] = None
    if fault_spec is not None:
        faults = FaultCoordinator(env, fault_spec, seed=config.seed,
                                  trace=trace)
        faults.attach_storage(storage)

    if workflow is None:
        # Cached frozen template: the DAG is built and validated once
        # per process, then shared by every run of the same app.
        workflow = app_template(config.app).instantiate()

    sampler: Optional[UtilizationSampler] = None
    if telemetry_on:
        sampler = UtilizationSampler(env, interval=config.sample_interval)
        attach_cluster(sampler, cluster.all_nodes, storage=storage)
        sampler.start()

    wms = PegasusWMS(
        env, cluster.workers, storage,
        scheduler=config.scheduler,
        seed=config.seed,
        cpu_jitter_sigma=config.cpu_jitter_sigma,
        task_failure_rate=config.task_failure_rate,
        retries=config.retries,
        fault_coordinator=faults,
        halt_on_failure=config.halt_on_failure,
        trace=trace,
    )
    run = wms.execute(workflow, parent_span=exp_span if telemetry_on else None,
                      rescue=rescue)
    if sampler is not None:
        sampler.sample_now()  # final reading at workflow completion
        sampler.stop()
    cloud.terminate_all()
    spans.end(exp_span)

    stored_gb = workflow.total_files_bytes() / 1e9 \
        if hasattr(workflow, "total_files_bytes") else \
        sum(m.size for m in workflow.files.values()) / 1e9
    cost = compute_cost(
        cloud.billing, storage.stats, storage.name,
        makespan=run.makespan, stored_gb=stored_gb, at=env.now,
    )
    if telemetry_on:
        _set_summary_gauges(metrics, config, run, cost)
    return ExperimentResult(
        config=config, run=run, cost=cost,
        trace=trace if telemetry_on else None,
        metrics=metrics if telemetry_on else None,
        timeline=sampler.timeline if sampler is not None else None,
        faults=faults.report() if faults is not None else None,
    )


def _set_summary_gauges(metrics: MetricsRegistry, config: ExperimentConfig,
                        run: WorkflowRun, cost: WorkflowCost) -> None:
    """Publish the per-run summary gauges (shared with rehydration)."""
    makespan_g = metrics.gauge(
        "experiment_makespan_seconds", "workflow wall-clock time")
    makespan_g.set(run.makespan, app=config.app,
                   storage=config.storage, nodes=config.n_workers)
    cost_g = metrics.gauge(
        "experiment_cost_usd", "run cost by billing model")
    cost_g.set(cost.per_hour_total, billing="hour")
    cost_g.set(cost.per_second_total, billing="second")


@dataclass
class _SweepEnvelope:
    """Picklable result of one sweep cell run in a worker process.

    Live :class:`ExperimentResult` objects cannot cross a process
    boundary — the trace collector carries closure subscribers (the
    metrics bridge) and the registry holds live instrument objects.
    The envelope ships only plain data: the raw trace tuples plus the
    side artifacts; the parent replays the trace through a fresh
    collector + bridge, reconstructing bit-identical telemetry.
    """

    config: ExperimentConfig
    run: WorkflowRun
    cost: WorkflowCost
    #: ``(time, category, event, fields)`` rows, or None (telemetry off).
    trace_records: Optional[List[tuple]]
    #: The worker collector's id counter (span ids continue from here).
    trace_next_id: int
    timeline: Optional[Timeline]
    faults: Optional[FaultReport]


def _sweep_cell(payload) -> _SweepEnvelope:
    """Worker entry point: run one cell, return its envelope."""
    config, workflow, factory = payload
    if workflow is None and factory is not None:
        workflow = factory(config.app)
    result = run_experiment(config, workflow=workflow)
    trace = result.trace
    return _SweepEnvelope(
        config=result.config,
        run=result.run,
        cost=result.cost,
        trace_records=[(r.time, r.category, r.event, r.fields)
                       for r in trace.records] if trace is not None else None,
        trace_next_id=trace._next_id if trace is not None else 0,
        timeline=result.timeline,
        faults=result.faults,
    )


def _rehydrate(envelope: _SweepEnvelope) -> ExperimentResult:
    """Rebuild a full ExperimentResult from a worker envelope.

    Replaying the raw records through a fresh collector with the
    metrics bridge installed reproduces exactly the trace indexes and
    instrument values the serial path would have built — the bridge is
    a pure function of the record stream.
    """
    if envelope.trace_records is None:
        return ExperimentResult(
            config=envelope.config, run=envelope.run, cost=envelope.cost,
            timeline=envelope.timeline, faults=envelope.faults)
    trace = TraceCollector()
    metrics = MetricsRegistry()
    install_trace_bridge(metrics, trace)
    emit = trace.emit
    for time, category, event, fields in envelope.trace_records:
        emit(time, category, event, **fields)
    trace._next_id = envelope.trace_next_id
    _set_summary_gauges(metrics, envelope.config, envelope.run, envelope.cost)
    return ExperimentResult(
        config=envelope.config, run=envelope.run, cost=envelope.cost,
        trace=trace, metrics=metrics,
        timeline=envelope.timeline, faults=envelope.faults)


def run_sweep(configs: Iterable[ExperimentConfig],
              workflow_factory: Optional[Callable[[str], Workflow]] = None,
              progress: Optional[Callable[[ExperimentResult], None]] = None,
              jobs: int = 1,
              workflow: Optional[Workflow] = None,
              ) -> List[ExperimentResult]:
    """Run many cells; each gets its own fresh simulated world.

    ``workflow_factory(app_name)`` can supply down-scaled workflows for
    quick sweeps; ``workflow`` fixes one explicit workflow for every
    cell instead (mutually exclusive with the factory).  ``progress``
    is called after each cell, in config order.

    ``jobs > 1`` runs cells in up to that many worker processes.  The
    returned list is always in config order and — because every cell is
    a fresh, fully deterministic world — bit-identical to a serial
    sweep, including the telemetry of each result (see
    :class:`_SweepEnvelope`).  With ``jobs > 1`` the factory must be
    picklable (a module-level function, not a lambda).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if workflow is not None and workflow_factory is not None:
        raise ValueError("pass workflow or workflow_factory, not both")
    configs = list(configs)

    if jobs == 1 or len(configs) <= 1:
        results = []
        for config in configs:
            wf = workflow if workflow is not None else (
                workflow_factory(config.app) if workflow_factory else None)
            result = run_experiment(config, workflow=wf)
            results.append(result)
            if progress is not None:
                progress(result)
        return results

    from concurrent.futures import ProcessPoolExecutor

    payloads = [(config, workflow, workflow_factory) for config in configs]
    results = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(configs))) as pool:
        # map() yields in submission order regardless of completion
        # order, so result order (and progress callbacks) match serial.
        for envelope in pool.map(_sweep_cell, payloads):
            result = _rehydrate(envelope)
            results.append(result)
            if progress is not None:
                progress(result)
    return results
