"""End-to-end experiment execution.

:func:`run_experiment` stands up a fresh simulated world for one
configuration cell — cloud, virtual cluster, storage deployment,
workflow management system — executes the application, terminates the
cluster, and prices the run.  :func:`run_sweep` drives a list of cells
(one fresh world each; nothing leaks between cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..apps.templates import app_template
from ..cloud.cluster import ContextBroker
from ..cloud.ec2 import EC2Cloud
from ..cost.model import WorkflowCost, compute_cost
from ..faults import FaultCoordinator, FaultReport, RescueLog
from ..observe import hostclock
from ..observe.flight import (DEFAULT_RING_CAPACITY, FlightRecorder,
                              crash_bundle, write_crash_bundle)
from ..observe.monitor import SweepMonitor
from ..observe.profiles import capture_profile
from ..simcore.engine import Environment
from ..simcore.tracing import NULL_COLLECTOR, TraceCollector
from ..storage import make_storage
from ..telemetry.metrics import NULL_REGISTRY, MetricsRegistry, install_trace_bridge
from ..telemetry.sampler import Timeline, UtilizationSampler, attach_cluster
from ..telemetry.spans import Span, SpanBuilder, spans_from_trace
from ..workflow.dag import Workflow
from ..workflow.wms import PegasusWMS, WorkflowRun
from .config import ExperimentConfig


class CellError(RuntimeError):
    """One or more sweep cells failed.

    Raised by :func:`run_sweep` (unless ``keep_going``) after the whole
    sweep has been driven and every failure recorded; ``failures``
    holds one dict per failed cell — ``index``, ``label``, ``digest``,
    the ``error`` record (type/message/traceback), and the crash
    ``bundle`` path when ``--crash-dir`` was active.  The exception
    message is a single line, suitable for a CLI exit summary; the full
    tracebacks live in the failure dicts and the bundles.
    """

    def __init__(self, failures: List[Dict[str, Any]]) -> None:
        self.failures = failures
        parts = [f"cell {f['index']} {f['label']} "
                 f"[{f['error']['type']}: {f['error']['message']}]"
                 for f in failures]
        noun = "cell" if len(failures) == 1 else "cells"
        super().__init__(f"{len(failures)} sweep {noun} failed: "
                         + "; ".join(parts))


@dataclass
class ObserveOptions:
    """Host-side observability configuration for :func:`run_sweep`.

    All features default off; a default-constructed instance makes
    ``run_sweep`` behave exactly as if no options were passed.  None of
    these options can alter simulation results — they only observe.
    """

    #: Receives every lifecycle transition (events/progress/summary).
    monitor: Optional[SweepMonitor] = None
    #: Directory for crash bundles of failed cells (created on demand).
    crash_dir: Optional[str] = None
    #: Keep a flight-recorder ring in every worker even without a
    #: crash dir (the ring is only *persisted* via ``crash_dir``).
    flight: bool = False
    flight_capacity: int = DEFAULT_RING_CAPACITY
    #: ``off`` or ``cprofile`` (host-CPU profile per cell).
    profile: str = "off"
    #: In-process re-runs of a failed cell before it counts as failed
    #: (guards against host-level transients; the sim is deterministic).
    cell_retries: int = 0
    #: Collect failures and return ``None`` placeholders instead of
    #: raising :class:`CellError` at the end of the sweep.
    keep_going: bool = False

    def active(self) -> bool:
        """Whether any observability feature is switched on."""
        return (self.monitor is not None or self.crash_dir is not None
                or self.flight or self.profile != "off"
                or self.cell_retries > 0 or self.keep_going)

    def flight_enabled(self) -> bool:
        """Ring buffers are on explicitly or implied by a crash dir."""
        return self.flight or self.crash_dir is not None


@dataclass
class ExperimentResult:
    """Everything measured for one experiment cell."""

    config: ExperimentConfig
    run: WorkflowRun
    cost: WorkflowCost
    trace: Optional[TraceCollector] = None
    #: Per-run instrument registry (None when telemetry was disabled).
    metrics: Optional[MetricsRegistry] = None
    #: Sampled utilization timelines (None when telemetry was disabled).
    timeline: Optional[Timeline] = None
    #: What the fault layer injected/recovered (None = faults off).
    faults: Optional[FaultReport] = None

    @property
    def makespan(self) -> float:
        """Workflow wall-clock time, seconds."""
        return self.run.makespan

    @property
    def label(self) -> str:
        """The cell label."""
        return self.config.label

    @property
    def spans(self) -> List[Span]:
        """The reconstructed span forest (empty without a trace)."""
        if self.trace is None:
            return []
        return spans_from_trace(self.trace)

    def summary_row(self) -> Dict[str, object]:
        """Flat dict for result tables / CSV export."""
        return {
            "app": self.config.app,
            "storage": self.config.storage,
            "nodes": self.config.n_workers,
            "makespan_s": round(self.run.makespan, 1),
            "cost_per_hour": round(self.cost.per_hour_total, 4),
            "cost_per_second": round(self.cost.per_second_total, 4),
            "jobs": self.run.n_jobs,
            "s3_gets": self.run.storage_stats.get_requests,
            "s3_puts": self.run.storage_stats.put_requests,
            "cache_hits": self.run.storage_stats.cache_hits,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Lossless, schema-versioned JSON (see
        :mod:`repro.experiments.serialize`)."""
        from .serialize import result_to_json
        return result_to_json(self, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result serialized by :meth:`to_json`."""
        from .serialize import result_from_json
        return result_from_json(text)


def run_experiment(config: ExperimentConfig,
                   workflow: Optional[Workflow] = None,
                   rescue: Optional[RescueLog] = None,
                   trace: Optional[TraceCollector] = None
                   ) -> ExperimentResult:
    """Execute one experiment cell in a fresh simulated world.

    ``workflow`` overrides the application's default (paper-sized)
    instance — used by tests and sweeps over workflow scale.
    ``rescue`` resumes from / checkpoints to a rescue-DAG log.
    ``trace`` supplies an external collector (the flight recorder's) so
    observers see kernel events even when ``collect_traces`` is off;
    the *result's* trace/metrics fields stay keyed to
    ``config.collect_traces`` regardless, and an external collector is
    purely a passive subscriber — it cannot change the run.
    """
    ok, why = config.is_valid()
    if not ok:
        raise ValueError(f"invalid experiment {config.label}: {why}")

    telemetry_on = config.collect_traces
    if trace is None:
        trace = TraceCollector() if telemetry_on else NULL_COLLECTOR
    metrics = MetricsRegistry() if telemetry_on else NULL_REGISTRY
    install_trace_bridge(metrics, trace)
    env = Environment()
    spans = SpanBuilder(trace, env)
    exp_span = spans.begin("experiment", config.label, app=config.app,
                           storage=config.storage, nodes=config.n_workers)
    cloud = EC2Cloud(env, seed=config.seed, trace=trace)
    broker = ContextBroker(cloud, trace=trace)

    needs_nfs = config.storage == "nfs"
    cluster = broker.provision_now(
        config.n_workers,
        worker_type=config.worker_type,
        service_type=config.nfs_server_type if needs_nfs else None,
        n_service=1 if needs_nfs else 0,
        initialized_disks=config.initialized_disks,
    )

    storage = make_storage(
        config.storage, env, cloud=cloud,
        nfs_server=cluster.service_nodes[0] if needs_nfs else None,
        trace=trace,
    )
    storage.deploy(cluster.workers)

    fault_spec = config.effective_fault_spec()
    faults: Optional[FaultCoordinator] = None
    if fault_spec is not None:
        faults = FaultCoordinator(env, fault_spec, seed=config.seed,
                                  trace=trace)
        faults.attach_storage(storage)

    if workflow is None:
        # Cached frozen template: the DAG is built and validated once
        # per process, then shared by every run of the same app.
        workflow = app_template(config.app).instantiate()

    sampler: Optional[UtilizationSampler] = None
    if telemetry_on:
        sampler = UtilizationSampler(env, interval=config.sample_interval)
        attach_cluster(sampler, cluster.all_nodes, storage=storage)
        sampler.start()

    wms = PegasusWMS(
        env, cluster.workers, storage,
        scheduler=config.scheduler,
        seed=config.seed,
        cpu_jitter_sigma=config.cpu_jitter_sigma,
        task_failure_rate=config.task_failure_rate,
        retries=config.retries,
        fault_coordinator=faults,
        halt_on_failure=config.halt_on_failure,
        trace=trace,
    )
    run = wms.execute(workflow, parent_span=exp_span if telemetry_on else None,
                      rescue=rescue)
    if sampler is not None:
        sampler.sample_now()  # final reading at workflow completion
        sampler.stop()
    cloud.terminate_all()
    spans.end(exp_span)

    stored_gb = workflow.total_files_bytes() / 1e9 \
        if hasattr(workflow, "total_files_bytes") else \
        sum(m.size for m in workflow.files.values()) / 1e9
    cost = compute_cost(
        cloud.billing, storage.stats, storage.name,
        makespan=run.makespan, stored_gb=stored_gb, at=env.now,
    )
    if telemetry_on:
        _set_summary_gauges(metrics, config, run, cost)
    return ExperimentResult(
        config=config, run=run, cost=cost,
        trace=trace if telemetry_on else None,
        metrics=metrics if telemetry_on else None,
        timeline=sampler.timeline if sampler is not None else None,
        faults=faults.report() if faults is not None else None,
    )


def _set_summary_gauges(metrics: MetricsRegistry, config: ExperimentConfig,
                        run: WorkflowRun, cost: WorkflowCost) -> None:
    """Publish the per-run summary gauges (shared with rehydration)."""
    makespan_g = metrics.gauge(
        "experiment_makespan_seconds", "workflow wall-clock time")
    makespan_g.set(run.makespan, app=config.app,
                   storage=config.storage, nodes=config.n_workers)
    cost_g = metrics.gauge(
        "experiment_cost_usd", "run cost by billing model")
    cost_g.set(cost.per_hour_total, billing="hour")
    cost_g.set(cost.per_second_total, billing="second")


@dataclass
class _CellObserve:
    """Picklable per-cell observability switches shipped to workers."""

    flight: bool = False
    flight_capacity: int = DEFAULT_RING_CAPACITY
    profile: str = "off"


@dataclass
class _SweepEnvelope:
    """Picklable result of one sweep cell run in a worker process.

    Live :class:`ExperimentResult` objects cannot cross a process
    boundary — the trace collector carries closure subscribers (the
    metrics bridge) and the registry holds live instrument objects.
    The envelope ships only plain data: the raw trace tuples plus the
    side artifacts; the parent replays the trace through a fresh
    collector + bridge, reconstructing bit-identical telemetry.

    The host-side fields (``wall_*``, ``peak_rss``, ``profile_stats``,
    ``error``) feed the sweep monitor and flight recorder only; none of
    them ever reaches the deterministic result or its telemetry.
    """

    index: int
    config: ExperimentConfig
    run: Optional[WorkflowRun]
    cost: Optional[WorkflowCost]
    #: ``(time, category, event, fields)`` rows, or None (telemetry off).
    trace_records: Optional[List[tuple]]
    #: The worker collector's id counter (span ids continue from here).
    trace_next_id: int
    timeline: Optional[Timeline]
    faults: Optional[FaultReport]
    #: Host epoch seconds when the worker picked the cell up.
    wall_start: float = 0.0
    #: Host wall-clock duration of the cell, seconds.
    wall_seconds: float = 0.0
    #: Worker peak RSS in bytes at cell completion (process-wide high
    #: water mark — monotone within one worker process).
    peak_rss: int = 0
    #: pstats tables captured under ``--profile cprofile``.
    profile_stats: Optional[List[Dict[Any, Any]]] = None
    #: Crash bundle dict when the cell raised (run/cost are None then).
    error: Optional[Dict[str, Any]] = None


def _sweep_cell(payload) -> _SweepEnvelope:
    """Worker entry point: run one cell, return its envelope.

    Never raises: a failing cell comes back as an envelope whose
    ``error`` field is a ready-to-write crash bundle (traceback,
    scenario config + digest, flight-recorder ring, partial metrics),
    so ``pool.map`` keeps yielding the remaining cells.
    """
    index, config, workflow, factory, obs = payload
    obs = obs or _CellObserve()
    wall_start = hostclock.wall_now()
    t0 = hostclock.monotonic()
    recorder = FlightRecorder(obs.flight_capacity) if obs.flight else None
    profile_sink: List[Dict[Any, Any]] = []
    try:
        if workflow is None and factory is not None:
            workflow = factory(config.app)
        ext_trace = recorder.trace if recorder is not None else None
        if obs.profile == "cprofile":
            with capture_profile(profile_sink):
                result = run_experiment(config, workflow=workflow,
                                        trace=ext_trace)
        else:
            result = run_experiment(config, workflow=workflow,
                                    trace=ext_trace)
    # Catching everything here is the point: a worker must convert any
    # cell failure (Interrupt and deadlock included) into an error
    # envelope so pool.map keeps yielding the remaining cells, and the
    # exception is preserved verbatim inside the crash bundle.
    except Exception as exc:  # lint: ignore[SIM007]
        return _SweepEnvelope(
            index=index, config=config, run=None, cost=None,
            trace_records=None, trace_next_id=0, timeline=None,
            faults=None, wall_start=wall_start,
            wall_seconds=hostclock.monotonic() - t0,
            peak_rss=hostclock.peak_rss_bytes(),
            profile_stats=profile_sink or None,
            error=crash_bundle(config, index, exc, recorder),
        )
    trace = result.trace
    return _SweepEnvelope(
        index=index,
        config=result.config,
        run=result.run,
        cost=result.cost,
        trace_records=[(r.time, r.category, r.event, r.fields)
                       for r in trace.records] if trace is not None else None,
        trace_next_id=trace._next_id if trace is not None else 0,
        timeline=result.timeline,
        faults=result.faults,
        wall_start=wall_start,
        wall_seconds=hostclock.monotonic() - t0,
        peak_rss=hostclock.peak_rss_bytes(),
        profile_stats=profile_sink or None,
    )


def _rehydrate(envelope: _SweepEnvelope) -> ExperimentResult:
    """Rebuild a full ExperimentResult from a worker envelope.

    Replaying the raw records through a fresh collector with the
    metrics bridge installed reproduces exactly the trace indexes and
    instrument values the serial path would have built — the bridge is
    a pure function of the record stream.
    """
    if envelope.trace_records is None:
        return ExperimentResult(
            config=envelope.config, run=envelope.run, cost=envelope.cost,
            timeline=envelope.timeline, faults=envelope.faults)
    trace = TraceCollector()
    metrics = MetricsRegistry()
    install_trace_bridge(metrics, trace)
    emit = trace.emit
    for time, category, event, fields in envelope.trace_records:
        emit(time, category, event, **fields)
    trace._next_id = envelope.trace_next_id
    _set_summary_gauges(metrics, envelope.config, envelope.run, envelope.cost)
    return ExperimentResult(
        config=envelope.config, run=envelope.run, cost=envelope.cost,
        trace=trace, metrics=metrics,
        timeline=envelope.timeline, faults=envelope.faults)


def run_sweep(configs: Iterable[ExperimentConfig],
              workflow_factory: Optional[Callable[[str], Workflow]] = None,
              progress: Optional[Callable[[ExperimentResult], None]] = None,
              jobs: int = 1,
              workflow: Optional[Workflow] = None,
              observe: Optional[ObserveOptions] = None,
              cache: Optional[Any] = None,
              ) -> List[Optional[ExperimentResult]]:
    """Run many cells; each gets its own fresh simulated world.

    ``workflow_factory(app_name)`` can supply down-scaled workflows for
    quick sweeps; ``workflow`` fixes one explicit workflow for every
    cell instead (mutually exclusive with the factory).  ``progress``
    is called after each cell, in config order.

    ``jobs > 1`` runs cells in up to that many worker processes.  The
    returned list is always in config order and — because every cell is
    a fresh, fully deterministic world — bit-identical to a serial
    sweep, including the telemetry of each result (see
    :class:`_SweepEnvelope`).  With ``jobs > 1`` the factory must be
    picklable (a module-level function, not a lambda).

    ``observe`` switches on host-side observability (monitor/event log,
    flight recorder + crash bundles, profiling, retries); see
    :class:`ObserveOptions`.  A cell that raises is recorded (bundle
    written, ``cell_failed`` event emitted) and — after the whole sweep
    has been driven — the first-failure behaviour is a single
    :class:`CellError` listing every failed cell.  With ``keep_going``
    the sweep instead returns ``None`` placeholders at failed indexes.

    ``cache`` is a content-addressed cell cache (anything with the
    :class:`repro.service.cache.CellCache` ``get(config)``/
    ``put(config, result)`` shape).  Every cell is looked up by its
    ``config.digest()`` before any world is built; hits are served
    without simulating (zero kernel events) and misses are stored
    after the run, so a repeated sweep is O(new cells).  The cache
    counts ``sweep_cache_hits_total`` / ``sweep_cache_misses_total``
    per lookup.  Caching only ever changes *whether* a cell is
    simulated, never its result: a hit is the losslessly round-tripped
    result of an earlier run of the same scenario, and serial vs
    parallel sweeps populate identical cache contents.  The cache is
    deliberately *not* used for cells that fail — only completed
    results are stored.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if workflow is not None and workflow_factory is not None:
        raise ValueError("pass workflow or workflow_factory, not both")
    configs = list(configs)
    opts = observe if observe is not None else ObserveOptions()
    if opts.profile not in ("off", "cprofile"):
        raise ValueError(f"unknown profile mode {opts.profile!r}")

    # Content-addressed lookup happens up front, in config order, so
    # hit/miss counters are deterministic and no worker process is ever
    # spawned for a cell the store can already answer.
    cached: Dict[int, ExperimentResult] = {}
    if cache is not None:
        for index, config in enumerate(configs):
            hit = cache.get(config)
            if hit is not None:
                cached[index] = hit

    if not opts.active() and (jobs == 1 or len(configs) <= 1):
        # Fast path, byte-for-byte the historical behaviour: no
        # envelope round-trip, results carry their live collectors.
        results: List[Optional[ExperimentResult]] = []
        for index, config in enumerate(configs):
            result = cached.get(index)
            if result is None:
                wf = workflow if workflow is not None else (
                    workflow_factory(config.app) if workflow_factory
                    else None)
                result = run_experiment(config, workflow=wf)
                if cache is not None:
                    cache.put(config, result)
            results.append(result)
            if progress is not None:
                progress(result)
        return results

    cell_obs = _CellObserve(flight=opts.flight_enabled(),
                            flight_capacity=opts.flight_capacity,
                            profile=opts.profile)
    payloads = [(i, config, workflow, workflow_factory, cell_obs)
                for i, config in enumerate(configs)]
    monitor = opts.monitor
    results = []
    failures: List[Dict[str, Any]] = []

    if monitor is not None:
        monitor.sweep_started(len(configs), jobs)
    try:
        if jobs == 1 or len(configs) - len(cached) <= 1:
            for payload in payloads:
                if monitor is not None:
                    monitor.cell_scheduled(payload[0], payload[1])
                if payload[0] in cached:
                    results.append(_consume_cached(
                        payload[0], payload[1], cached[payload[0]],
                        opts, progress))
                    continue
                envelope = _run_with_retries(payload, opts)
                results.append(_consume_envelope(
                    envelope, opts, progress, failures, cache=cache))
        else:
            from concurrent.futures import ProcessPoolExecutor

            if monitor is not None:
                for index, config in enumerate(configs):
                    monitor.cell_scheduled(index, config)
            miss_payloads = [p for p in payloads if p[0] not in cached]
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(miss_payloads))) as pool:
                # map() yields in submission order regardless of
                # completion order; interleaving the cached indexes
                # back in keeps result order (and progress callbacks)
                # identical to serial.
                envelopes = pool.map(_sweep_cell, miss_payloads)
                for index, config in enumerate(configs):
                    if index in cached:
                        results.append(_consume_cached(
                            index, config, cached[index], opts, progress))
                        continue
                    envelope = next(envelopes)
                    if envelope.error is not None and opts.cell_retries:
                        envelope = _run_with_retries(
                            payloads[envelope.index], opts,
                            first=envelope)
                    results.append(_consume_envelope(
                        envelope, opts, progress, failures, cache=cache))
    finally:
        if monitor is not None:
            monitor.sweep_finished()
    if failures and not opts.keep_going:
        raise CellError(failures)
    return results


def _run_with_retries(payload, opts: ObserveOptions,
                      first: Optional[_SweepEnvelope] = None
                      ) -> _SweepEnvelope:
    """Run one cell in-process, retrying failures up to cell_retries.

    The simulation itself is deterministic, so a retry only helps
    against *host*-level transients (an OOM-killed worker, a full
    tmpdir); each attempt is announced via ``cell_retried``.
    """
    envelope = first if first is not None else _sweep_cell(payload)
    attempt = 0
    while envelope.error is not None and attempt < opts.cell_retries:
        attempt += 1
        if opts.monitor is not None:
            opts.monitor.cell_retried(payload[0], payload[1], attempt)
        envelope = _sweep_cell(payload)
    return envelope


def _consume_cached(index: int, config: ExperimentConfig,
                    result: ExperimentResult, opts: ObserveOptions,
                    progress: Optional[Callable[[ExperimentResult], None]]
                    ) -> ExperimentResult:
    """Fold one cache hit into monitor events and the result list.

    A hit costs no simulation, so its lifecycle collapses to an
    immediate started/finished pair with zero wall-clock attributed.
    """
    monitor = opts.monitor
    if monitor is not None:
        monitor.cell_started(index, config)
        monitor.cell_finished(index, config, wall_seconds=0.0, peak_rss=0)
    if progress is not None:
        progress(result)
    return result


def _consume_envelope(envelope: _SweepEnvelope, opts: ObserveOptions,
                      progress: Optional[Callable[[ExperimentResult], None]],
                      failures: List[Dict[str, Any]],
                      cache: Optional[Any] = None
                      ) -> Optional[ExperimentResult]:
    """Fold one envelope into monitor events, bundles, and a result.

    ``cell_started`` is emitted here — retrospectively, at completion —
    because a process pool gives the parent no signal when a worker
    actually picks a cell up; the event's host ordering is therefore
    schedule-accurate, not start-accurate (the worker-observed start
    time is preserved in ``wall_start``).
    """
    monitor = opts.monitor
    config = envelope.config
    if monitor is not None:
        monitor.cell_started(envelope.index, config)
        for table in envelope.profile_stats or []:
            monitor.add_profile_stats(table)
    if envelope.error is not None:
        bundle_path: Optional[str] = None
        if opts.crash_dir is not None:
            bundle_path = write_crash_bundle(opts.crash_dir, envelope.error)
        err = envelope.error["error"]
        failures.append({
            "index": envelope.index,
            "label": config.label,
            "digest": envelope.error["digest"],
            "error": err,
            "bundle": bundle_path,
        })
        if monitor is not None:
            monitor.cell_failed(
                envelope.index, config,
                error=f"{err['type']}: {err['message']}",
                wall_seconds=envelope.wall_seconds,
                peak_rss=envelope.peak_rss,
                bundle_path=bundle_path)
        return None
    result = _rehydrate(envelope)
    if cache is not None:
        cache.put(config, result)
    if monitor is not None:
        monitor.cell_finished(envelope.index, config,
                              wall_seconds=envelope.wall_seconds,
                              peak_rss=envelope.peak_rss)
    if progress is not None:
        progress(result)
    return result
