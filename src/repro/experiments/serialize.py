"""Lossless JSON round-trip for :class:`ExperimentResult`.

The service layer (``repro.service``) persists full experiment results
in a content-addressed store keyed by ``ExperimentConfig.digest()`` and
serves them back over HTTP, so the serialized form must reconstruct a
result that is *indistinguishable* from the freshly-simulated one:
same makespan and cost to the last bit, same telemetry (metrics
snapshot, Prometheus exposition, spans), same fault report.

Design notes
------------

* **Versioned.**  Every document carries ``schema``
  (:data:`RESULT_SCHEMA_VERSION`); readers reject unknown versions
  instead of guessing.
* **No precision loss.**  ``json.dumps`` emits the shortest
  round-trip ``repr`` for floats, so every float survives exactly;
  nothing is ever formatted through ``str()``/``repr()`` into a lossy
  string field.
* **Telemetry by replay.**  A live :class:`TraceCollector` carries
  closure subscribers and the registry holds live instruments, so the
  document stores the raw ``(time, category, event, fields)`` records
  and :func:`result_from_dict` replays them through a fresh collector
  with the metrics bridge installed — the same mechanism the parallel
  sweep uses to ship results across process boundaries
  (:class:`repro.experiments.runner._SweepEnvelope`), which is proven
  bit-identical by the PR-4 regression tests.
* **The one exclusion: ``run.plan``.**  The executable plan holds the
  live storage deployment and workflow objects of the simulated world;
  it is a planning artifact, not a measurement, and nothing downstream
  of a finished run reads it.  Serialized results carry ``plan: None``.

:func:`result_digest` hashes the canonical document — two results with
equal digests are interchangeable, which is the equality the service
acceptance test pins for warm-cache resubmission.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Dict, Optional

from ..cloud.billing import CostBreakdown
from ..cost.model import WorkflowCost
from ..cost.pricing import S3Fees
from ..faults.injector import FaultReport
from ..simcore.tracing import TraceCollector
from ..storage.base import StorageStats
from ..telemetry.metrics import MetricsRegistry, install_trace_bridge
from ..telemetry.sampler import Timeline
from ..workflow.executor import JobRecord
from ..workflow.wms import WorkflowRun
from .config import ExperimentConfig
from .runner import ExperimentResult, _set_summary_gauges

#: Bump when a field is added/renamed/retyped; readers key on it.
RESULT_SCHEMA_VERSION = 1


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """The JSON-compatible document for one experiment result."""
    run = result.run
    trace = result.trace
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "config": result.config.to_dict(),
        "run": {
            "workflow_name": run.workflow_name,
            "storage_name": run.storage_name,
            "n_workers": run.n_workers,
            "start_time": run.start_time,
            "end_time": run.end_time,
            "records": [asdict(r) for r in run.records],
            "storage_stats": asdict(run.storage_stats),
            "abandoned_jobs": list(run.abandoned_jobs),
            "rescued_jobs": list(run.rescued_jobs),
        },
        "cost": {
            "resource": asdict(result.cost.resource),
            "s3_fees": (asdict(result.cost.s3_fees)
                        if result.cost.s3_fees is not None else None),
        },
        "trace": None if trace is None else {
            "records": [[r.time, r.category, r.event, r.fields]
                        for r in trace.records],
            "next_id": trace._next_id,
        },
        "timeline": (result.timeline.as_dict()
                     if result.timeline is not None else None),
        "faults": (asdict(result.faults)
                   if result.faults is not None else None),
    }


def result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Rebuild a full :class:`ExperimentResult` from its document."""
    schema = data.get("schema")
    if schema != RESULT_SCHEMA_VERSION:
        raise ValueError(f"unsupported result schema {schema!r} "
                         f"(expected {RESULT_SCHEMA_VERSION})")
    config = ExperimentConfig.from_dict(data["config"])
    raw_run = data["run"]
    run = WorkflowRun(
        workflow_name=raw_run["workflow_name"],
        storage_name=raw_run["storage_name"],
        n_workers=raw_run["n_workers"],
        start_time=raw_run["start_time"],
        end_time=raw_run["end_time"],
        records=[JobRecord(**r) for r in raw_run["records"]],
        storage_stats=StorageStats(**raw_run["storage_stats"]),
        abandoned_jobs=list(raw_run["abandoned_jobs"]),
        rescued_jobs=list(raw_run["rescued_jobs"]),
    )
    raw_cost = data["cost"]
    cost = WorkflowCost(
        resource=CostBreakdown(**raw_cost["resource"]),
        s3_fees=(S3Fees(**raw_cost["s3_fees"])
                 if raw_cost["s3_fees"] is not None else None),
    )
    trace: Optional[TraceCollector] = None
    metrics: Optional[MetricsRegistry] = None
    if data["trace"] is not None:
        trace = TraceCollector()
        metrics = MetricsRegistry()
        install_trace_bridge(metrics, trace)
        emit = trace.emit
        for time, category, event, fields in data["trace"]["records"]:
            emit(time, category, event, **fields)
        trace._next_id = data["trace"]["next_id"]
        _set_summary_gauges(metrics, config, run, cost)
    timeline: Optional[Timeline] = None
    if data["timeline"] is not None:
        timeline = Timeline()
        timeline.times = list(data["timeline"]["times"])
        timeline.series = {k: list(v)
                           for k, v in data["timeline"]["series"].items()}
    faults: Optional[FaultReport] = None
    if data["faults"] is not None:
        faults = FaultReport(**data["faults"])
    return ExperimentResult(config=config, run=run, cost=cost,
                            trace=trace, metrics=metrics,
                            timeline=timeline, faults=faults)


def result_to_json(result: ExperimentResult,
                   indent: Optional[int] = None) -> str:
    """Canonical JSON text (sorted keys; compact when ``indent=None``).

    Canonical means: serializing the same measurements always yields
    the same bytes, so stored payloads can be compared with ``==`` and
    content-hashed with :func:`result_digest`.
    """
    separators = (",", ":") if indent is None else (",", ": ")
    return json.dumps(result_to_dict(result), indent=indent,
                      separators=separators, sort_keys=True)


def result_from_json(text: str) -> ExperimentResult:
    """Parse the output of :func:`result_to_json`."""
    return result_from_dict(json.loads(text))


def result_digest(result: ExperimentResult) -> str:
    """Content hash (hex sha256) of the canonical result document.

    Stable across serialize/deserialize cycles: a result loaded from
    the store digests identically to the run that produced it.
    """
    payload = result_to_json(result)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
