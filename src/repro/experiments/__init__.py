"""Experiment harness: configuration cells, runner, result tables."""

from .config import (
    PAPER_APPS,
    PAPER_NODE_COUNTS,
    PAPER_STORAGE_SYSTEMS,
    ExperimentConfig,
    paper_matrix,
)
from .faultsweep import FaultSweepPoint, fault_inflation_sweep, format_fault_sweep
from .report import ReproductionReport, build_report
from .runner import (CellError, ExperimentResult, ObserveOptions,
                     run_experiment, run_sweep)
from .serialize import (RESULT_SCHEMA_VERSION, result_digest,
                        result_from_json, result_to_json)

__all__ = [
    "CellError",
    "ExperimentConfig",
    "ExperimentResult",
    "ObserveOptions",
    "FaultSweepPoint",
    "PAPER_APPS",
    "PAPER_NODE_COUNTS",
    "PAPER_STORAGE_SYSTEMS",
    "RESULT_SCHEMA_VERSION",
    "ReproductionReport",
    "build_report",
    "fault_inflation_sweep",
    "format_fault_sweep",
    "paper_matrix",
    "result_digest",
    "result_from_json",
    "result_to_json",
    "run_experiment",
    "run_sweep",
]
