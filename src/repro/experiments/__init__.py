"""Experiment harness: configuration cells, runner, result tables."""

from .config import (
    PAPER_APPS,
    PAPER_NODE_COUNTS,
    PAPER_STORAGE_SYSTEMS,
    ExperimentConfig,
    paper_matrix,
)
from .report import ReproductionReport, build_report
from .runner import ExperimentResult, run_experiment, run_sweep

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "PAPER_APPS",
    "PAPER_NODE_COUNTS",
    "PAPER_STORAGE_SYSTEMS",
    "ReproductionReport",
    "build_report",
    "paper_matrix",
    "run_experiment",
    "run_sweep",
]
