"""Experiment configuration.

One :class:`ExperimentConfig` describes one cell of the paper's
evaluation matrix: an application, a storage system, and a cluster
size.  The paper's matrix is 3 applications x {1, 2, 4, 8} workers x
{S3, NFS, GlusterFS-NUFA, GlusterFS-distribute, PVFS} plus the
single-node local-disk point; :func:`paper_matrix` enumerates exactly
the valid cells (GlusterFS/PVFS need >= 2 nodes, local only 1, as
noted in §V).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..faults.spec import NO_FAULTS, FaultSpec

#: Worker counts the paper sweeps (8-64 cores).
PAPER_NODE_COUNTS = (1, 2, 4, 8)
#: Storage systems in the paper's figures (local is the extra point).
PAPER_STORAGE_SYSTEMS = (
    "s3",
    "nfs",
    "glusterfs-nufa",
    "glusterfs-distribute",
    "pvfs",
)
PAPER_APPS = ("montage", "epigenome", "broadband")


@dataclass(frozen=True)
class ExperimentConfig:
    """One (application, storage, cluster) experiment."""

    app: str
    storage: str
    n_workers: int
    worker_type: str = "c1.xlarge"
    #: Dedicated NFS server type; the paper's default is m1.xlarge,
    #: with one m2.4xlarge variant (§V.C).
    nfs_server_type: str = "m1.xlarge"
    scheduler: str = "fifo"
    seed: int = 0
    cpu_jitter_sigma: float = 0.0
    #: Per-attempt transient crash probability (0 = the paper's runs).
    task_failure_rate: float = 0.0
    #: DAGMan retry limit per job.
    retries: int = 3
    #: Zero-fill the ephemeral disks first (initialization ablation).
    initialized_disks: bool = False
    #: Collect full traces (slower; needed by the profiler and the
    #: telemetry layer: metrics registry, spans, utilization sampler).
    collect_traces: bool = False
    #: Utilization-sampler cadence, sim seconds (used when tracing).
    sample_interval: float = 5.0
    #: Declarative fault schedule (None = the paper's fault-free runs).
    fault_spec: Optional[FaultSpec] = None
    #: Shorthand knobs merged into ``fault_spec`` (CLI convenience):
    #: per-node mean time between failures (seconds; 0 = off) and
    #: per-operation transient storage error probability.
    node_mtbf: float = 0.0
    storage_error_rate: float = 0.0
    #: False = degrade to a partial result instead of raising
    #: WorkflowFailedError when a job exhausts its retries.
    halt_on_failure: bool = True

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.node_mtbf < 0:
            raise ValueError("node_mtbf must be >= 0")
        if not 0.0 <= self.storage_error_rate < 1.0:
            raise ValueError("storage_error_rate must be in [0, 1)")

    def effective_fault_spec(self) -> Optional[FaultSpec]:
        """The merged fault schedule, or None when faults are off.

        The scalar shortcuts (``node_mtbf``, ``storage_error_rate``)
        override the corresponding :attr:`fault_spec` fields when set.
        """
        spec = self.fault_spec
        if self.node_mtbf > 0 or self.storage_error_rate > 0:
            base = spec if spec is not None else NO_FAULTS
            spec = replace(
                base,
                node_mtbf=self.node_mtbf or base.node_mtbf,
                storage_error_rate=(self.storage_error_rate
                                    or base.storage_error_rate),
            )
        if spec is not None and not spec.enabled:
            return None
        return spec

    @property
    def label(self) -> str:
        """Human-readable cell label, e.g. ``montage/nfs@4``."""
        return f"{self.app}/{self.storage}@{self.n_workers}"

    def is_valid(self) -> Tuple[bool, str]:
        """Whether this cell is constructible, and why not if not."""
        if self.storage == "local" and self.n_workers != 1:
            return False, "local disk is only defined on a single node"
        if self.storage in ("glusterfs-nufa", "glusterfs-distribute", "pvfs") \
                and self.n_workers < 2:
            return False, f"{self.storage} needs at least two nodes"
        return True, ""

    def with_(self, **kwargs) -> "ExperimentConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-compatible; nested fault spec included)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentConfig":
        """Rebuild a config from :meth:`to_dict` output / parsed JSON.

        Rejects unknown keys loudly — a silently dropped field would
        change the scenario (and its digest) without anyone noticing.
        """
        from dataclasses import fields as dc_fields
        known = {f.name for f in dc_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ExperimentConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        spec = kwargs.get("fault_spec")
        if spec is not None and not isinstance(spec, FaultSpec):
            kwargs["fault_spec"] = FaultSpec.from_dict(spec)
        return cls(**kwargs)  # type: ignore[arg-type]

    def digest(self) -> str:
        """Stable content hash of this scenario (hex sha256).

        Computed over the canonical JSON of every field, so any two
        processes — or two sessions weeks apart — derive the same
        digest for the same configuration.  Event-log lines, crash
        bundles, and the service result store all key on it, making
        host-side artifacts joinable back to the exact scenario that
        produced them — and making the content-addressed cell cache
        (``repro.service.cache``) safe: equal digest ⇒ equal scenario
        ⇒ (by the determinism contract) bit-identical results.

        Canonicalization rules — the digest payload is
        ``json.dumps(asdict(self), sort_keys=True, default=repr)``:

        * every dataclass field participates, including defaults;
          nested dataclasses (``fault_spec`` and its crash/outage/retry
          members) are recursively converted to dicts by ``asdict``;
        * object keys are sorted at every nesting level
          (``sort_keys=True``), so field declaration order is
          irrelevant;
        * tuples and lists both serialize as JSON arrays; ints and
          floats follow JSON semantics (``json.dumps`` emits the
          shortest round-trip ``repr`` for floats, so no precision is
          dropped; note ``0`` and ``0.0`` serialize differently —
          construct configs with the declared field types);
        * any non-JSON value falls back to ``repr`` (``default=repr``);
          no current field needs this fallback, and new fields must
          keep it that way (a ``repr`` contains memory addresses for
          arbitrary objects, which would destroy digest stability);
        * the payload is UTF-8 encoded and hashed with SHA-256.

        Any change to these rules — or to the field set — silently
        invalidates every stored cache entry keyed by the old digests.
        ``tests/experiments/test_config_digest.py`` pins known digests
        so an accidental payload-format change fails loudly; bump the
        pins only for an *intentional* format change.
        """
        payload = json.dumps(asdict(self), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def paper_matrix(app: str,
                 node_counts: Optional[Tuple[int, ...]] = None,
                 storages: Optional[Tuple[str, ...]] = None,
                 include_local: bool = True,
                 **overrides) -> List[ExperimentConfig]:
    """All valid experiment cells for one application, paper-style."""
    node_counts = node_counts or PAPER_NODE_COUNTS
    storages = storages or PAPER_STORAGE_SYSTEMS
    cells: List[ExperimentConfig] = []
    if include_local:
        cells.append(ExperimentConfig(app, "local", 1, **overrides))
    for storage in storages:
        for n in node_counts:
            cfg = ExperimentConfig(app, storage, n, **overrides)
            if cfg.is_valid()[0]:
                cells.append(cfg)
    return cells
