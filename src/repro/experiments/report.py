"""One-shot reproduction report.

``build_report()`` runs the complete evaluation — Table I, Figs. 2–7,
the in-text anchors — and renders a single markdown document with every
measurement and shape-check verdict.  This is the programmatic way to
regenerate (the data behind) EXPERIMENTS.md, exposed on the CLI as
``repro-ec2 report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..profiling import format_table1, profile_records
from ..workflow.dag import Workflow
from .config import ExperimentConfig, paper_matrix
from .paper import TABLE1, TEXT_ANCHORS, check_cost_shapes, check_shapes
from .results import cost_matrix, format_figure_table, makespan_matrix
from .runner import ExperimentResult, run_experiment, run_sweep

FIGURES = {"montage": "Fig. 2", "epigenome": "Fig. 3", "broadband": "Fig. 4"}
COST_FIGURES = {"montage": "Fig. 5", "epigenome": "Fig. 6",
                "broadband": "Fig. 7"}


@dataclass
class ReproductionReport:
    """The full evaluation in one object."""

    sweeps: Dict[str, List[ExperimentResult]]
    table1_text: str
    table1_matches: Dict[str, bool]
    shape_results: Dict[str, List[Tuple[str, bool]]]
    cost_results: Dict[str, List[Tuple[str, bool]]]
    anchors: Dict[str, Tuple[float, float]]  # name -> (paper, measured)

    @property
    def all_pass(self) -> bool:
        """Every shape check, cost check, and Table I cell matched."""
        return (all(self.table1_matches.values())
                and all(ok for checks in self.shape_results.values()
                        for _, ok in checks)
                and all(ok for checks in self.cost_results.values()
                        for _, ok in checks))

    def to_markdown(self) -> str:
        """Render the whole report."""
        lines = ["# Reproduction report", ""]
        lines += ["## Table I", "", "```", self.table1_text, "```", ""]
        for app, matched in self.table1_matches.items():
            lines.append(f"- {app}: {'matches the paper' if matched else 'MISMATCH'}")
        for app, results in self.sweeps.items():
            lines += ["", f"## {FIGURES[app]} — {app} makespan", "", "```",
                      format_figure_table(
                          makespan_matrix(results),
                          f"{app} makespan (s)"), "```", ""]
            for claim, ok in self.shape_results[app]:
                lines.append(f"- [{'PASS' if ok else 'FAIL'}] {claim}")
            lines += ["", f"## {COST_FIGURES[app]} — {app} cost", "", "```",
                      format_figure_table(
                          cost_matrix(results, per='hour'),
                          f"{app} cost, per-hour billing (USD)",
                          value_format="{:8.2f}", unit="$"),
                      "",
                      format_figure_table(
                          cost_matrix(results, per='second'),
                          f"{app} cost, per-second billing (USD)",
                          value_format="{:8.2f}", unit="$"),
                      "```", ""]
            for claim, ok in self.cost_results[app]:
                lines.append(f"- [{'PASS' if ok else 'FAIL'}] {claim}")
        if self.anchors:
            lines += ["", "## Text anchors", "",
                      "| anchor | paper | measured |", "|---|---|---|"]
            for name, (paper, measured) in self.anchors.items():
                lines.append(f"| {name} | {paper:g} | {measured:.0f} |")
        lines += ["", f"**Overall: "
                  f"{'ALL CHECKS PASS' if self.all_pass else 'FAILURES PRESENT'}**"]
        return "\n".join(lines)


def build_report(apps: Tuple[str, ...] = ("montage", "epigenome", "broadband"),
                 workflow_factory: Optional[Callable[[str], Workflow]] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 ) -> ReproductionReport:
    """Run the full evaluation and collect every verdict.

    ``workflow_factory`` substitutes scaled-down workflows (quick mode);
    shape checks are then evaluated but may legitimately fail, so quick
    mode is for smoke-testing the pipeline, not for validation.
    """
    say = progress or (lambda msg: None)

    # Table I from the single-node reference runs.
    profiles = []
    table1_matches = {}
    for app in apps:
        say(f"profiling {app} (local, 1 node)")
        result = run_experiment(
            ExperimentConfig(app, "local", 1),
            workflow=workflow_factory(app) if workflow_factory else None)
        profile = profile_records(app, result.run.records)
        profiles.append(profile)
        table1_matches[app] = profile.ratings() == TABLE1.get(app, {})

    sweeps: Dict[str, List[ExperimentResult]] = {}
    shape_results: Dict[str, List[Tuple[str, bool]]] = {}
    cost_results: Dict[str, List[Tuple[str, bool]]] = {}
    for app in apps:
        say(f"sweeping {app} across storage systems and cluster sizes")
        results = run_sweep(
            paper_matrix(app),
            workflow_factory=workflow_factory,
            progress=lambda r: say(f"  {r.label}: {r.makespan:,.0f}s"))
        sweeps[app] = results
        matrix = makespan_matrix(results)
        shape_results[app] = [(c.claim, ok)
                              for c, ok in check_shapes(app, matrix)]
        cost_results[app] = [
            (c.claim, ok) for c, ok in check_cost_shapes(
                app, cost_matrix(results, "hour"),
                cost_matrix(results, "second"))]

    anchors = {}
    if "broadband" in sweeps:
        matrix = makespan_matrix(sweeps["broadband"])
        if ("nfs", 4) in matrix:
            anchors["broadband NFS @ 4 nodes (s)"] = (
                TEXT_ANCHORS["broadband.nfs.4node_seconds"],
                matrix[("nfs", 4)])

    return ReproductionReport(
        sweeps=sweeps,
        table1_text=format_table1(profiles),
        table1_matches=table1_matches,
        shape_results=shape_results,
        cost_results=cost_results,
        anchors=anchors,
    )
