"""Command-line interface.

Run single experiments or whole paper figures from the shell::

    repro-ec2 run --app montage --storage glusterfs-nufa --nodes 4
    repro-ec2 run --app broadband --storage nfs --nodes 4 \\
        --trace-out t.json --metrics-out m.json --timeline
    repro-ec2 trace t.json
    repro-ec2 figure --app broadband
    repro-ec2 table1
    repro-ec2 lint src/repro
    repro-ec2 lint --determinism
    repro-ec2 list

(Equivalently: ``python -m repro ...``.)

``--trace-out`` writes a Chrome trace-event file: open it in
``chrome://tracing`` or https://ui.perfetto.dev to see the run as a
per-node Gantt of jobs, phases, and storage operations.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps import APP_BUILDERS
from .experiments import (
    CellError,
    ExperimentConfig,
    ObserveOptions,
    build_report,
    paper_matrix,
    run_experiment,
    run_sweep,
)
from .experiments.results import (
    cost_matrix,
    format_figure_table,
    makespan_matrix,
    to_csv,
)
from .profiling import format_table1, profile_records
from .storage import STORAGE_NAMES


def _cmd_run(args: argparse.Namespace) -> int:
    wants_telemetry = bool(args.trace_out or args.metrics_out
                           or args.timeline)
    fault_spec = None
    if args.fault_spec:
        from .faults import load_fault_spec
        try:
            fault_spec = load_fault_spec(args.fault_spec)
        except (OSError, ValueError, TypeError) as exc:
            print(f"error: bad fault spec {args.fault_spec}: {exc}",
                  file=sys.stderr)
            return 2
    config = ExperimentConfig(
        app=args.app,
        storage=args.storage,
        n_workers=args.nodes,
        nfs_server_type=args.nfs_server,
        scheduler=args.scheduler,
        seed=args.seed,
        cpu_jitter_sigma=args.jitter,
        task_failure_rate=args.task_failure_rate,
        retries=args.retries,
        collect_traces=wants_telemetry,
        fault_spec=fault_spec,
        node_mtbf=args.node_mtbf,
        storage_error_rate=args.storage_error_rate,
        halt_on_failure=not args.partial,
    )
    ok, why = config.is_valid()
    if not ok:
        print(f"error: {why}", file=sys.stderr)
        return 2
    result = run_experiment(config)
    print(f"{config.label}: makespan {result.makespan:,.0f} s "
          f"({result.makespan / 3600:.2f} h)")
    print(f"  cost (per-hour billing):   ${result.cost.per_hour_total:.2f}")
    print(f"  cost (per-second billing): ${result.cost.per_second_total:.2f}")
    stats = result.run.storage_stats
    print(f"  storage ops: {stats.reads} reads / {stats.writes} writes, "
          f"{stats.bytes_read / 1e9:.1f} GB read, "
          f"{stats.bytes_written / 1e9:.1f} GB written")
    if config.storage == "s3":
        print(f"  S3 requests: {stats.get_requests} GET, "
              f"{stats.put_requests} PUT "
              f"(fees ${result.cost.s3_fees.total:.2f})")
    if result.faults is not None:
        fr = result.faults
        print(f"  faults: {fr.node_crashes} node crashes, "
              f"{fr.jobs_evicted} jobs evicted, "
              f"{fr.storage_transient_errors + fr.storage_outage_hits} "
              f"storage errors ({fr.storage_retries} retries, "
              f"{fr.storage_giveups} giveups)")
    if result.run.partial:
        print(f"  PARTIAL RESULT: {len(result.run.abandoned_jobs)} jobs "
              f"abandoned: {', '.join(result.run.abandoned_jobs[:8])}"
              + (" ..." if len(result.run.abandoned_jobs) > 8 else ""))
    if args.trace_out:
        from .telemetry import write_chrome_trace
        n_spans = write_chrome_trace(args.trace_out, result.spans)
        print(f"  wrote {n_spans} spans to {args.trace_out} "
              "(open in chrome://tracing or ui.perfetto.dev)",
              file=sys.stderr)
    if args.metrics_out:
        from .telemetry import write_metrics
        write_metrics(args.metrics_out, result.metrics,
                      fmt=args.metrics_format)
        print(f"  wrote {len(result.metrics)} metrics to "
              f"{args.metrics_out} ({args.metrics_format})",
              file=sys.stderr)
    if args.timeline:
        from .telemetry import render_heatmap, render_node_gantt
        print()
        print(render_node_gantt(result.spans,
                                title="per-node job concurrency"))
        tl = result.timeline
        cpu_series = [n for n in tl.names() if n.endswith(".cpu")]
        print()
        print(render_heatmap(tl, series=cpu_series, width=60,
                             title="CPU busy fraction", normalize="global"))
        server_series = [n for n in tl.names()
                         if n.startswith(("nfs.", "s3."))]
        if server_series:
            print()
            print(render_heatmap(tl, series=server_series, width=60,
                                 title="storage server load"))
    return 0


def _add_observe_args(parser: argparse.ArgumentParser) -> None:
    """The host-side observability flags shared by sweep commands."""
    parser.add_argument("--progress", action="store_true",
                        help="render a live one-line sweep progress "
                             "display on stderr")
    parser.add_argument("--events-out", metavar="FILE",
                        help="write a schema-versioned JSONL event log "
                             "of the sweep lifecycle")
    parser.add_argument("--crash-dir", metavar="DIR",
                        help="write a crash bundle (traceback, scenario "
                             "config, flight-recorder ring, partial "
                             "metrics) per failed cell under this "
                             "directory")
    parser.add_argument("--keep-going", action="store_true",
                        help="drive the whole sweep despite failed "
                             "cells (still exits non-zero at the end)")
    parser.add_argument("--cell-retries", type=int, default=0,
                        help="re-run a failed cell this many times "
                             "before recording the failure")
    parser.add_argument("--profile", choices=("off", "cprofile"),
                        default="off",
                        help="capture a host-CPU profile of every cell "
                             "and print merged hotspots")
    parser.add_argument("--profile-top", type=int, default=15,
                        help="hotspot lines in the --profile report")


def _observe_from_args(args: argparse.Namespace):
    """(ObserveOptions, EventLogWriter) from CLI flags; (None, None)
    when every observability feature is off."""
    wants = (args.progress or args.events_out or args.crash_dir
             or args.profile != "off" or args.cell_retries
             or args.keep_going)
    if not wants:
        return None, None
    from .observe import EventLogWriter, SweepMonitor
    events = EventLogWriter(args.events_out) if args.events_out else None
    monitor = SweepMonitor(events=events, progress=args.progress)
    observe = ObserveOptions(
        monitor=monitor,
        crash_dir=args.crash_dir,
        profile=args.profile,
        cell_retries=args.cell_retries,
        keep_going=args.keep_going,
    )
    return observe, events


def _finish_observed_sweep(args: argparse.Namespace,
                           observe, events) -> None:
    """Close the event log and print the merged profile hotspots."""
    if events is not None:
        events.close()
    if observe is not None and args.profile != "off":
        from .observe import hotspot_report
        print(hotspot_report(observe.monitor.profile_stats,
                             top=args.profile_top),
              end="", file=sys.stderr)


def _report_cell_error(args: argparse.Namespace, exc: CellError) -> int:
    """One-line failure summary (the raw tracebacks stay in bundles)."""
    print(f"error: {exc}", file=sys.stderr)
    if args.crash_dir:
        print(f"crash bundles written under {args.crash_dir} — inspect "
              f"with: repro-ec2 postmortem {args.crash_dir}",
              file=sys.stderr)
    return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry import load_chrome_trace, summarize_chrome_trace
    try:
        doc = load_chrome_trace(args.file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(summarize_chrome_trace(doc, top=args.top))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    cells = paper_matrix(args.app)
    observe, events = _observe_from_args(args)
    progress_cb = None if args.progress else (
        lambda r: print(f"  done {r.label}: {r.makespan:,.0f} s",
                        file=sys.stderr))
    try:
        results = run_sweep(cells, progress=progress_cb,
                            jobs=args.jobs, observe=observe)
    except CellError as exc:
        return _report_cell_error(args, exc)
    finally:
        _finish_observed_sweep(args, observe, events)
    n_failed = sum(1 for r in results if r is None)
    results = [r for r in results if r is not None]
    if n_failed:
        print(f"warning: {n_failed} cell(s) failed; tables cover the "
              f"remaining {len(results)}", file=sys.stderr)
    print(format_figure_table(
        makespan_matrix(results),
        title=f"{args.app} makespan (s) by storage system and cluster size"))
    print()
    print(format_figure_table(
        cost_matrix(results, per="hour"),
        title=f"{args.app} cost (USD, per-hour billing)",
        value_format="{:8.2f}", unit="$"))
    print()
    print(format_figure_table(
        cost_matrix(results, per="second"),
        title=f"{args.app} cost (USD, per-second billing)",
        value_format="{:8.2f}", unit="$"))
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(to_csv(results))
        print(f"\nwrote {args.csv}", file=sys.stderr)
    return 1 if n_failed else 0


def _cmd_table1(args: argparse.Namespace) -> int:
    profiles = []
    for app in APP_BUILDERS:
        result = run_experiment(ExperimentConfig(app, "local", 1))
        profiles.append(profile_records(app, result.run.records))
    print(format_table1(profiles))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    factory = None
    if args.quick:
        from .apps import build_broadband, build_epigenome, build_montage
        quick = {
            "montage": lambda: build_montage(degrees=2.0),
            "epigenome": lambda: build_epigenome(chunks_per_lane=[6, 6, 6]),
            "broadband": lambda: build_broadband(n_sources=2, n_sites=4),
        }
        factory = lambda app: quick[app]()  # noqa: E731
    report = build_report(
        workflow_factory=factory,
        progress=lambda msg: print(msg, file=sys.stderr))
    text = report.to_markdown()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0 if (report.all_pass or args.quick) else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    result = run_experiment(ExperimentConfig(args.app, "local", 1))
    profile = profile_records(args.app, result.run.records)
    print(f"{args.app}: {profile.n_tasks} tasks, "
          f"io {profile.io_fraction:.1%} / cpu {profile.cpu_fraction:.1%} "
          f"of busy time, weighted memory "
          f"{profile.weighted_memory / 1e9:.2f} GB")
    print(f"ratings: {profile.ratings()}")
    print(f"\n{'transformation':<16}{'count':>7}{'mean s':>9}"
          f"{'cpu s':>10}{'io s':>10}{'read GB':>9}{'write GB':>9}")
    for tp in sorted(profile.transformations.values(),
                     key=lambda t: -(t.cpu_seconds + t.io_seconds)):
        print(f"{tp.transformation:<16}{tp.count:>7}"
              f"{tp.mean_runtime:>9.2f}{tp.cpu_seconds:>10.0f}"
              f"{tp.io_seconds:>10.0f}{tp.bytes_read / 1e9:>9.2f}"
              f"{tp.bytes_written / 1e9:>9.2f}")
    return 0


def _cmd_faultsweep(args: argparse.Namespace) -> int:
    from .experiments import fault_inflation_sweep, format_fault_sweep
    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError:
        print(f"error: bad --rates {args.rates!r}", file=sys.stderr)
        return 2
    try:
        mtbfs = [float(m) for m in args.mtbfs.split(",") if m.strip()] \
            if args.mtbfs else []
    except ValueError:
        print(f"error: bad --mtbfs {args.mtbfs!r}", file=sys.stderr)
        return 2
    base = ExperimentConfig(
        app=args.app,
        storage=args.storage,
        n_workers=args.nodes,
        seed=args.seed,
        retries=args.retries,
    )
    ok, why = base.is_valid()
    if not ok:
        print(f"error: {why}", file=sys.stderr)
        return 2
    observe, events = _observe_from_args(args)
    try:
        points = fault_inflation_sweep(base, error_rates=rates,
                                       node_mtbfs=mtbfs, jobs=args.jobs,
                                       observe=observe)
    except CellError as exc:
        return _report_cell_error(args, exc)
    finally:
        _finish_observed_sweep(args, observe, events)
    print(format_fault_sweep(
        points,
        title=f"{base.label} makespan inflation vs fault rate "
              f"(seed {args.seed})"))
    if args.csv:
        import csv as _csv
        with open(args.csv, "w", newline="") as fh:
            rows = [p.row() for p in points]
            writer = _csv.DictWriter(fh, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        print(f"\nwrote {args.csv}", file=sys.stderr)
    n_failed = observe.monitor.n_failed if observe is not None else 0
    if n_failed:
        print(f"warning: {n_failed} sweep point(s) failed",
              file=sys.stderr)
    return 1 if n_failed else 0


def _cmd_postmortem(args: argparse.Namespace) -> int:
    from .observe import load_crash_bundles, summarize_bundle, validate_bundle
    bundles = load_crash_bundles(args.crash_dir)
    if not bundles:
        print(f"no crash bundles under {args.crash_dir}", file=sys.stderr)
        return 1
    print(f"{len(bundles)} crash bundle(s) under {args.crash_dir}")
    status = 0
    for path, bundle in bundles:
        print()
        problems = validate_bundle(bundle)
        if problems:
            print(f"{path}: invalid bundle: {'; '.join(problems)}",
                  file=sys.stderr)
            status = 2
            continue
        print(f"-- {path}")
        print(summarize_bundle(bundle, tail=args.tail))
    return status


def _cmd_perf_trend(args: argparse.Namespace) -> int:
    from .observe import format_trend, load_history
    entries = load_history(args.history)
    if not entries:
        print(f"no perf history at {args.history}", file=sys.stderr)
        return 1
    print(format_trend(entries, scale=args.scale), end="")
    return 0


def _default_lint_paths() -> List[str]:
    """The installed ``repro`` package tree (lint target of last resort)."""
    import os
    return [os.path.dirname(os.path.abspath(__file__))]


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    import os

    from .lint import (
        DEFAULT_BASELINE_NAME,
        lint_paths,
        load_baseline,
        run_determinism_check,
        write_baseline,
    )

    if args.emit_digest:
        # Internal leg of the determinism protocol: one machine-readable
        # line on stdout, consumed by the parent sanitizer process.
        from .lint import digest_run, format_digest_line
        run = digest_run(app=args.app, storage=args.storage,
                         nodes=args.nodes, seed=args.seed)
        print(format_digest_line(run))
        return 0

    if args.locks:
        # Runtime lock-order / race witness: boot the chaos-wrapped
        # service under a LockWatcher and report what it saw.
        from .lint import run_lockwatch_check
        watcher = run_lockwatch_check(seed=args.seed or 11,
                                      hold_threshold=args.hold_threshold)
        print(watcher.format_report())
        return 0 if watcher.ok else 1

    if args.determinism:
        try:
            seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
            hash_seeds = [s.strip() for s in args.hash_seeds.split(",")
                          if s.strip()]
        except ValueError:
            print(f"error: bad --seeds {args.seeds!r}", file=sys.stderr)
            return 2
        report = run_determinism_check(
            app=args.app, storage=args.storage, nodes=args.nodes,
            seeds=seeds, hash_seeds=hash_seeds)
        print(report.format())
        return 0 if report.ok else 1

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]

    baseline = None
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE_NAME):
        baseline_path = DEFAULT_BASELINE_NAME
    if baseline_path is not None and not args.write_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"error: bad baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    paths = args.paths or _default_lint_paths()
    report = lint_paths(paths, select=select, baseline=baseline)

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        write_baseline(target, report.findings)
        print(f"wrote {len(report.findings)} fingerprints to {target}",
              file=sys.stderr)
        return 0

    if args.format == "json":
        print(json.dumps({
            "findings": [f.to_dict() for f in report.findings],
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "files": report.n_files,
            "parse_errors": [list(e) for e in report.parse_errors],
            "counts_by_rule": report.counts_by_rule(),
        }, indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        for path, error in report.parse_errors:
            print(f"{path}: {error}", file=sys.stderr)
        tail = (f"{len(report.findings)} finding(s) in "
                f"{report.n_files} file(s)")
        if report.suppressed:
            tail += f", {len(report.suppressed)} suppressed inline"
        if report.baselined:
            tail += f", {len(report.baselined)} baselined"
        print(tail, file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading
    from .service import (CellCache, JobQueue, ServiceApp, ServiceWorker,
                          open_store, serve)
    store = open_store(args.db)
    queue = JobQueue(store)
    cache = CellCache(store)
    workers = [
        ServiceWorker(store, queue, cache, name=f"worker-{i}",
                      jobs=args.jobs, crash_dir=args.crash_dir).start()
        for i in range(args.workers)
    ]
    app = ServiceApp(store, queue, cache,
                     max_queue_depth=args.max_queue_depth)
    server = serve(app, host=args.host, port=args.port, quiet=args.quiet)
    host, port = server.server_address[:2]
    print(f"repro-ec2 service on http://{host}:{port} "
          f"(db {args.db}, {args.workers} worker(s) x {args.jobs} "
          f"process(es), {store.result_count()} cached cells)",
          file=sys.stderr)
    print(f"  submit: repro-ec2 submit --url http://{host}:{port} "
          f"--app montage --storage nfs --nodes 4", file=sys.stderr)

    # Graceful shutdown on SIGTERM (systemd/docker stop) and SIGINT:
    # stop accepting requests, drain the in-flight jobs, close the
    # store, exit 0.  server.shutdown() blocks until serve_forever
    # returns, so it must run off the signal-handler frame.
    def _request_shutdown(signum: int, frame: object) -> None:
        print(f"received {signal.Signals(signum).name}; shutting down",
              file=sys.stderr)
        threading.Thread(target=server.shutdown, daemon=True).start()

    old_handlers = {
        sig: signal.signal(sig, _request_shutdown)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass  # SIGINT before the handler was installed
    finally:
        for sig, old in old_handlers.items():
            signal.signal(sig, old)
        drained = True
        for worker in workers:
            drained = worker.stop(timeout=args.drain_timeout) and drained
        if not drained:
            print("warning: a job was still running at shutdown; its "
                  "lease will expire and re-queue it", file=sys.stderr)
        server.server_close()
        store.close()
    print("service stopped", file=sys.stderr)
    return 0


def _parse_submit_cells(args: argparse.Namespace) -> List["ExperimentConfig"]:
    """The cell list one ``submit`` invocation describes."""
    common = dict(seed=args.seed, collect_traces=args.traces)
    if args.matrix:
        return paper_matrix(args.matrix, **common)
    if not (args.app and args.storage):
        raise ValueError("pass --app/--storage/--nodes for one cell, "
                         "or --matrix APP for a full paper sweep")
    config = ExperimentConfig(args.app, args.storage, args.nodes, **common)
    ok, why = config.is_valid()
    if not ok:
        raise ValueError(why)
    return [config]


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient, ServiceError
    try:
        cells = _parse_submit_cells(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(args.url)
    extra = {}
    if args.scale != "paper":
        extra["scale"] = args.scale
    try:
        doc = client.submit(cells, jobs=args.jobs or None, **extra)
        job_id = doc["job_id"]
        print(f"job {job_id}: {doc['n_cells']} cell(s) queued "
              f"({doc['kind']})")
        if not args.wait:
            print(f"  poll:  repro-ec2 status {job_id} --url {args.url}")
            print(f"  fetch: repro-ec2 fetch {job_id} --url {args.url}")
            return 0
        status = client.wait(job_id, timeout=args.timeout)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"job {job_id} {status['state']}: {status['n_done']} done, "
          f"{status['n_failed']} failed, "
          f"{status['n_cache_hits']} cache hit(s)")
    return 0 if status["state"] == "done" and not status["n_failed"] else 1


def _cmd_status(args: argparse.Namespace) -> int:
    import json
    from .service.client import ServiceClient, ServiceError
    client = ServiceClient(args.url)
    try:
        if args.job is None:
            jobs = client.list_jobs()
            if not jobs:
                print("no jobs")
                return 0
            print(f"{'id':>5} {'state':<8} {'kind':<10} "
                  f"{'done':>5} {'fail':>5} {'hits':>5}")
            for job in jobs:
                print(f"{job['id']:>5} {job['state']:<8} "
                      f"{job['kind']:<10} {job['n_done']:>5} "
                      f"{job['n_failed']:>5} {job['n_cache_hits']:>5}")
            return 0
        status = client.status(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.events:
        for event in client.events(args.job, follow=args.follow):
            print(json.dumps(event, sort_keys=True))
        return 0
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    import json
    from .service.client import ServiceClient, ServiceError
    client = ServiceClient(args.url)
    try:
        if args.csv:
            text = client.result_csv(args.job)
            with open(args.csv, "w") as fh:
                fh.write(text)
            print(f"wrote {args.csv}", file=sys.stderr)
            return 0
        doc = client.result(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        from .experiments.serialize import result_from_dict
        for cell in doc["cells"]:
            if cell["result"] is None:
                print(f"  {cell['label']}: FAILED ({cell['error']})")
                continue
            result = result_from_dict(cell["result"])
            tag = " [cached]" if cell["cached"] else ""
            print(f"  {result.label}: makespan {result.makespan:,.0f} s, "
                  f"cost ${result.cost.per_hour_total:.2f}/h{tag}")
    n_failed = doc["job"]["n_failed"]
    return 1 if n_failed else 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("applications:")
    for name, builder in APP_BUILDERS.items():
        wf = builder()
        print(f"  {name:<12} {wf.describe()}")
    print("storage systems:")
    for name in STORAGE_NAMES:
        print(f"  {name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-ec2",
        description="Simulated reproduction of 'Data Sharing Options for "
                    "Scientific Workflows on Amazon EC2' (SC 2010)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one experiment cell")
    p_run.add_argument("--app", required=True, choices=sorted(APP_BUILDERS))
    p_run.add_argument("--storage", required=True, choices=STORAGE_NAMES)
    p_run.add_argument("--nodes", type=int, default=1)
    p_run.add_argument("--nfs-server", default="m1.xlarge",
                       help="instance type of the dedicated NFS server")
    p_run.add_argument("--scheduler", choices=("fifo", "locality"),
                       default="fifo")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--jitter", type=float, default=0.0,
                       help="relative sigma of per-task CPU jitter")
    p_run.add_argument("--task-failure-rate", type=float, default=0.0,
                       help="per-attempt transient task crash "
                            "probability in [0, 1)")
    p_run.add_argument("--retries", type=int, default=3,
                       help="DAGMan retry limit per job")
    p_run.add_argument("--fault-spec", metavar="FILE",
                       help="JSON fault schedule (node crashes, storage "
                            "outage windows, error rates)")
    p_run.add_argument("--node-mtbf", type=float, default=0.0,
                       help="mean time between node failures, seconds "
                            "(0 = no crashes)")
    p_run.add_argument("--storage-error-rate", type=float, default=0.0,
                       help="transient per-op storage failure "
                            "probability in [0, 1)")
    p_run.add_argument("--partial", action="store_true",
                       help="degrade to a partial result instead of "
                            "failing when a job exhausts its retries")
    p_run.add_argument("--trace-out", metavar="FILE",
                       help="write a Chrome trace-event JSON of the run "
                            "(chrome://tracing / Perfetto)")
    p_run.add_argument("--metrics-out", metavar="FILE",
                       help="write the metrics-registry snapshot here")
    p_run.add_argument("--metrics-format", choices=("json", "prom"),
                       default="json",
                       help="--metrics-out format: canonical JSON or "
                            "the Prometheus text exposition")
    p_run.add_argument("--timeline", action="store_true",
                       help="print ASCII utilization heatmaps and the "
                            "per-node job Gantt")
    p_run.set_defaults(func=_cmd_run)

    p_trace = sub.add_parser("trace",
                             help="summarize a Chrome trace written by "
                                  "'run --trace-out'")
    p_trace.add_argument("file", help="trace-event JSON file")
    p_trace.add_argument("--top", type=int, default=10,
                         help="how many longest spans to list")
    p_trace.set_defaults(func=_cmd_trace)

    p_fig = sub.add_parser("figure",
                           help="regenerate a paper figure (all cells)")
    p_fig.add_argument("--app", required=True, choices=sorted(APP_BUILDERS))
    p_fig.add_argument("--csv", help="also write results to this CSV file")
    p_fig.add_argument("--jobs", type=int, default=1,
                       help="run cells in this many worker processes "
                            "(results are bit-identical to --jobs 1)")
    _add_observe_args(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_t1 = sub.add_parser("table1", help="regenerate Table I (wfprof)")
    p_t1.set_defaults(func=_cmd_table1)

    p_rep = sub.add_parser("report",
                           help="run the full evaluation and render a "
                                "markdown reproduction report")
    p_rep.add_argument("--output", help="write the report to this file")
    p_rep.add_argument("--quick", action="store_true",
                       help="scaled-down workflows (smoke test; checks "
                            "may fail legitimately)")
    p_rep.set_defaults(func=_cmd_report)

    p_prof = sub.add_parser("profile",
                            help="per-transformation wfprof breakdown")
    p_prof.add_argument("--app", required=True, choices=sorted(APP_BUILDERS))
    p_prof.set_defaults(func=_cmd_profile)

    p_fs = sub.add_parser("faultsweep",
                          help="makespan inflation vs storage fault "
                               "rate / node crash rate for one cell")
    p_fs.add_argument("--app", required=True, choices=sorted(APP_BUILDERS))
    p_fs.add_argument("--storage", required=True, choices=STORAGE_NAMES)
    p_fs.add_argument("--nodes", type=int, default=1)
    p_fs.add_argument("--rates", default="0.001,0.005,0.01,0.05",
                      help="comma-separated storage error rates")
    p_fs.add_argument("--mtbfs", default="",
                      help="comma-separated node MTBF values (seconds)")
    p_fs.add_argument("--seed", type=int, default=0)
    p_fs.add_argument("--retries", type=int, default=10,
                      help="DAGMan retry limit (raised so moderate "
                           "fault rates measure slowdown, not failure)")
    p_fs.add_argument("--csv", help="also write the sweep to this CSV")
    p_fs.add_argument("--jobs", type=int, default=1,
                      help="run fault points in this many worker "
                           "processes (baseline runs first; results "
                           "are identical to --jobs 1)")
    _add_observe_args(p_fs)
    p_fs.set_defaults(func=_cmd_faultsweep)

    p_pm = sub.add_parser("postmortem",
                          help="summarize the crash bundles a failed "
                               "sweep left under --crash-dir")
    p_pm.add_argument("crash_dir", help="directory passed as --crash-dir")
    p_pm.add_argument("--tail", type=int, default=8,
                      help="flight-recorder events to show per bundle")
    p_pm.set_defaults(func=_cmd_postmortem)

    p_pt = sub.add_parser("perf-trend",
                          help="per-benchmark trend over the perf-gate "
                               "history (benchmarks/perf/history.jsonl)")
    p_pt.add_argument("--history", default="benchmarks/perf/history.jsonl",
                      help="history file written by scripts/perf_gate.py")
    p_pt.add_argument("--scale", default="",
                      help="restrict to one scale (smoke/full)")
    p_pt.set_defaults(func=_cmd_perf_trend)

    p_lint = sub.add_parser(
        "lint",
        help="simulation-invariant static analysis (SIM001-SIM014) and "
             "the runtime determinism / lock-order sanitizers")
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: the "
                             "installed repro package)")
    p_lint.add_argument("--format", choices=("text", "json"),
                        default="text", help="finding output format")
    p_lint.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="baseline of accepted findings (default: "
                             "./.lint-baseline.json when present)")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the baseline "
                             "instead of failing on them")
    p_lint.add_argument("--determinism", action="store_true",
                        help="run the double-run / double-PYTHONHASHSEED "
                             "event-stream digest check instead of "
                             "static rules")
    p_lint.add_argument("--locks", action="store_true",
                        help="run the chaos-wrapped service under the "
                             "runtime lock-order witness instead of "
                             "static rules")
    p_lint.add_argument("--hold-threshold", type=float, default=2.0,
                        help="seconds a lock may be held before --locks "
                             "flags it")
    p_lint.add_argument("--app", default="montage",
                        help="sanitizer scenario application")
    p_lint.add_argument("--storage", default="nfs",
                        help="sanitizer scenario storage system")
    p_lint.add_argument("--nodes", type=int, default=2,
                        help="sanitizer scenario worker count")
    p_lint.add_argument("--seeds", default="0,1",
                        help="comma-separated seeds for --determinism")
    p_lint.add_argument("--hash-seeds", default="1,2",
                        help="comma-separated PYTHONHASHSEED values "
                             "for --determinism")
    p_lint.add_argument("--seed", type=int, default=0,
                        help="seed for --emit-digest")
    p_lint.add_argument("--emit-digest", action="store_true",
                        help=argparse.SUPPRESS)
    p_lint.set_defaults(func=_cmd_lint)

    p_serve = sub.add_parser(
        "serve",
        help="run the simulation service (REST API + job workers)")
    p_serve.add_argument("--db", default="repro-service.db",
                         help="SQLite database path (jobs, results, "
                              "the content-addressed cell cache)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="listen port (0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="supervisor threads draining the job queue")
    p_serve.add_argument("--jobs", type=int, default=1,
                         help="default worker processes per sweep "
                              "(job payloads may override)")
    p_serve.add_argument("--crash-dir",
                         help="write crash bundles for failed cells here")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress per-request access logging")
    p_serve.add_argument("--max-queue-depth", type=int, default=256,
                         help="shed submissions (503 + Retry-After) "
                              "beyond this backlog")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         help="seconds to wait for in-flight jobs on "
                              "SIGTERM/SIGINT before giving up the lease")
    p_serve.set_defaults(func=_cmd_serve)

    p_sub = sub.add_parser("submit",
                           help="submit a cell or sweep to a running "
                                "service")
    p_sub.add_argument("--url", default="http://127.0.0.1:8642",
                       help="service base URL")
    p_sub.add_argument("--app", choices=sorted(APP_BUILDERS))
    p_sub.add_argument("--storage", choices=STORAGE_NAMES)
    p_sub.add_argument("--nodes", type=int, default=1)
    p_sub.add_argument("--matrix", choices=sorted(APP_BUILDERS),
                       help="submit the full paper matrix for this app "
                            "instead of a single cell")
    p_sub.add_argument("--seed", type=int, default=0)
    p_sub.add_argument("--traces", action="store_true",
                       help="collect spans/metrics for each cell")
    p_sub.add_argument("--jobs", type=int, default=0,
                       help="worker processes for this sweep "
                            "(0 = server default)")
    p_sub.add_argument("--scale", choices=("paper", "small"),
                       default="paper",
                       help="'small' runs the down-scaled smoke "
                            "workflows")
    p_sub.add_argument("--wait", action="store_true",
                       help="block until the job reaches a terminal "
                            "state")
    p_sub.add_argument("--timeout", type=float, default=600.0,
                       help="--wait timeout in seconds")
    p_sub.set_defaults(func=_cmd_submit)

    p_st = sub.add_parser("status",
                          help="job table, or one job's status/events")
    p_st.add_argument("job", nargs="?", type=int,
                      help="job id (omit for the job table)")
    p_st.add_argument("--url", default="http://127.0.0.1:8642")
    p_st.add_argument("--events", action="store_true",
                      help="print the job's schema-v1 JSONL event log")
    p_st.add_argument("--follow", action="store_true",
                      help="with --events: stream until the job ends")
    p_st.set_defaults(func=_cmd_status)

    p_fetch = sub.add_parser("fetch",
                             help="fetch a finished job's results")
    p_fetch.add_argument("job", type=int, help="job id")
    p_fetch.add_argument("--url", default="http://127.0.0.1:8642")
    p_fetch.add_argument("--csv", metavar="FILE",
                         help="write the figure-style CSV here")
    p_fetch.add_argument("--output", metavar="FILE",
                         help="write the full JSON result document here")
    p_fetch.set_defaults(func=_cmd_fetch)

    p_list = sub.add_parser("list", help="list applications and systems")
    p_list.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
