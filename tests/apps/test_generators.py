"""Tests that the application generators match the paper's statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    APP_BUILDERS,
    build_app,
    build_broadband,
    build_epigenome,
    build_montage,
    build_synthetic,
)

GB = 1e9


# ----------------------------------------------------------------- montage

def test_montage_task_count_matches_paper():
    wf = build_montage()
    assert wf.n_tasks == 10429  # §II: "contains 10,429 tasks"


def test_montage_transformation_breakdown():
    wf = build_montage()
    counts = {}
    for t in wf.tasks.values():
        counts[t.transformation] = counts.get(t.transformation, 0) + 1
    assert counts == {
        "mProjectPP": 2102,
        "mDiffFit": 6172,
        "mConcatFit": 1,
        "mBgModel": 1,
        "mBackground": 2102,
        "mImgtbl": 17,
        "mAdd": 17,
        "mShrink": 16,
        "mJPEG": 1,
    }


def test_montage_io_volumes_match_paper():
    wf = build_montage()
    assert wf.input_bytes() == pytest.approx(4.2 * GB, rel=0.02)
    assert wf.output_bytes() == pytest.approx(7.9 * GB, rel=0.02)


def test_montage_file_population():
    """Thousands of 1-10 MB files (paper: ~29,000 file accesses)."""
    wf = build_montage()
    assert wf.n_files > 20_000
    small = [m for m in wf.files.values() if 1e5 <= m.size <= 10e6]
    assert len(small) > 15_000


def test_montage_is_valid_dag():
    wf = build_montage()
    wf.validate()
    # mProjectPP tasks are roots; mJPEG is the single sink.
    assert wf.parents("mProjectPP_0") == set()
    assert wf.children("mJPEG") == set()
    # mBgModel gates all mBackground tasks.
    assert "mBgModel" in wf.parents("mBackground_0")


def test_montage_scales_with_degrees():
    small = build_montage(degrees=1.0)
    small.validate()
    assert small.n_tasks < 400
    assert small.n_tasks >= 10  # still a real workflow


def test_montage_rejects_bad_degrees():
    with pytest.raises(ValueError):
        build_montage(degrees=0)


# ----------------------------------------------------------------- broadband

def test_broadband_task_count_matches_paper():
    wf = build_broadband()
    assert wf.n_tasks == 768  # 6 sources x 8 sites x 16 tasks


def test_broadband_io_volumes_match_paper():
    wf = build_broadband()
    assert wf.input_bytes() == pytest.approx(6.0 * GB, rel=0.02)
    assert wf.output_bytes() == pytest.approx(303e6, rel=0.02)


def test_broadband_memory_limited_per_paper():
    """>75% of runtime in tasks needing >1 GB (paper §II)."""
    wf = build_broadband()
    heavy = sum(t.cpu_seconds for t in wf.tasks.values()
                if t.memory_bytes > 1 * GB)
    assert heavy / wf.total_cpu_seconds() > 0.75


def test_broadband_generates_many_small_files():
    """Paper §V.C: >5,000 (small) files."""
    wf = build_broadband()
    assert wf.n_files > 5_000


def test_broadband_input_reuse():
    """The velocity model is read by every low-frequency stage."""
    wf = build_broadband()
    readers = [t for t in wf.tasks.values()
               if "velocity_model.dat" in t.inputs]
    assert len(readers) == 48 * 3  # 3 lf stages per combination


def test_broadband_chain_structure():
    wf = build_broadband()
    wf.validate()
    # lf chain: stage j+1 depends on stage j.
    assert "lf_sim_s0k0_0" in wf.parents("lf_sim_s0k0_1")
    assert "lf_sim_s0k0_1" in wf.parents("lf_sim_s0k0_2")


def test_broadband_scaling():
    wf = build_broadband(n_sources=2, n_sites=2)
    assert wf.n_tasks == 4 * 16
    with pytest.raises(ValueError):
        build_broadband(n_sources=0)


# ----------------------------------------------------------------- epigenome

def test_epigenome_task_count_matches_paper():
    wf = build_epigenome()
    assert wf.n_tasks == 529


def test_epigenome_transformation_breakdown():
    wf = build_epigenome()
    counts = {}
    for t in wf.tasks.values():
        counts[t.transformation] = counts.get(t.transformation, 0) + 1
    assert counts == {
        "fastqSplit": 7,
        "filterContams": 128,
        "sol2sanger": 128,
        "fastq2bfq": 128,
        "map": 128,
        "mapMerge": 8,
        "maqIndex": 1,
        "pileup": 1,
    }


def test_epigenome_io_volumes_match_paper():
    wf = build_epigenome()
    assert wf.input_bytes() == pytest.approx(1.9 * GB, rel=0.02)
    assert wf.output_bytes() == pytest.approx(300e6, rel=0.02)


def test_epigenome_cpu_dominates():
    """99% of runtime in the CPU: compute seconds dwarf the I/O at any
    plausible bandwidth (paper §II)."""
    wf = build_epigenome()
    total_bytes = sum(
        sum(wf.files[f].size for f in t.inputs + t.outputs)
        for t in wf.tasks.values())
    io_estimate = total_bytes / 100e6  # generous 100 MB/s
    assert wf.total_cpu_seconds() > 10 * io_estimate


def test_epigenome_mappers_share_reference():
    wf = build_epigenome()
    readers = [t for t in wf.tasks.values() if "reference.bfa" in t.inputs]
    assert len(readers) == 128
    assert all(t.transformation == "map" for t in readers)


def test_epigenome_custom_chunks():
    wf = build_epigenome(chunks_per_lane=[2, 3])
    assert wf.n_tasks == 2 + 4 * 5 + 2 + 1 + 1 + 1
    with pytest.raises(ValueError):
        build_epigenome(chunks_per_lane=[])
    with pytest.raises(ValueError):
        build_epigenome(chunks_per_lane=[0])


# ----------------------------------------------------------------- registry

def test_build_app_registry():
    for name in ("montage", "broadband", "epigenome"):
        assert name in APP_BUILDERS
        wf = build_app(name)
        wf.validate()
    with pytest.raises(ValueError, match="unknown application"):
        build_app("hpl")


# ----------------------------------------------------------------- synthetic

def test_synthetic_basic():
    wf = build_synthetic(30, width=5, seed=1)
    wf.validate()
    assert wf.n_tasks == 30


def test_synthetic_reproducible():
    a = build_synthetic(20, seed=7)
    b = build_synthetic(20, seed=7)
    assert [t.cpu_seconds for t in a.tasks.values()] == \
           [t.cpu_seconds for t in b.tasks.values()]


def test_synthetic_seed_changes_draws():
    a = build_synthetic(20, seed=1)
    b = build_synthetic(20, seed=2)
    assert [t.cpu_seconds for t in a.tasks.values()] != \
           [t.cpu_seconds for t in b.tasks.values()]


def test_synthetic_validation():
    with pytest.raises(ValueError):
        build_synthetic(0)
    with pytest.raises(ValueError):
        build_synthetic(10, file_size=0)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 60), st.integers(1, 8), st.integers(1, 4),
       st.integers(0, 100))
def test_property_synthetic_always_valid(n, width, fan_in, seed):
    wf = build_synthetic(n, width=width, fan_in=fan_in, seed=seed)
    wf.validate()
    assert wf.n_tasks == n
    order = wf.topological_order()
    assert len(order) == n
