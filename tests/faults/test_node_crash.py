"""Node crashes: eviction, resubmission to survivors, determinism."""

import pytest

from repro.apps import build_synthetic
from repro.cloud import EC2Cloud
from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import FaultCoordinator, FaultSpec, NodeCrash
from repro.simcore import Environment
from repro.storage import NFSStorage
from repro.workflow import PegasusWMS


def build_wms(spec, seed=0, retries=3, n_workers=3):
    env = Environment()
    cloud = EC2Cloud(env, seed=seed)
    workers = cloud.launch_many("c1.xlarge", n_workers)
    server = cloud.launch("m1.xlarge")
    fs = NFSStorage(env, server)
    fs.deploy(workers)
    faults = FaultCoordinator(env, spec, seed=seed)
    faults.attach_storage(fs)
    wms = PegasusWMS(env, workers, fs, seed=seed, retries=retries,
                     fault_coordinator=faults)
    return env, workers, wms, faults


def test_explicit_crash_mid_run_completes_on_survivors():
    spec = FaultSpec(node_crashes=[NodeCrash("worker-0", 30.0)])
    env, workers, wms, faults = build_wms(spec)
    run = wms.execute(build_synthetic(40, width=8, seed=2, cpu_seconds=60.0))
    report = faults.report()
    assert report.node_crashes == 1
    assert report.crash_times == {"worker-0": 30.0}
    assert not workers[0].is_alive
    assert workers[1].is_alive and workers[2].is_alive
    # Every job completed despite losing a third of the pool.
    assert len({r.task_id for r in run.records if not r.failed}) == 40
    # Nothing ran on the dead node after the crash.
    for r in run.records:
        if r.node == "worker-0" and not r.evicted:
            assert r.end_time <= 30.0 or r.failed


def test_eviction_does_not_burn_dagman_retries():
    # retries=0: any *failure* halts the workflow, but evictions are
    # requeued directly, so a crash alone must not kill the run.
    spec = FaultSpec(node_crashes=[NodeCrash("worker-0", 30.0)])
    env, workers, wms, faults = build_wms(spec, retries=0)
    run = wms.execute(build_synthetic(40, width=8, seed=2, cpu_seconds=60.0))
    assert faults.report().jobs_evicted >= 1
    assert len({r.task_id for r in run.records if not r.failed}) == 40


def test_evicted_records_are_flagged():
    spec = FaultSpec(node_crashes=[NodeCrash("worker-0", 30.0)])
    env, workers, wms, faults = build_wms(spec)
    run = wms.execute(build_synthetic(40, width=8, seed=2, cpu_seconds=60.0))
    evicted = [r for r in run.records if r.evicted]
    assert len(evicted) == faults.report().jobs_evicted
    assert all(r.failed and r.node == "worker-0" for r in evicted)
    assert run.n_evicted == len(evicted)
    # Every evicted job later completed on a surviving node.
    completed = {r.task_id for r in run.records if not r.failed}
    assert all(r.task_id in completed for r in evicted)


def test_crash_of_idle_node_is_harmless():
    # Crash long after the workflow finished executing everything the
    # node would ever run: nothing to evict.
    spec = FaultSpec(node_crashes=[NodeCrash("worker-2", 1e6)])
    env, workers, wms, faults = build_wms(spec)
    run = wms.execute(build_synthetic(10, width=5, seed=0))
    assert faults.report().jobs_evicted == 0
    assert len({r.task_id for r in run.records if not r.failed}) == 10


def test_mtbf_crashes_respect_min_survivors():
    spec = FaultSpec(node_mtbf=1.0, min_survivors=2)  # absurdly crashy
    env, workers, wms, faults = build_wms(spec, n_workers=4)
    run = wms.execute(build_synthetic(30, width=6, seed=1))
    live = [w for w in workers if w.is_alive]
    assert len(live) >= 2
    assert len({r.task_id for r in run.records if not r.failed}) == 30


def test_mtbf_crashes_are_deterministic():
    def once():
        cfg = ExperimentConfig("montage", "nfs", 4, seed=3, node_mtbf=120.0)
        res = run_experiment(cfg, workflow=build_synthetic(60, width=8,
                                                           seed=2))
        return res.makespan, res.faults.as_dict(), res.faults.crash_times

    a, b = once(), once()
    assert a == b
    assert a[1]["node_crashes"] >= 1  # mtbf low enough to actually fire


def test_explicit_crashes_win_over_duplicates():
    # Two entries for the same node: the earliest time wins.
    spec = FaultSpec(node_crashes=[NodeCrash("worker-1", 50.0),
                                   NodeCrash("worker-1", 20.0)])
    env, workers, wms, faults = build_wms(spec)
    wms.execute(build_synthetic(40, width=8, seed=2, cpu_seconds=60.0))
    assert faults.report().crash_times == {"worker-1": 20.0}


def test_crashed_node_stops_billing_only_at_terminate():
    """Paper semantics: you pay until the instance is reaped, not until
    it died (EC2 bills the hour whether or not the kernel panicked)."""
    env = Environment()
    cloud = EC2Cloud(env)
    node = cloud.launch("c1.xlarge")
    env.run(until=env.timeout(100.0))
    node.crash()
    assert not node.is_alive
    assert node.crashed_at == 100.0
    assert node.terminated_at is None
    env.run(until=env.timeout(50.0))
    cloud.terminate_all()
    assert node.terminated_at == 150.0


def test_crash_then_terminate_is_safe():
    env = Environment()
    cloud = EC2Cloud(env)
    node = cloud.launch("c1.xlarge")
    node.crash()
    node.crash()  # idempotent
    node.terminate()  # no double NIC detach / span end
    assert node.crashed_at == 0.0
