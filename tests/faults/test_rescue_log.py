"""RescueLog: the persisted completed-job checkpoint."""

from repro.faults import RescueLog


def test_in_memory_log_marks_and_contains():
    log = RescueLog()
    assert len(log) == 0
    log.mark("b")
    log.mark("a")
    log.mark("a")  # idempotent
    assert len(log) == 2
    assert "a" in log and "b" in log and "c" not in log
    assert list(log) == ["a", "b"]  # sorted iteration
    assert log.completed == {"a", "b"}
    # .completed is a copy — mutating it does not corrupt the log.
    log.completed.add("x")
    assert "x" not in log


def test_file_backed_log_persists_across_instances(tmp_path):
    path = str(tmp_path / "rescue.log")
    log = RescueLog(path)
    log.mark("job-1")
    log.mark("job-2")
    log.close()

    reloaded = RescueLog(path)
    assert reloaded.completed == {"job-1", "job-2"}
    # Appending after reload keeps earlier entries.
    reloaded.mark("job-3")
    reloaded.close()
    assert RescueLog(path).completed == {"job-1", "job-2", "job-3"}


def test_log_skips_comments_and_blank_lines(tmp_path):
    path = tmp_path / "rescue.log"
    path.write_text("# rescue log\njob-1\n\n  \njob-2\n")
    log = RescueLog(str(path))
    assert log.completed == {"job-1", "job-2"}
