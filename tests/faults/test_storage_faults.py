"""Storage fault injection: transient errors, outages, retry/backoff."""

import pytest

from repro.apps import build_synthetic
from repro.cloud import EC2Cloud
from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import (
    FaultCoordinator,
    FaultSpec,
    OutageWindow,
    RetryPolicy,
    StorageUnavailableError,
)
from repro.simcore import Environment
from repro.storage import NFSStorage
from repro.workflow import PegasusWMS, WorkflowFailedError


def build_wms(spec, seed=0, retries=3, n_workers=2):
    env = Environment()
    cloud = EC2Cloud(env, seed=seed)
    workers = cloud.launch_many("c1.xlarge", n_workers)
    server = cloud.launch("m1.xlarge")
    fs = NFSStorage(env, server)
    fs.deploy(workers)
    faults = FaultCoordinator(env, spec, seed=seed)
    faults.attach_storage(fs)
    wms = PegasusWMS(env, workers, fs, seed=seed, retries=retries,
                     fault_coordinator=faults)
    return env, wms, faults


def run_cell(seed=0, **fault_kwargs):
    cfg = ExperimentConfig("montage", "nfs", 2, seed=seed, **fault_kwargs)
    return run_experiment(cfg, workflow=build_synthetic(30, width=6, seed=1))


def test_transient_errors_are_masked_by_retries():
    spec = FaultSpec(storage_error_rate=0.03)
    env, wms, faults = build_wms(spec, seed=4)
    run = wms.execute(build_synthetic(30, width=6, seed=1))
    report = faults.report()
    assert report.storage_transient_errors > 0
    assert report.storage_retries > 0
    assert report.storage_giveups == 0
    assert report.storage_recoveries > 0
    # Every job still completed despite the errors.
    assert len([r for r in run.records if not r.failed]) == 30


def test_storage_faults_are_deterministic_per_seed():
    results = [run_cell(seed=9, storage_error_rate=0.02) for _ in range(2)]
    assert results[0].makespan == results[1].makespan
    assert results[0].faults.as_dict() == results[1].faults.as_dict()
    assert results[0].faults.storage_transient_errors > 0


def test_different_seeds_draw_different_error_patterns():
    a = run_cell(seed=1, storage_error_rate=0.02)
    b = run_cell(seed=2, storage_error_rate=0.02)
    assert (a.makespan != b.makespan
            or a.faults.as_dict() != b.faults.as_dict())


def test_errors_inflate_makespan():
    clean = run_cell(seed=5)
    faulty = run_cell(seed=5, storage_error_rate=0.2, retries=10)
    assert clean.faults is None
    assert faulty.faults.storage_transient_errors > 5
    assert faulty.makespan > clean.makespan


def test_outage_window_stalls_and_recovers():
    # A 60 s outage early in the run: clients burn op_timeout attempts,
    # back off, and succeed once the window closes.
    spec = FaultSpec(
        storage_outages=[OutageWindow(30.0, 90.0)],
        retry=RetryPolicy(max_retries=10, op_timeout=10.0),
    )
    env, wms, faults = build_wms(spec, seed=0)
    run = wms.execute(build_synthetic(30, width=6, seed=1))
    report = faults.report()
    assert report.storage_outage_hits > 0
    assert report.outage_seconds == 60.0
    assert len([r for r in run.records if not r.failed]) == 30

    env2, wms2, _ = build_wms(FaultSpec(), seed=0)
    clean = wms2.execute(build_synthetic(30, width=6, seed=1))
    assert run.makespan > clean.makespan


def test_retry_exhaustion_fails_the_workflow():
    # An outage longer than the whole retry budget: every attempt times
    # out, StorageUnavailableError escapes as a task failure, and with
    # retries=0 DAGMan halts the workflow.
    spec = FaultSpec(
        storage_outages=[OutageWindow(0.0, 1e9)],
        retry=RetryPolicy(max_retries=1, op_timeout=5.0),
    )
    env, wms, faults = build_wms(spec, seed=0, retries=0)
    with pytest.raises(WorkflowFailedError):
        wms.execute(build_synthetic(6, width=3, seed=1))
    assert faults.report().storage_giveups > 0


def make_broken_nfs(max_retries=0):
    """An NFS deployment whose server is down for the whole run."""
    from repro.telemetry.spans import SpanBuilder

    spec = FaultSpec(
        storage_outages=[OutageWindow(0.0, 1e9)],
        retry=RetryPolicy(max_retries=max_retries, op_timeout=1.0),
    )
    env = Environment()
    cloud = EC2Cloud(env)
    workers = cloud.launch_many("c1.xlarge", 1)
    server = cloud.launch("m1.xlarge")
    fs = NFSStorage(env, server)
    fs.deploy(workers)
    faults = FaultCoordinator(env, spec, seed=0)
    faults.attach_storage(fs)
    spans = SpanBuilder(fs.trace, env)
    return env, workers, fs, spans


def test_storage_unavailable_error_is_typed():
    from repro.storage.files import FileMetadata

    env, workers, fs, spans = make_broken_nfs(max_retries=1)
    meta = FileMetadata("f", 1e6)
    fs.declare_output(meta)
    captured = {}

    def writer():
        try:
            yield from fs.span_write(workers[0], meta, spans)
        except StorageUnavailableError as exc:
            captured["exc"] = exc

    env.process(writer())
    env.run()
    assert isinstance(captured["exc"], StorageUnavailableError)
    assert "write" in str(captured["exc"])
    assert "2 attempts" in str(captured["exc"])


def test_failed_attempts_do_not_touch_backend_state():
    """Fail-fast model: the outage is detected before the RPC, so a
    timed-out write must not have moved any bytes."""
    from repro.storage.files import FileMetadata

    env, workers, fs, spans = make_broken_nfs(max_retries=0)
    meta = FileMetadata("f", 1e6)
    fs.declare_output(meta)
    caught = []

    def writer():
        try:
            yield from fs.span_write(workers[0], meta, spans)
        except StorageUnavailableError:
            caught.append(True)

    env.process(writer())
    env.run()
    assert caught == [True]
    assert fs.stats.writes == 0
    assert fs.stats.bytes_written == 0.0


def test_zero_rate_spec_attaches_nothing():
    env = Environment()
    cloud = EC2Cloud(env)
    workers = cloud.launch_many("c1.xlarge", 1)
    server = cloud.launch("m1.xlarge")
    fs = NFSStorage(env, server)
    faults = FaultCoordinator(env, FaultSpec(node_mtbf=100.0), seed=0)
    faults.attach_storage(fs)
    assert fs._faults is None  # crash-only spec leaves storage untouched
