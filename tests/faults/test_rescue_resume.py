"""Rescue-DAG checkpointing, resume, and partial-completion mode."""

from repro.apps import build_synthetic
from repro.experiments import ExperimentConfig, run_experiment
from repro.faults import RescueLog


def wf():
    return build_synthetic(40, width=8, seed=2)


def run_cell(rescue=None, seed=7, **kwargs):
    cfg = ExperimentConfig("montage", "nfs", 2, seed=seed, **kwargs)
    return run_experiment(cfg, workflow=wf(), rescue=rescue)


def test_partial_mode_survives_retry_exhaustion():
    log = RescueLog()
    res = run_cell(rescue=log, task_failure_rate=0.1, retries=0,
                   halt_on_failure=False)
    assert res.run.partial
    abandoned = set(res.run.abandoned_jobs)
    assert abandoned  # something failed permanently
    completed = {r.task_id for r in res.run.records if not r.failed}
    # The two sets partition the DAG: failed jobs + their descendants
    # are abandoned, everything else completed.
    assert abandoned.isdisjoint(completed)
    assert len(abandoned) + len(completed) == 40
    assert log.completed == completed


def test_resume_reexecutes_only_unfinished_jobs():
    log = RescueLog()
    first = run_cell(rescue=log, task_failure_rate=0.1, retries=0,
                     halt_on_failure=False)
    done_before = set(log.completed)
    assert first.run.partial

    second = run_cell(rescue=log)  # fault-free resume, same workflow
    assert not second.run.partial
    executed = {r.task_id for r in second.run.records}
    # Only the unfinished remainder actually ran...
    assert executed == set(wf().tasks) - done_before
    # ...while the checkpointed jobs were loaded from the rescue log.
    assert set(second.run.rescued_jobs) == done_before
    assert len(log) == 40
    # Resume of a smaller DAG fragment is faster than the full run.
    clean = run_cell()
    assert second.makespan < clean.makespan


def test_resume_from_file_backed_log(tmp_path):
    path = str(tmp_path / "rescue.log")
    first = run_cell(rescue=RescueLog(path), task_failure_rate=0.1,
                     retries=0, halt_on_failure=False)
    assert first.run.partial

    # A brand-new process would reload the log from disk.
    log = RescueLog(path)
    second = run_cell(rescue=log)
    assert not second.run.partial
    assert len(log) == 40


def test_resume_with_everything_done_is_a_noop():
    log = RescueLog()
    clean = run_cell(rescue=log)
    assert len(log) == 40
    again = run_cell(rescue=log)
    assert len(again.run.records) == 0
    assert again.makespan == 0.0
    assert set(again.run.rescued_jobs) == set(wf().tasks)


def test_rescue_log_ignores_foreign_jobs():
    # Entries that are not part of this DAG (e.g. a log reused across
    # workflows) are ignored rather than corrupting the schedule.
    log = RescueLog()
    log.mark("not-a-job-of-this-dag")
    res = run_cell(rescue=log)
    assert not res.run.partial
    assert len({r.task_id for r in res.run.records if not r.failed}) == 40
    assert res.run.rescued_jobs == []


def test_partial_mode_without_rescue_log():
    # halt_on_failure=False works standalone; no checkpoint required.
    res = run_cell(task_failure_rate=0.1, retries=0, halt_on_failure=False)
    assert res.run.partial
    assert len(res.run.abandoned_jobs) + len(
        {r.task_id for r in res.run.records if not r.failed}) == 40
