"""FaultSpec / RetryPolicy / OutageWindow construction and serialization."""

import json

import pytest

from repro.faults import (
    NO_FAULTS,
    FaultSpec,
    NodeCrash,
    OutageWindow,
    RetryPolicy,
    load_fault_spec,
)
from repro.simcore.rand import substream


def test_default_spec_is_disabled():
    assert not NO_FAULTS.enabled
    assert not NO_FAULTS.has_storage_faults
    assert not FaultSpec().enabled


def test_any_fault_source_enables_the_spec():
    assert FaultSpec(node_mtbf=100.0).enabled
    assert FaultSpec(node_crashes=[NodeCrash("i-0", 5.0)]).enabled
    assert FaultSpec(storage_error_rate=0.01).enabled
    assert FaultSpec(storage_outages=[OutageWindow(10.0, 20.0)]).enabled
    assert FaultSpec(storage_outages=[OutageWindow(10.0, 20.0)]).has_storage_faults
    assert not FaultSpec(node_mtbf=100.0).has_storage_faults


def test_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        FaultSpec(node_mtbf=-1.0)
    with pytest.raises(ValueError):
        FaultSpec(storage_error_rate=1.0)
    with pytest.raises(ValueError):
        FaultSpec(storage_error_rate=-0.1)
    with pytest.raises(ValueError):
        FaultSpec(min_survivors=-1)
    with pytest.raises(ValueError):
        OutageWindow(20.0, 10.0)
    with pytest.raises(ValueError):
        NodeCrash("i-0", -1.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_outage_window_covers_half_open_interval():
    w = OutageWindow(10.0, 20.0)
    assert not w.covers(9.999)
    assert w.covers(10.0)
    assert w.covers(19.999)
    assert not w.covers(20.0)
    assert w.duration == 10.0


def test_backoff_is_bounded_and_jittered():
    policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=8.0,
                         jitter=0.1)
    rng = substream(0, "test", "backoff")
    for attempt in range(10):
        d = policy.backoff(attempt, rng)
        nominal = min(1.0 * 2.0 ** attempt, 8.0)
        assert nominal * 0.9 <= d <= nominal * 1.1


def test_roundtrip_through_json():
    spec = FaultSpec(
        node_crashes=[NodeCrash("i-3", 120.0)],
        node_mtbf=3600.0,
        min_survivors=2,
        storage_outages=[OutageWindow(100.0, 160.0)],
        storage_error_rate=0.01,
        retry=RetryPolicy(max_retries=7, base_delay=0.25),
    )
    back = FaultSpec.from_json(spec.to_json())
    assert back == spec
    # Nested dataclasses are rebuilt as the right types.
    assert isinstance(back.node_crashes[0], NodeCrash)
    assert isinstance(back.storage_outages[0], OutageWindow)
    assert isinstance(back.retry, RetryPolicy)


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError):
        FaultSpec.from_dict({"node_mtbf": 10.0, "bogus": 1})


def test_load_fault_spec_from_file(tmp_path):
    path = tmp_path / "faults.json"
    spec = FaultSpec(storage_error_rate=0.02,
                     storage_outages=[OutageWindow(5.0, 9.0)])
    path.write_text(spec.to_json())
    assert load_fault_spec(str(path)) == spec


def test_lists_normalised_to_tuples():
    spec = FaultSpec(node_crashes=[NodeCrash("a", 1.0)],
                     storage_outages=[OutageWindow(0.0, 1.0)])
    assert isinstance(spec.node_crashes, tuple)
    assert isinstance(spec.storage_outages, tuple)
    json.loads(spec.to_json())  # serializable despite tuples
