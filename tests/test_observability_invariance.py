"""Observability must never touch the deterministic hash-chain.

Every scenario below runs twice: once bare, once with the whole
observability surface switched on — live progress, JSONL event log,
crash dir + flight recorder, per-cell cProfile, Prometheus export.
The telemetry hash-chain (every trace record, makespan, cost) must be
bit-identical between the two legs: host-side observation is passive
by construction, and this test is the regression gate for that
invariant (see ISSUE/docs: "no wall-clock data in the hash-chain").
"""

import hashlib
import io

import pytest

from repro.apps import (
    build_broadband,
    build_epigenome,
    build_montage,
    build_synthetic,
)
from repro.experiments import (
    ExperimentConfig,
    ObserveOptions,
    run_sweep,
)
from repro.lint.determinism import canonical_event
from repro.observe import EventLogWriter, SweepMonitor
from repro.telemetry import to_prometheus, validate_exposition

# The 20 golden scenarios: every application crossed with a spread of
# storage backends, node counts, and seeds.  Workflows are scaled down
# so the double-run suite stays fast; determinism is scale-free.
SCENARIOS = [
    ("synthetic", "local", 1, 0),
    ("synthetic", "local", 1, 1),
    ("synthetic", "nfs", 2, 0),
    ("synthetic", "nfs", 4, 7),
    ("synthetic", "s3", 2, 0),
    ("synthetic", "s3", 4, 3),
    ("synthetic", "pvfs", 2, 0),
    ("synthetic", "pvfs", 4, 5),
    ("synthetic", "glusterfs-nufa", 2, 0),
    ("synthetic", "glusterfs-nufa", 4, 11),
    ("synthetic", "glusterfs-distribute", 2, 0),
    ("synthetic", "glusterfs-distribute", 4, 13),
    ("montage", "local", 1, 0),
    ("montage", "nfs", 2, 42),
    ("montage", "s3", 2, 0),
    ("montage", "glusterfs-nufa", 2, 17),
    ("epigenome", "nfs", 2, 0),
    ("epigenome", "pvfs", 2, 42),
    ("broadband", "s3", 2, 0),
    ("broadband", "nfs", 2, 23),
]


def small_workflow(app):
    if app == "montage":
        return build_montage(degrees=0.5)
    if app == "epigenome":
        return build_epigenome(chunks_per_lane=[2, 2])
    if app == "broadband":
        return build_broadband(n_sources=1, n_sites=2)
    return build_synthetic(30, width=6, seed=1)


def _config(app, storage, nodes, seed):
    # cpu_jitter routes the seed through the random substreams, so the
    # chain covers the full stochastic surface, as in digest_run().
    return ExperimentConfig(app, storage, nodes, seed=seed,
                            cpu_jitter_sigma=0.05, collect_traces=True)


def _hash_chain(result):
    """sha256 over every canonical trace line + makespan/cost tail."""
    chain = hashlib.sha256()
    for rec in result.trace.records:
        chain.update(canonical_event(rec.time, rec.category, rec.event,
                                     rec.fields).encode())
        chain.update(b"\n")
    tail = (f"makespan={result.run.makespan!r}"
            f"|cost={result.cost.per_second_total!r}")
    chain.update(tail.encode())
    return chain.hexdigest()


def _run_bare(config, workflow):
    (result,) = run_sweep([config], workflow=workflow)
    return result


def _run_fully_observed(config, workflow, tmp_path, jobs=1):
    events = EventLogWriter(io.StringIO())
    monitor = SweepMonitor(events=events, progress=True,
                           stream=io.StringIO())
    observe = ObserveOptions(monitor=monitor,
                             crash_dir=str(tmp_path / "crashes"),
                             flight=True, flight_capacity=64,
                             profile="cprofile")
    (result,) = run_sweep([config], workflow=workflow, jobs=jobs,
                          observe=observe)
    # Exercise the export path too: rendering the registry is read-only
    # and must produce a valid exposition.
    assert result.metrics is not None
    assert validate_exposition(to_prometheus(result.metrics)) == []
    return result


@pytest.mark.parametrize(
    "scenario", SCENARIOS,
    ids=["{}-{}-n{}-s{}".format(*s) for s in SCENARIOS])
def test_digest_invariant_under_full_observability(scenario, tmp_path):
    app, storage, nodes, seed = scenario
    workflow = small_workflow(app)
    config = _config(app, storage, nodes, seed)
    bare = _run_bare(config, workflow)
    observed = _run_fully_observed(config, workflow, tmp_path)
    assert _hash_chain(observed) == _hash_chain(bare)
    assert repr(observed.run.makespan) == repr(bare.run.makespan)
    assert repr(observed.cost.per_second_total) == \
        repr(bare.cost.per_second_total)
    assert observed.metrics.to_json() == bare.metrics.to_json()


def test_digest_invariant_across_worker_processes(tmp_path):
    # Same invariant through the process-pool path: envelopes must
    # replay the exact stream even with the flight recorder attached.
    app, storage, nodes, seed = SCENARIOS[2]
    configs = [_config(app, storage, nodes, seed),
               _config(app, storage, nodes, seed + 1)]
    workflow = small_workflow(app)
    bare = [_run_bare(c, workflow) for c in configs]
    monitor = SweepMonitor(events=EventLogWriter(io.StringIO()),
                           progress=True, stream=io.StringIO())
    observe = ObserveOptions(monitor=monitor,
                             crash_dir=str(tmp_path / "crashes"),
                             flight=True, profile="cprofile")
    observed = run_sweep(configs, workflow=workflow, jobs=2,
                         observe=observe)
    for b, o in zip(bare, observed):
        assert _hash_chain(o) == _hash_chain(b)
