"""Tests for span production, reconstruction, and Chrome-trace export."""

import json

import pytest

from repro.simcore.engine import Environment
from repro.simcore.tracing import NULL_COLLECTOR, TraceCollector
from repro.telemetry.spans import (
    DISABLED_SPAN,
    SpanBuilder,
    iter_spans,
    load_chrome_trace,
    spans_from_trace,
    summarize_chrome_trace,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)


def builder():
    env = Environment()
    trace = TraceCollector()
    return env, trace, SpanBuilder(trace, env)


# ------------------------------------------------------------- production

def test_begin_end_pairs_emit_records():
    env, trace, sb = builder()
    sid = sb.begin("job", "t1", node="n0")
    env.run(until=3.0)
    sb.end(sid, failed=False)
    begins = trace.select("span", "begin")
    ends = trace.select("span", "end")
    assert len(begins) == 1 and len(ends) == 1
    assert begins[0].get("span_id") == sid
    assert begins[0].get("node") == "n0"
    assert ends[0].time == 3.0


def test_stack_nesting_sets_parents():
    env, trace, sb = builder()
    outer = sb.begin("workflow", "wf")
    inner = sb.begin("job", "t1")
    assert sb.current == inner
    sb.end(inner)
    assert sb.current == outer
    sb.end(outer)
    begins = {r.get("name"): r for r in trace.select("span", "begin")}
    assert begins["wf"].get("parent_id") is None
    assert begins["t1"].get("parent_id") == outer


def test_root_parent_links_across_builders():
    env = Environment()
    trace = TraceCollector()
    parent_sb = SpanBuilder(trace, env)
    wf = parent_sb.begin("workflow", "wf")
    child_sb = SpanBuilder(trace, env, root_parent=wf)
    job = child_sb.begin("job", "t1")
    begins = {r.get("name"): r for r in trace.select("span", "begin")}
    assert begins["t1"].get("parent_id") == wf
    child_sb.end(job)
    parent_sb.end(wf)


def test_out_of_order_end_unwinds_stack():
    env, trace, sb = builder()
    outer = sb.begin("a", "outer")
    sb.begin("b", "inner")  # never explicitly closed
    sb.end(outer)
    assert sb.current is None


def test_disabled_builder_is_inert():
    env = Environment()
    sb = SpanBuilder(NULL_COLLECTOR, env)
    assert not sb.enabled
    sid = sb.begin("job", "t1")
    assert sid == DISABLED_SPAN
    sb.end(sid)  # must not raise or emit
    assert len(NULL_COLLECTOR) == 0


def test_span_context_manager_closes_on_error():
    env, trace, sb = builder()
    with pytest.raises(RuntimeError):
        with sb.span("job", "t1"):
            raise RuntimeError("boom")
    assert len(trace.select("span", "end")) == 1


# --------------------------------------------------------- reconstruction

def test_spans_from_trace_rebuilds_tree():
    env, trace, sb = builder()
    wf = sb.begin("workflow", "wf")
    env.run(until=1.0)
    job = sb.begin("job", "t1", node="n0")
    env.run(until=4.0)
    sb.end(job, failed=False)
    env.run(until=5.0)
    sb.end(wf)

    roots = spans_from_trace(trace)
    assert len(roots) == 1
    root = roots[0]
    assert root.name == "wf" and root.category == "workflow"
    assert root.duration == pytest.approx(5.0)
    assert len(root.children) == 1
    child = root.children[0]
    assert child.name == "t1"
    assert child.start == 1.0 and child.end == 4.0
    assert child.fields["node"] == "n0"
    assert child.fields["failed"] is False  # end-fields merged in
    assert [s.name for s in root.walk()] == ["wf", "t1"]


def test_unclosed_span_clamped_to_last_record_time():
    env, trace, sb = builder()
    sid = sb.begin("vm", "n0")
    env.run(until=7.0)
    trace.emit(env.now, "task", "end", task="t")  # advances last time
    roots = spans_from_trace(trace)
    (span,) = roots
    assert span.span_id == sid
    assert not any(True for r in trace.select("span", "end"))
    assert span.end == 7.0  # clamped, not left open
    assert span.duration == pytest.approx(7.0)


def test_children_sorted_by_start_time():
    env, trace, sb = builder()
    wf = sb.begin("workflow", "wf")
    env.run(until=2.0)
    b = sb.begin("job", "b", parent_id=wf)
    sb.end(b)
    # "a" begins after "b" in record order but earlier in sim time
    # (emitted retroactively); children must sort by start, not arrival.
    trace.emit(1.0, "span", "begin", span_id=10_000, parent_id=wf,
               span_category="job", name="a")
    trace.emit(1.5, "span", "end", span_id=10_000)
    sb.end(wf)
    roots = spans_from_trace(trace)
    assert [c.name for c in roots[0].children] == ["a", "b"]


def test_iter_spans_flattens_depth_first():
    env, trace, sb = builder()
    a = sb.begin("x", "a")
    b = sb.begin("x", "b")
    sb.end(b)
    sb.end(a)
    names = [s.name for s in iter_spans(spans_from_trace(trace))]
    assert names == ["a", "b"]


# ----------------------------------------------------------------- export

def _sample_roots():
    env, trace, sb = builder()
    wf = sb.begin("workflow", "wf", n_workers=2)
    job = sb.begin("job", "t1", node="n0")
    env.run(until=2.5)
    sb.end(job)
    sb.end(wf)
    return spans_from_trace(trace)


def test_chrome_trace_structure():
    doc = to_chrome_trace(_sample_roots())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert any(e["name"] == "process_name" for e in meta)
    # One thread row for the node, one for the node-less workflow span.
    thread_names = {e["args"]["name"] for e in meta
                    if e["name"] == "thread_name"}
    assert thread_names == {"n0", "(workflow)"}
    assert len(complete) == 2
    job_ev = next(e for e in complete if e["name"] == "t1")
    assert job_ev["ts"] == 0.0
    assert job_ev["dur"] == pytest.approx(2.5e6)  # microseconds
    assert job_ev["args"]["node"] == "n0"


def test_chrome_trace_round_trip(tmp_path):
    path = str(tmp_path / "trace.json")
    n = write_chrome_trace(path, _sample_roots())
    assert n == 2
    doc = load_chrome_trace(path)
    # The JSON round-trip must preserve the document exactly.
    assert doc == to_chrome_trace(_sample_roots())
    summary = summarize_chrome_trace(doc)
    assert "2 spans" in summary
    assert "workflow" in summary and "job" in summary


def test_load_chrome_trace_rejects_malformed(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"nope": []}))
    with pytest.raises(ValueError):
        load_chrome_trace(str(bad))
    bad.write_text(json.dumps({"traceEvents": [{"no_ph": 1}]}))
    with pytest.raises(ValueError):
        load_chrome_trace(str(bad))


def test_jsonl_one_line_per_span():
    out = to_jsonl(_sample_roots())
    rows = [json.loads(line) for line in out.strip().splitlines()]
    assert len(rows) == 2
    assert {row["category"] for row in rows} == {"workflow", "job"}
    assert all("duration" in row for row in rows)


def test_summarize_empty_trace():
    assert "empty trace" in summarize_chrome_trace({"traceEvents": []})
