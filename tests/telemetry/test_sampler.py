"""Tests for the utilization sampler, timelines, and renderers."""

import pytest

from repro.apps.broadband import build_broadband
from repro.experiments import ExperimentConfig, run_experiment
from repro.simcore.engine import Environment
from repro.telemetry.render import (
    render_heatmap,
    render_node_gantt,
    render_timeline_summary,
)
from repro.telemetry.sampler import RateProbe, Timeline, UtilizationSampler


# --------------------------------------------------------------- timeline

def test_timeline_alignment_with_late_series():
    tl = Timeline()
    tl.add_sample(0.0, {"a": 1.0})
    tl.add_sample(5.0, {"a": 2.0, "b": 10.0})
    tl.add_sample(10.0, {"a": 3.0})
    assert len(tl) == 3
    assert tl.values("a") == [1.0, 2.0, 3.0]
    # "b" backfills a zero for the sample before it appeared and pads
    # a zero for the sample where it was absent.
    assert tl.values("b") == [0.0, 10.0, 0.0]


def test_timeline_mean_windowed():
    tl = Timeline()
    for t, v in [(0.0, 0.0), (5.0, 1.0), (10.0, 1.0), (15.0, 0.0)]:
        tl.add_sample(t, {"u": v})
    assert tl.mean("u") == pytest.approx(0.5)
    assert tl.mean("u", t0=5.0, t1=10.0) == pytest.approx(1.0)
    assert tl.max("u") == 1.0
    assert tl.mean("missing") == 0.0


def test_timeline_as_dict():
    tl = Timeline()
    tl.add_sample(1.0, {"a": 2.0})
    d = tl.as_dict()
    assert d == {"times": [1.0], "series": {"a": [2.0]}}


# -------------------------------------------------------------- rate probe

def test_rate_probe_reports_per_second_rate():
    state = {"t": 0.0, "v": 0.0}
    probe = RateProbe(lambda: state["v"], lambda: state["t"])
    state["t"], state["v"] = 10.0, 50.0
    assert probe() == pytest.approx(5.0)
    # No progress since last sample -> zero rate, not a stale average.
    state["t"] = 20.0
    assert probe() == pytest.approx(0.0)


def test_rate_probe_zero_dt_is_zero():
    probe = RateProbe(lambda: 1.0, lambda: 0.0)
    assert probe() == 0.0


# ---------------------------------------------------------------- sampler

def test_sampler_samples_on_cadence():
    env = Environment()
    sampler = UtilizationSampler(env, interval=2.0)
    sampler.add_probe("clock", lambda: env.now)
    sampler.start()
    sampler.start()  # idempotent
    env.run(until=7.0)
    sampler.stop()
    env.run()
    assert sampler.timeline.times == [0.0, 2.0, 4.0, 6.0]
    assert sampler.timeline.values("clock") == [0.0, 2.0, 4.0, 6.0]


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        UtilizationSampler(Environment(), interval=0.0)


def test_sample_now_and_rate_probe_integration():
    env = Environment()
    sampler = UtilizationSampler(env, interval=5.0)
    counter = {"v": 0.0}
    sampler.add_rate_probe("rate", lambda: counter["v"])
    assert sampler.n_probes == 1
    sampler.sample_now()
    counter["v"] = 100.0
    env.run(until=10.0)
    sampler.sample_now()
    assert sampler.timeline.values("rate")[-1] == pytest.approx(10.0)


# ----------------------------------------------- end-to-end NFS regression

def _nfs_run(n_workers):
    """A down-scaled Broadband on NFS with telemetry enabled."""
    cfg = ExperimentConfig("broadband", "nfs", n_workers,
                           collect_traces=True, sample_interval=5.0)
    return run_experiment(cfg, workflow=build_broadband(n_sources=2,
                                                        n_sites=4))


def test_nfs_server_sustained_load_rises_with_workers():
    """The paper's Broadband/NFS collapse, seen from the server side:
    doubling the workers drives the NFS server's RPC utilization to a
    visibly higher sustained level (§V.B)."""
    r2 = _nfs_run(2)
    r4 = _nfs_run(4)
    load2 = r2.timeline.mean("nfs.rpc_util")
    load4 = r4.timeline.mean("nfs.rpc_util")
    assert 0.0 < load2 < 1.0
    assert load4 > load2 * 1.15
    # Utilization is a fraction of delivered service capacity.
    assert r4.timeline.max("nfs.rpc_util") <= 1.0 + 1e-6


def test_experiment_timeline_has_node_and_server_series():
    result = _nfs_run(2)
    names = result.timeline.names()
    assert any(n.endswith(".cpu") for n in names)
    assert any(n.endswith(".nic_tx_bps") for n in names)
    assert any(n.endswith(".disk_queue") for n in names)
    assert "nfs.rpc_util" in names
    assert "nfs.rpc_queue" in names
    # CPU busy fraction is bounded by the core count.
    cpu = [n for n in names if n.endswith(".cpu")]
    assert all(result.timeline.max(n) <= 1.0 + 1e-6 for n in cpu)


def test_telemetry_disabled_by_default():
    cfg = ExperimentConfig("broadband", "nfs", 2)
    result = run_experiment(cfg, workflow=build_broadband(n_sources=1,
                                                          n_sites=2))
    assert result.trace is None
    assert result.metrics is None
    assert result.timeline is None
    assert result.spans == []


def test_experiment_metrics_and_spans_populated():
    result = _nfs_run(2)
    assert result.metrics is not None
    assert result.metrics.counter("tasks_completed_total").total() > 0
    makespan = result.metrics.gauge("experiment_makespan_seconds")
    assert makespan.value(app="broadband", storage="nfs",
                          nodes="2") == pytest.approx(result.makespan)
    roots = result.spans
    # One experiment root; VM lifetime spans are their own roots.
    exp_roots = [r for r in roots if r.category == "experiment"]
    assert len(exp_roots) == 1
    categories = {s.category for s in exp_roots[0].walk()}
    assert {"experiment", "workflow", "job", "phase",
            "storage_op"} <= categories
    assert any(r.category == "vm" for r in roots)


# ---------------------------------------------------------------- renderers

def _toy_timeline():
    tl = Timeline()
    for t in range(0, 50, 5):
        tl.add_sample(float(t), {"n0.cpu": t / 50.0, "n1.cpu": 0.5})
    return tl


def test_render_heatmap_shapes():
    out = render_heatmap(_toy_timeline(), width=20, title="cpu")
    lines = out.splitlines()
    assert lines[0] == "cpu"
    assert any(line.startswith("n0.cpu") and "|" in line for line in lines)
    assert "max" in lines[-1]


def test_render_heatmap_global_normalization():
    out_series = render_heatmap(_toy_timeline(), width=20)
    out_global = render_heatmap(_toy_timeline(), width=20,
                                normalize="global")
    # Under per-series scaling the flat n1 row saturates to the darkest
    # shade; under global scaling it sits mid-ramp.
    n1_series = next(line for line in out_series.splitlines()
                     if line.startswith("n1.cpu"))
    n1_global = next(line for line in out_global.splitlines()
                     if line.startswith("n1.cpu"))
    assert "@" in n1_series
    assert "@" not in n1_global


def test_render_heatmap_rejects_bad_normalize():
    with pytest.raises(ValueError):
        render_heatmap(_toy_timeline(), normalize="banana")


def test_render_empty_timeline():
    assert "(no samples)" in render_heatmap(Timeline())
    assert "(no samples)" in render_timeline_summary(Timeline())


def test_render_timeline_summary_table():
    out = render_timeline_summary(_toy_timeline())
    assert "mean" in out and "peak" in out
    assert "n0.cpu" in out


def test_render_node_gantt_from_experiment_spans():
    result = _nfs_run(2)
    out = render_node_gantt(result.spans, category="job", title="jobs")
    assert out.startswith("jobs")
    # One row per worker node.
    assert sum(1 for line in out.splitlines() if "|" in line) == 2
    assert "(no job spans)" in render_node_gantt([])
