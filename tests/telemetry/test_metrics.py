"""Tests for the metric instruments and the trace->metrics bridge."""

import json

import pytest

from repro.simcore.tracing import TraceCollector
from repro.telemetry.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    install_trace_bridge,
)


# ----------------------------------------------------------------- counter

def test_counter_basic_and_labels():
    c = Counter("ops_total")
    c.inc()
    c.inc(2.0)
    c.inc(node="n0")
    c.inc(3.0, node="n0")
    c.inc(node="n1")
    assert c.value() == 3.0
    assert c.value(node="n0") == 4.0
    assert c.value(node="n1") == 1.0
    assert c.total() == 8.0


def test_counter_label_order_is_canonical():
    c = Counter("x")
    c.inc(a="1", b="2")
    c.inc(b="2", a="1")
    assert c.value(a="1", b="2") == 2.0
    assert len(c.label_sets()) == 1


def test_counter_rejects_decrease():
    c = Counter("x")
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_counter_untouched_child_reads_zero():
    assert Counter("x").value(node="never") == 0.0


# ------------------------------------------------------------------- gauge

def test_gauge_set_inc_dec():
    g = Gauge("depth")
    g.set(5.0, queue="a")
    g.inc(2.0, queue="a")
    g.dec(queue="a")
    assert g.value(queue="a") == 6.0
    g.inc(-3.0, queue="a")  # gauges may go down
    assert g.value(queue="a") == 3.0


def test_gauge_series_rows():
    g = Gauge("depth")
    g.set(1.0, queue="a")
    g.set(2.0, queue="b")
    rows = g.series()
    assert len(rows) == 2
    assert {r["labels"]["queue"] for r in rows} == {"a", "b"}


# --------------------------------------------------------------- histogram

def test_histogram_count_sum_mean():
    h = Histogram("dur", buckets=(1.0, 10.0))
    for v in (0.5, 2.0, 3.5):
        h.observe(v)
    assert h.count() == 3
    assert h.sum_() == pytest.approx(6.0)
    assert h.mean() == pytest.approx(2.0)


def test_histogram_bucket_counts_cumulative():
    h = Histogram("dur", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 0.7, 5.0, 50.0, 500.0):
        h.observe(v)
    buckets = h.bucket_counts()
    assert buckets["1"] == 2
    assert buckets["10"] == 3
    assert buckets["100"] == 4
    assert buckets["+Inf"] == 5


def test_histogram_quantiles_exact():
    h = Histogram("dur")
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    assert h.quantile(0.0) == 1.0
    assert h.quantile(1.0) == 100.0
    assert h.quantile(0.5) == pytest.approx(50.0, abs=1.0)
    assert h.quantile(0.9) == pytest.approx(90.0, abs=1.0)


def test_histogram_quantile_validation_and_empty():
    h = Histogram("dur")
    with pytest.raises(ValueError):
        h.quantile(1.5)
    assert h.quantile(0.5) == 0.0
    assert h.mean() == 0.0


def test_histogram_labels_separate_children():
    h = Histogram("dur")
    h.observe(1.0, transformation="a")
    h.observe(100.0, transformation="b")
    assert h.count(transformation="a") == 1
    assert h.mean(transformation="b") == 100.0
    assert h.count() == 0  # unlabelled child untouched


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("x", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("x", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("x", buckets=())


def test_histogram_series_includes_quantiles():
    h = Histogram("dur")
    h.observe(1.0, t="a")
    row = h.series()[0]
    assert row["count"] == 1
    assert "p50" in row["quantiles"] and "p99" in row["quantiles"]


# ---------------------------------------------------------------- registry

def test_registry_get_or_create_returns_same_instance():
    reg = MetricsRegistry()
    c1 = reg.counter("ops_total")
    c2 = reg.counter("ops_total")
    assert c1 is c2
    assert len(reg) == 1
    assert "ops_total" in reg


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")
    with pytest.raises(ValueError):
        reg.histogram("x")


def test_registry_snapshot_and_json_round_trip():
    reg = MetricsRegistry()
    reg.counter("ops_total", "help text").inc(3.0, node="n0")
    reg.gauge("depth").set(2.0)
    reg.histogram("dur").observe(0.5)
    snap = json.loads(reg.to_json())
    assert snap["ops_total"]["kind"] == "counter"
    assert snap["ops_total"]["help"] == "help text"
    assert snap["ops_total"]["series"][0]["value"] == 3.0
    assert snap["dur"]["series"][0]["count"] == 1


def test_registry_summary_rows():
    reg = MetricsRegistry()
    reg.counter("ops_total").inc(2.0, node="n0", op="read")
    rows = reg.summary_rows()
    assert rows == [{"metric": "ops_total", "kind": "counter",
                     "labels": "node=n0,op=read", "value": 2.0}]


def test_disabled_registry_instruments_are_inert():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("ops_total")
    c.inc(5.0, node="n0")
    g = reg.gauge("depth")
    g.set(3.0)
    h = reg.histogram("dur")
    h.observe(1.0)
    assert c.total() == 0.0
    assert g.value() == 0.0
    assert h.count() == 0
    assert NULL_REGISTRY.enabled is False


# ------------------------------------------------------------------ bridge

def test_bridge_folds_trace_records_into_instruments():
    trace = TraceCollector()
    reg = MetricsRegistry()
    install_trace_bridge(reg, trace)
    trace.emit(0.0, "task", "start", node="n0", transformation="mAdd")
    trace.emit(5.0, "task", "end", node="n0", transformation="mAdd",
               duration=5.0)
    trace.emit(6.0, "task", "failed", node="n1")
    trace.emit(1.0, "storage", "read", system="nfs", nbytes=100.0,
               remote=True)
    trace.emit(2.0, "disk", "write", disk="n0.disk", nbytes=50.0, first=True)
    trace.emit(3.0, "net", "transfer", src="n0", dst="nfs", nbytes=100.0)
    trace.emit(0.0, "schedd", "submit", task="t1")
    trace.emit(9.0, "vm", "terminate", node="n0")

    assert reg.counter("tasks_started_total").value(
        node="n0", transformation="mAdd") == 1
    assert reg.counter("tasks_completed_total").value(node="n0") == 1
    assert reg.counter("tasks_failed_total").value(node="n1") == 1
    assert reg.histogram("task_duration_seconds").mean(
        transformation="mAdd") == pytest.approx(5.0)
    assert reg.counter("storage_ops_total").value(
        op="read", storage="nfs", locality="remote") == 1
    assert reg.counter("storage_bytes_total").value(
        op="read", storage="nfs") == 100.0
    assert reg.counter("disk_first_writes_total").value(disk="n0.disk") == 1
    assert reg.counter("net_bytes_total").value(src="n0", dst="nfs") == 100.0
    assert reg.counter("schedd_submits_total").value() == 1
    assert reg.counter("vm_terminations_total").value() == 1


def test_bridge_is_noop_when_either_side_disabled():
    trace = TraceCollector()
    install_trace_bridge(NULL_REGISTRY, trace)
    assert trace.n_subscribers == 0
    reg = MetricsRegistry()
    install_trace_bridge(reg, TraceCollector(enabled=False))
    assert len(reg) == 0


# ------------------------------------------------------- export ordering

def test_histogram_bucket_rows_ordered():
    h = Histogram("dur", buckets=(0.5, 1.0, 10.0, 25.0))
    for v in (0.1, 5.0, 20.0, 100.0):
        h.observe(v)
    rows = h.bucket_rows()
    # Ascending bucket order with +Inf last — a plain dict sorted by
    # json.dumps would scramble "25" in between "0.5" and "+Inf".
    assert rows == [("0.5", 1), ("1", 1), ("10", 2), ("25", 3),
                    ("+Inf", 4)]


def test_histogram_series_buckets_are_ordered_objects():
    h = Histogram("dur", buckets=(0.5, 25.0))
    h.observe(1.0)
    (row,) = h.series()
    assert row["buckets"] == [{"le": "0.5", "count": 0},
                              {"le": "25", "count": 1},
                              {"le": "+Inf", "count": 1}]
    # The ordering survives a sort_keys JSON round trip.
    import json
    doc = json.loads(json.dumps(row, sort_keys=True))
    assert [b["le"] for b in doc["buckets"]] == ["0.5", "25", "+Inf"]
